//! Integration of the baseline learners with the Tmall simulator: the
//! classical-model pecking order must hold on the tabular encoding.
//!
//! Every model is driven through the generic [`Learner`] surface — one
//! fit/predict harness covers the whole zoo, and the scores it produces
//! are identical to the inherent constructors' (the trait impls validate
//! and delegate).

use atnn_repro::baselines::{
    tabular, FactorizationMachine, FmConfig, Ftrl, FtrlConfig, Gbdt, GbdtConfig, Learner,
    LogisticRegression, LrConfig,
};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};
use atnn_repro::metrics::auc;
use atnn_repro::tensor::Matrix;

struct Tabular {
    x_train: Matrix,
    y_train: Vec<f32>,
    x_test: Matrix,
    labels_test: Vec<bool>,
}

impl Tabular {
    /// The one generic harness: fit any dense-input learner on the train
    /// block, return its test AUC.
    fn eval<L: Learner<Input = Matrix>>(&self, cfg: L::Config) -> f64 {
        let model = L::fit(cfg, &self.x_train, &self.y_train).expect("valid training data");
        auc(&model.predict(&self.x_test), &self.labels_test).expect("AUC defined")
    }
}

fn tabular_setup() -> Tabular {
    let data = TmallDataset::generate(
        TmallConfig {
            num_users: 200,
            num_items: 500,
            num_interactions: 6_000,
            ..TmallConfig::tiny()
        }
        .with_seed(777),
    );
    let build = |rows: std::ops::Range<usize>| -> (Matrix, Vec<f32>) {
        let items: Vec<u32> = data.interactions[rows.clone()].iter().map(|i| i.item).collect();
        let users: Vec<u32> = data.interactions[rows.clone()].iter().map(|i| i.user).collect();
        let profile = data.encode_item_profiles(&items);
        let stats = data.encode_item_stats(&items);
        let user = data.encode_users(&users);
        let x = tabular::hstack(
            &tabular::hstack(
                &tabular::flatten(&profile.categorical, &profile.numeric),
                &stats.numeric,
            ),
            &tabular::flatten(&user.categorical, &user.numeric),
        );
        let y = data.interactions[rows].iter().map(|i| i.clicked as u8 as f32).collect();
        (x, y)
    };
    let (x_train, y_train) = build(0..4_800);
    let (x_test, y_test) = build(4_800..6_000);
    Tabular { x_train, y_train, x_test, labels_test: y_test.iter().map(|&v| v > 0.5).collect() }
}

#[test]
fn gbdt_dominates_linear_models_on_mixed_features() {
    let t = tabular_setup();

    let gbdt_auc = t.eval::<Gbdt>(GbdtConfig { num_trees: 40, ..Default::default() });
    let lr_auc = t.eval::<LogisticRegression>(LrConfig::default());

    assert!(gbdt_auc > 0.68, "GBDT with stats should be strong: {gbdt_auc:.4}");
    assert!(
        gbdt_auc > lr_auc,
        "trees split raw ordinal ids; linear models cannot: {gbdt_auc:.4} vs {lr_auc:.4}"
    );
    assert!(lr_auc > 0.5, "LR still better than chance: {lr_auc:.4}");
}

#[test]
fn ftrl_and_fm_are_sane_on_simulator_data() {
    // FTRL/FM are SGD models: they need standardized inputs (raw ordinal
    // ids span hundreds and blow up multiplicative updates).
    let t = tabular_setup();
    let norm = atnn_repro::data::encode::Normalizer::fit(&t.x_train);
    let t = Tabular {
        x_train: norm.transform(&t.x_train),
        x_test: norm.transform(&t.x_test),
        y_train: t.y_train,
        labels_test: t.labels_test,
    };

    let ftrl_auc = t.eval::<Ftrl>(FtrlConfig { l1: 0.1, ..Default::default() });
    assert!(ftrl_auc > 0.55, "FTRL above chance: {ftrl_auc:.4}");

    let fm_auc = t.eval::<FactorizationMachine>(FmConfig {
        factors: 4,
        epochs: 8,
        learning_rate: 0.01,
        ..Default::default()
    });
    assert!(fm_auc > 0.55, "FM above chance: {fm_auc:.4}");
}
