//! Concurrency integration: the serving index under parallel scorers with
//! live republishing must stay consistent (every observed score belongs to
//! one of the published indexes — never a torn mix).

use std::sync::Arc;

use atnn_repro::atnn::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, ServingIndex, TrainOptions};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};

#[test]
fn hot_swap_is_atomic_under_concurrent_reads() {
    let data = TmallDataset::generate(
        TmallConfig {
            num_users: 200,
            num_items: 300,
            num_interactions: 2_000,
            ..TmallConfig::tiny()
        }
        .with_seed(4242),
    );
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");

    let group_a: Vec<u32> = (0..100).collect();
    let group_b: Vec<u32> = (100..200).collect();
    let index_a = PopularityIndex::build(&model, &data, &group_a);
    let index_b = PopularityIndex::build(&model, &data, &group_b);

    let item_vec = model.item_vectors_generated(&data.encode_item_profiles(&[0])).row(0).to_vec();
    let expected_a = index_a.score_vector(&item_vec);
    let expected_b = index_b.score_vector(&item_vec);
    assert_ne!(expected_a, expected_b, "the two groups must score differently");

    let serving = Arc::new(ServingIndex::new(index_a.clone()));
    std::thread::scope(|scope| {
        // Four readers hammer the index; every score must equal one of the
        // two legitimate values.
        for _ in 0..4 {
            let serving = Arc::clone(&serving);
            let item_vec = item_vec.clone();
            scope.spawn(move || {
                for _ in 0..20_000 {
                    let s = serving.score(&item_vec);
                    assert!(
                        s == expected_a || s == expected_b,
                        "torn read: {s} not in {{{expected_a}, {expected_b}}}"
                    );
                }
            });
        }
        // One snapshotter checks that whole snapshots are never torn either:
        // each must equal one of the two published indexes exactly.
        {
            let serving = Arc::clone(&serving);
            let index_a = index_a.clone();
            let index_b = index_b.clone();
            scope.spawn(move || {
                for _ in 0..5_000 {
                    let snap = serving.snapshot();
                    assert!(*snap == index_a || *snap == index_b, "torn snapshot");
                }
            });
        }
        // One writer flips between the indexes.
        let serving = Arc::clone(&serving);
        scope.spawn(move || {
            for i in 0..50 {
                serving.publish(if i % 2 == 0 { index_b.clone() } else { index_a.clone() });
            }
        });
    });
}

#[test]
fn snapshots_are_zero_copy_and_stable_across_publish() {
    let data = TmallDataset::generate(TmallConfig::tiny());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    let index_a = PopularityIndex::build(&model, &data, &(0..64).collect::<Vec<_>>());
    let index_b = PopularityIndex::build(&model, &data, &(64..128).collect::<Vec<_>>());

    let serving = ServingIndex::new(index_a.clone());
    let s1 = serving.snapshot();
    let s2 = serving.snapshot();
    assert!(Arc::ptr_eq(&s1, &s2), "snapshot must share storage, not clone the matrix");

    serving.publish(index_b.clone());
    assert_eq!(*s1, index_a, "pre-publish snapshot unchanged");
    assert_eq!(*serving.snapshot(), index_b);
}
