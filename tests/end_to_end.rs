//! Cross-crate integration: the full ATNN pipeline from simulated log to
//! cold-start scores, on a fresh seed (distinct from every unit test).

use atnn_repro::atnn::{
    evaluate_auc_full, evaluate_auc_generated, evaluate_auc_imputed, Atnn, AtnnConfig, CtrTrainer,
    PopularityIndex, TrainOptions,
};
use atnn_repro::data::dataset::Split;
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};

fn fresh_setup() -> (TmallDataset, Split, Vec<u32>) {
    let data = TmallDataset::generate(
        TmallConfig {
            num_users: 250,
            num_items: 700,
            num_interactions: 7_000,
            ..TmallConfig::tiny()
        }
        .with_seed(20_260_706),
    );
    let n_items = data.num_items() as u32;
    let first_new = n_items - n_items / 5;
    let item_of: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
    let split = Split::by_group(&item_of, |item| item >= first_new);
    let new_arrivals: Vec<u32> = (first_new..n_items).collect();
    (data, split, new_arrivals)
}

fn train(data: &TmallDataset, split: &Split, config: AtnnConfig) -> Atnn {
    let mut model = Atnn::new(config, data);
    let opts = TrainOptions::builder().epochs(6).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, data, Some(&split.train)).expect("training runs");
    model
}

#[test]
fn atnn_cold_start_beats_tnn_on_a_fresh_seed() {
    let (data, split, _) = fresh_setup();
    let atnn = train(&data, &split, AtnnConfig::scaled());
    let tnn = train(&data, &split, AtnnConfig::tnn_dcn());
    let means = data.mean_item_stats(
        &split.train.iter().map(|&r| data.interactions[r as usize].item).collect::<Vec<_>>(),
    );

    let atnn_cold = evaluate_auc_generated(&atnn, &data, &split.test).unwrap();
    let tnn_cold = evaluate_auc_imputed(&tnn, &data, &split.test, &means).unwrap();
    assert!(
        atnn_cold > tnn_cold + 0.02,
        "ATNN cold {atnn_cold:.4} must clearly beat TNN cold {tnn_cold:.4}"
    );

    // And the adversarial training does not wreck the warm path.
    let atnn_full = evaluate_auc_full(&atnn, &data, &split.test).unwrap();
    let tnn_full = evaluate_auc_full(&tnn, &data, &split.test).unwrap();
    assert!(
        (atnn_full - tnn_full).abs() < 0.05,
        "warm paths comparable: {atnn_full:.4} vs {tnn_full:.4}"
    );
}

#[test]
fn training_is_bit_deterministic() {
    let (data, split, _) = fresh_setup();
    let a = train(&data, &split, AtnnConfig::scaled());
    let b = train(&data, &split, AtnnConfig::scaled());
    let items: Vec<u32> = (0..50).collect();
    let profile = data.encode_item_profiles(&items);
    assert_eq!(
        a.item_vectors_generated(&profile),
        b.item_vectors_generated(&profile),
        "same seeds must give identical models"
    );
}

#[test]
fn checkpoint_roundtrip_through_disk_format() {
    let (data, split, new_arrivals) = fresh_setup();
    let model = train(&data, &split, AtnnConfig::scaled());
    let blob = model.save();

    let mut restored = Atnn::new(AtnnConfig::scaled(), &data);
    restored.load(blob).unwrap();

    let group: Vec<u32> = (0..100).collect();
    let idx_a = PopularityIndex::build(&model, &data, &group);
    let idx_b = PopularityIndex::build(&restored, &data, &group);
    let scores_a = idx_a.score_new_arrivals(&model, &data, &new_arrivals);
    let scores_b = idx_b.score_new_arrivals(&restored, &data, &new_arrivals);
    assert_eq!(scores_a, scores_b);
}

#[test]
fn popularity_scores_rank_true_popularity() {
    let (data, split, new_arrivals) = fresh_setup();
    let model = train(&data, &split, AtnnConfig::scaled());
    let group: Vec<u32> = (0..data.num_users() as u32).collect();
    let index = PopularityIndex::build(&model, &data, &group);
    let scores = index.score_new_arrivals(&model, &data, &new_arrivals);
    let truth: Vec<f32> = new_arrivals.iter().map(|&i| data.true_popularity(i)).collect();
    let rho = atnn_repro::metrics::spearman(&scores, &truth).unwrap();
    assert!(rho > 0.5, "popularity ranking must track ground truth: rho={rho:.3}");
}
