//! Integration of the food-delivery extension on a fresh seed: Algorithm 2
//! training, cold prediction, and the expert comparison, end to end.

use atnn_repro::atnn::{evaluate_mae_cold, AtnnConfig, MultiTaskAtnn, MultiTaskTrainOptions};
use atnn_repro::data::dataset::Split;
use atnn_repro::data::eleme::{ElemeConfig, ElemeDataset, ElemeExpertPolicy};
use atnn_repro::tensor::Rng64;

fn setup() -> (ElemeDataset, Split) {
    let data = ElemeDataset::generate(
        ElemeConfig { num_restaurants: 1_400, ..ElemeConfig::tiny() }.with_seed(31_337),
    );
    let mut rng = Rng64::seed_from_u64(8);
    let split = Split::random(data.num_restaurants(), 0.2, &mut rng);
    (data, split)
}

#[test]
fn multitask_pipeline_beats_naive_and_tracks_truth() {
    let (data, split) = setup();
    let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
    let reports = model.train(
        &data,
        &split.train,
        &MultiTaskTrainOptions { epochs: 10, ..Default::default() },
    );
    assert!(reports.last().unwrap().loss_d < reports[0].loss_d);

    let (vppv_mae, gmv_mae) = evaluate_mae_cold(&model, &data, &split.test);
    // Naive baseline: predict the train mean everywhere.
    let vm =
        split.train.iter().map(|&r| data.vppv(r) as f64).sum::<f64>() / split.train.len() as f64;
    let naive_vppv = split.test.iter().map(|&r| (data.vppv(r) as f64 - vm).abs()).sum::<f64>()
        / split.test.len() as f64;
    assert!(
        vppv_mae < naive_vppv * 0.9,
        "model {vppv_mae:.4} must clearly beat mean-baseline {naive_vppv:.4}"
    );
    assert!(gmv_mae.is_finite() && gmv_mae > 0.0);

    // Predictions correlate with ground truth across the cold pool.
    let (vp, gp) = model.predict_cold(&data, &split.test);
    let vt: Vec<f32> = split.test.iter().map(|&r| data.vppv(r)).collect();
    let gt: Vec<f32> = split.test.iter().map(|&r| data.gmv(r)).collect();
    assert!(atnn_repro::metrics::spearman(&vp, &vt).unwrap() > 0.3);
    assert!(atnn_repro::metrics::spearman(&gp, &gt).unwrap() > 0.3);
}

#[test]
fn model_ranking_beats_expert_ranking_on_gmv() {
    let (data, split) = setup();
    let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
    model.train(&data, &split.train, &MultiTaskTrainOptions { epochs: 10, ..Default::default() });
    let (_, gmv_pred) = model.predict_cold(&data, &split.test);
    let expert = ElemeExpertPolicy::default().score(&data, &split.test);
    let gmv_true: Vec<f32> = split.test.iter().map(|&r| data.gmv(r)).collect();
    let model_rho = atnn_repro::metrics::spearman(&gmv_pred, &gmv_true).unwrap();
    let expert_rho = atnn_repro::metrics::spearman(&expert, &gmv_true).unwrap();
    assert!(
        model_rho > expert_rho,
        "model GMV ranking {model_rho:.3} must beat expert {expert_rho:.3}"
    );
}
