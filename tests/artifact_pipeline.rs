//! Integration: the persist-then-train pipeline. A feature platform
//! materializes interaction logs and encoded blocks once; training jobs
//! that consume the persisted artifacts must reproduce exactly what
//! training on the live dataset produces.

use atnn_repro::baselines::{tabular, Gbdt, GbdtConfig};
use atnn_repro::data::io::{
    decode_feature_block, decode_interactions, encode_feature_block, encode_interactions,
};
use atnn_repro::data::tmall::{TmallConfig, TmallDataset};

#[test]
fn training_from_persisted_artifacts_is_identical() {
    let data = TmallDataset::generate(
        TmallConfig {
            num_users: 100,
            num_items: 200,
            num_interactions: 2_000,
            ..TmallConfig::tiny()
        }
        .with_seed(555),
    );

    // --- producer side: materialize and "ship" the artifacts. ----------
    let items: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
    let users: Vec<u32> = data.interactions.iter().map(|i| i.user).collect();
    let profile = data.encode_item_profiles(&items);
    let stats = data.encode_item_stats(&items);
    let user_block = data.encode_users(&users);
    let shipped_log = encode_interactions(&data.interactions);
    let shipped_profile = encode_feature_block(&profile);
    let shipped_stats = encode_feature_block(&stats);
    let shipped_users = encode_feature_block(&user_block);

    // --- consumer side: decode and train from bytes alone. -------------
    let log = decode_interactions(shipped_log).unwrap();
    let profile2 = decode_feature_block(shipped_profile).unwrap();
    let stats2 = decode_feature_block(shipped_stats).unwrap();
    let users2 = decode_feature_block(shipped_users).unwrap();

    let make_xy = |p: &atnn_repro::data::FeatureBlock,
                   s: &atnn_repro::data::FeatureBlock,
                   u: &atnn_repro::data::FeatureBlock,
                   labels: &[bool]| {
        let x = tabular::hstack(
            &tabular::hstack(&tabular::flatten(&p.categorical, &p.numeric), &s.numeric),
            &tabular::flatten(&u.categorical, &u.numeric),
        );
        let y: Vec<f32> = labels.iter().map(|&c| c as u8 as f32).collect();
        (x, y)
    };
    let live_labels: Vec<bool> = data.interactions.iter().map(|i| i.clicked).collect();
    let shipped_labels: Vec<bool> = log.iter().map(|i| i.clicked).collect();
    assert_eq!(live_labels, shipped_labels);

    let (x_live, y_live) = make_xy(&profile, &stats, &user_block, &live_labels);
    let (x_art, y_art) = make_xy(&profile2, &stats2, &users2, &shipped_labels);
    assert_eq!(x_live, x_art, "artifacts must decode to identical features");

    let cfg = GbdtConfig { num_trees: 15, ..Default::default() };
    let live = Gbdt::fit(cfg.clone(), &x_live, &y_live);
    let from_artifacts = Gbdt::fit(cfg, &x_art, &y_art);
    assert_eq!(
        live.predict(&x_live),
        from_artifacts.predict(&x_art),
        "training from persisted artifacts must be bit-identical"
    );
}
