#!/usr/bin/env bash
# Full local gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> serve smoke (one request per endpoint over TCP)"
cargo run --release -p atnn-serve --bin atnn_serve -- --scale tiny --smoke

echo "==> serve-shard-smoke (scatter-gather across 3 shards, hot swap, clean shutdown)"
cargo run --release -p atnn-serve --bin atnn_serve -- --scale tiny --smoke --shards 3 --event-threads 2

echo "==> loadgen smoke (512 connections must clear 2x the pre-event-loop baseline)"
cargo run --release -p atnn-bench --bin serve_loadgen -- --smoke

echo "==> allocation budget (steady-state train step, counting allocator)"
cargo test --release -q -p atnn-core --test alloc_budget

echo "==> gemm smoke (tiled kernel must beat naive at 256^3; fast-math must not trail avx2)"
cargo run --release -p atnn-bench --bin gemm_bench -- --smoke

echo "==> backend-matrix (kernel + autograd suites under each bit-identical backend)"
# fastmath is deliberately absent here: it trades bit-identity for FMA
# throughput, so the bit-exactness suites would fail under it by design.
# Its tolerance contract is pinned by the backend_parity suite below.
ATNN_BACKEND=scalar cargo test --release -q -p atnn-tensor -p atnn-autograd
ATNN_BACKEND=avx2 cargo test --release -q -p atnn-tensor -p atnn-autograd
cargo test --release -q -p atnn-tensor --test backend_parity

echo "==> ann smoke (recall@10 >= 0.95 at default nprobe, full probe bit-identical)"
cargo run --release -p atnn-bench --bin ann_bench -- --smoke

echo "==> quant smoke (int8 tables >= 3.5x smaller at dim 64, same-probe recall@10 >= 0.99)"
cargo run --release -p atnn-bench --bin quant_bench -- --smoke

echo "==> quant-serve smoke (int8 snapshot round-trip through every endpoint + hot swap)"
cargo run --release -p atnn-serve --bin atnn_serve -- --scale tiny --smoke --quantized

echo "==> publish smoke (1% delta republish at 100k rows >= 5x full, delta bit-exact)"
cargo run --release -p atnn-bench --bin publish_bench -- --smoke

echo "==> obs smoke (train one epoch with a JsonlSink, replay the event stream)"
cargo run --release --example obs_smoke

echo "==> cargo doc -p atnn-obs -p atnn-ann (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p atnn-obs -p atnn-ann

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
