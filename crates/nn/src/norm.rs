//! Layer normalization (Ba et al., 2016).

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::{Init, Matrix, Rng64};

/// Row-wise layer normalization with learnable gain and bias:
/// `y = γ ⊙ (x − μ_row) / sqrt(σ²_row + ε) + β`.
///
/// Deep towers over heterogeneous feature blocks (embeddings next to
/// z-scored numerics) benefit from re-normalizing hidden activations;
/// exposed as an opt-in on [`crate::Mlp`]-style stacks.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers γ (ones) and β (zeros) for inputs of width `dim`.
    pub fn new(store: &mut ParamStore, rng: &mut Rng64, name: &str, dim: usize) -> Self {
        assert!(dim > 0, "LayerNorm needs a positive width");
        let gamma = store.add(format!("{name}.gamma"), Init::Constant(1.0).sample(1, dim, rng));
        let beta = store.add(format!("{name}.beta"), Init::Zeros.sample(1, dim, rng));
        LayerNorm { gamma, beta, dim, eps: 1e-5 }
    }

    /// Normalizes each row of `x` (`[batch, dim]`).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let (rows, cols) = g.value(x).shape();
        assert_eq!(cols, self.dim, "LayerNorm width mismatch");
        let inv_d = g.input(Matrix::full(cols, 1, 1.0 / cols as f32));
        let mu = g.matmul(x, inv_d); // [rows, 1] row means
        let ones = g.input(Matrix::full(rows, cols, 1.0));
        let mu_b = g.scale_rows(ones, mu);
        let centered = g.sub(x, mu_b);
        let sq = g.mul(centered, centered);
        let var = g.matmul(sq, inv_d); // biased row variance
        let inv_std = g.rsqrt(var, self.eps);
        let normed = g.scale_rows(centered, inv_std);
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        let scaled = g.mul_row_broadcast(normed, gamma);
        g.add_row_broadcast(scaled, beta)
    }

    /// Parameter handles (γ, β).
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.gamma, self.beta]
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::check_gradients;

    fn setup(dim: usize) -> (ParamStore, LayerNorm) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let ln = LayerNorm::new(&mut store, &mut rng, "ln", dim);
        (store, ln)
    }

    #[test]
    fn output_rows_have_zero_mean_unit_variance_at_init() {
        let (store, ln) = setup(6);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32 * 0.7 - 3.0));
        let y = ln.forward(&mut g, &store, x);
        for i in 0..4 {
            let row = g.value(y).row(i);
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-5, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {i} var {var}");
        }
    }

    #[test]
    fn is_invariant_to_input_shift_and_scale() {
        let (store, ln) = setup(5);
        let base = Matrix::from_fn(3, 5, |i, j| ((i * 5 + j) % 7) as f32 * 0.3);
        let transformed = base.map(|v| v * 4.0 + 10.0);
        let mut g = Graph::new();
        let a = g.input(base);
        let b = g.input(transformed);
        let ya = ln.forward(&mut g, &store, a);
        let yb = ln.forward(&mut g, &store, b);
        for (x, y) in g.value(ya).as_slice().iter().zip(g.value(yb).as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gamma_beta_are_trainable_and_check_out() {
        let (mut store, ln) = setup(4);
        let x = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.6);
        let target = Matrix::from_fn(3, 4, |i, j| ((i + j) % 2) as f32);
        let params = ln.params();
        check_gradients(&mut store, &params, 2e-2, |g, s| {
            let xv = g.input(x.clone());
            let y = ln.forward(g, s, xv);
            g.mse_loss(y, &target)
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let (store, ln) = setup(4);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 5));
        let _ = ln.forward(&mut g, &store, x);
    }
}
