//! Activation functions as a small closed enum.

use atnn_autograd::{Graph, Var};
use atnn_tensor::ActKind;

/// Elementwise nonlinearities usable between layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Identity (no nonlinearity) — used for output layers producing logits.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(alpha) => g.leaky_relu(x, alpha),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }

    /// The tensor-level kernel form of this activation, for the fused
    /// `linear_bias_act` epilogue (same expression element-for-element).
    pub fn kind(self) -> ActKind {
        match self {
            Activation::Identity => ActKind::Identity,
            Activation::Relu => ActKind::Relu,
            Activation::LeakyRelu(alpha) => ActKind::LeakyRelu(alpha),
            Activation::Tanh => ActKind::Tanh,
            Activation::Sigmoid => ActKind::Sigmoid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Matrix;

    #[test]
    fn all_variants_produce_expected_values() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[-2.0, 0.0, 3.0]));
        assert_eq!(Activation::Identity.apply(&mut g, x), x);
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).as_slice(), &[0.0, 0.0, 3.0]);
        let l = Activation::LeakyRelu(0.5).apply(&mut g, x);
        assert_eq!(g.value(l).as_slice(), &[-1.0, 0.0, 3.0]);
        let t = Activation::Tanh.apply(&mut g, x);
        assert!((g.value(t).get(0, 2) - 3.0f32.tanh()).abs() < 1e-6);
        let s = Activation::Sigmoid.apply(&mut g, x);
        assert!((g.value(s).get(0, 1) - 0.5).abs() < 1e-6);
    }
}
