//! Learning-rate schedules.

/// Maps a 0-based step counter to a learning rate. Feed the result to
/// [`crate::Optimizer::set_lr`] before each step.
pub trait LrSchedule {
    /// Learning rate to use at `step`.
    fn lr(&self, step: u64) -> f32;
}

/// A fixed learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr(&self, _step: u64) -> f32 {
        self.0
    }
}

/// Multiplies the rate by `gamma` every `period` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f32,
    /// Steps between decays (must be > 0).
    pub period: u64,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn lr(&self, step: u64) -> f32 {
        assert!(self.period > 0, "StepDecay period must be positive");
        self.base * self.gamma.powi((step / self.period) as i32)
    }
}

/// Smooth exponential decay `base * gamma^step` with an optional floor.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDecay {
    /// Initial rate.
    pub base: f32,
    /// Per-step decay factor (e.g. `0.999`).
    pub gamma: f32,
    /// Minimum rate.
    pub floor: f32,
}

impl LrSchedule for ExponentialDecay {
    fn lr(&self, step: u64) -> f32 {
        (self.base * self.gamma.powi(step as i32)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.1);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(1_000_000), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay { base: 1.0, period: 10, gamma: 0.5 };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(9), 1.0);
        assert_eq!(s.lr(10), 0.5);
        assert_eq!(s.lr(25), 0.25);
    }

    #[test]
    fn exponential_decay_respects_floor() {
        let s = ExponentialDecay { base: 1.0, gamma: 0.5, floor: 0.1 };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(1), 0.5);
        assert_eq!(s.lr(10), 0.1, "clamped at floor");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn step_decay_rejects_zero_period() {
        let s = StepDecay { base: 1.0, period: 0, gamma: 0.5 };
        let _ = s.lr(1);
    }
}
