//! Embedding tables for sparse categorical features.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::{Init, Rng64};

/// A `vocab x dim` lookup table mapping categorical ids to dense vectors.
///
/// The ATNN paper maps, e.g., user id / occupation / category preference /
/// item category / sub-category to 16 / 8 / 16 / 6 / 16-dimensional vectors;
/// one `Embedding` instance implements one such field. The paper's
/// *shared-embedding* strategy — the generator and the item encoder sharing
/// their profile embedding layers — is expressed by cloning the `Embedding`
/// (it is a handle; both clones address the same [`ParamId`]).
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a new table initialized with small normal noise.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        assert!(vocab > 0 && dim > 0, "embedding needs positive vocab and dim");
        let table = store.add(format!("{name}.table"), Init::Normal(0.05).sample(vocab, dim, rng));
        Embedding { table, vocab, dim }
    }

    /// Looks up a batch of ids -> `[batch, dim]`.
    ///
    /// # Panics
    /// Panics when any id is `>= vocab` (ids must be pre-encoded by the
    /// data layer, which owns out-of-vocabulary handling).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, ids: &[u32]) -> Var {
        g.gather(store, self.table, ids)
    }

    /// The underlying table parameter.
    pub fn param(&self) -> ParamId {
        self.table
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Mean-pooled multi-valued embedding (an "embedding bag", as in
/// DLRM-style models — paper reference \[16\]).
///
/// Each sample carries a variable-length *bag* of ids for one field (e.g.
/// a user's set of preferred categories); the output row is the mean of
/// the bag's embedding vectors (zero for an empty bag).
#[derive(Debug, Clone)]
pub struct EmbeddingBag {
    inner: Embedding,
}

impl EmbeddingBag {
    /// Registers a new `vocab x dim` table.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        EmbeddingBag { inner: Embedding::new(store, rng, name, vocab, dim) }
    }

    /// Mean-pools each bag -> `[bags.len(), dim]`.
    ///
    /// Implemented as one sparse gather of all ids followed by a pooling
    /// matmul, so gradients flow back through the standard gather scatter.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, bags: &[Vec<u32>]) -> Var {
        let flat: Vec<u32> = bags.iter().flatten().copied().collect();
        if flat.is_empty() {
            // All bags empty: a zero block of the right shape.
            return g.input(atnn_tensor::Matrix::zeros(bags.len(), self.inner.dim()));
        }
        let gathered = self.inner.forward(g, store, &flat);
        // Pooling matrix: row b holds 1/|bag_b| over its id positions.
        let mut pool = atnn_tensor::Matrix::zeros(bags.len(), flat.len());
        let mut cursor = 0usize;
        for (b, bag) in bags.iter().enumerate() {
            if bag.is_empty() {
                continue;
            }
            let w = 1.0 / bag.len() as f32;
            for j in cursor..cursor + bag.len() {
                pool.set(b, j, w);
            }
            cursor += bag.len();
        }
        let pool = g.input(pool);
        g.matmul(pool, gathered)
    }

    /// The underlying table parameter (shareable like [`Embedding`]).
    pub fn param(&self) -> ParamId {
        self.inner.param()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.inner.vocab()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::Graph;
    use atnn_tensor::Matrix;

    #[test]
    fn lookup_returns_rows() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let emb = Embedding::new(&mut store, &mut rng, "cat", 10, 4);
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 4);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &store, &[3, 3, 9]);
        assert_eq!(g.value(out).shape(), (3, 4));
        assert_eq!(g.value(out).row(0), g.value(out).row(1));
        assert_eq!(g.value(out).row(0), store.value(emb.param()).row(3));
    }

    #[test]
    fn shared_clone_addresses_same_table() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(1);
        let emb = Embedding::new(&mut store, &mut rng, "shared", 5, 2);
        let clone = emb.clone();
        assert_eq!(emb.param(), clone.param());
        // Training through the clone updates the original's table.
        let mut g = Graph::new();
        let e = clone.forward(&mut g, &store, &[2]);
        let s = g.sum(e);
        g.backward(s, &mut store);
        assert_eq!(store.grad(emb.param()).row(2), &[1.0, 1.0]);
    }

    #[test]
    fn trains_to_separate_classes() {
        // Two ids, opposite labels, logistic head directly on the embedding:
        // the table must move the two rows apart.
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(2);
        let emb = Embedding::new(&mut store, &mut rng, "e", 2, 1);
        let ids = [0u32, 1, 0, 1];
        let y = Matrix::col_vector(&[0.0, 1.0, 0.0, 1.0]);
        for _ in 0..200 {
            store.zero_all_grads();
            let mut g = Graph::new();
            let logits = emb.forward(&mut g, &store, &ids);
            let loss = g.bce_with_logits_loss(logits, &y);
            g.backward(loss, &mut store);
            let grad = store.grad(emb.param()).clone();
            store.value_mut(emb.param()).add_assign_scaled(&grad, -1.0).unwrap();
        }
        let table = store.value(emb.param());
        assert!(table.get(0, 0) < -1.0, "id 0 should be strongly negative");
        assert!(table.get(1, 0) > 1.0, "id 1 should be strongly positive");
    }

    #[test]
    fn bag_mean_pools_and_handles_empty_bags() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(7);
        let bag = EmbeddingBag::new(&mut store, &mut rng, "bag", 5, 3);
        let table = store.value(bag.param()).clone();
        let bags = vec![vec![0u32, 2], vec![], vec![4]];
        let mut g = Graph::new();
        let out = bag.forward(&mut g, &store, &bags);
        assert_eq!(g.value(out).shape(), (3, 3));
        for j in 0..3 {
            let expected = (table.get(0, j) + table.get(2, j)) / 2.0;
            assert!((g.value(out).get(0, j) - expected).abs() < 1e-6);
            assert_eq!(g.value(out).get(1, j), 0.0, "empty bag is zero");
            assert_eq!(g.value(out).get(2, j), table.get(4, j));
        }
    }

    #[test]
    fn bag_gradients_scatter_with_bag_weights() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(8);
        let bag = EmbeddingBag::new(&mut store, &mut rng, "bag", 4, 2);
        let bags = vec![vec![1u32, 3], vec![1]];
        let mut g = Graph::new();
        let out = bag.forward(&mut g, &store, &bags);
        let s = g.sum(out);
        g.backward(s, &mut store);
        let grad = store.grad(bag.param());
        // Row 1: 1/2 from bag 0 + 1 from bag 1; row 3: 1/2; rows 0,2: 0.
        assert!((grad.get(1, 0) - 1.5).abs() < 1e-6);
        assert!((grad.get(3, 0) - 0.5).abs() < 1e-6);
        assert_eq!(grad.get(0, 0), 0.0);
        assert_eq!(grad.get(2, 0), 0.0);
    }

    #[test]
    fn all_empty_bags_yield_zero_block() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(9);
        let bag = EmbeddingBag::new(&mut store, &mut rng, "bag", 3, 4);
        let mut g = Graph::new();
        let out = bag.forward(&mut g, &store, &[vec![], vec![]]);
        assert_eq!(g.value(out).shape(), (2, 4));
        assert!(g.value(out).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "gather")]
    fn out_of_vocab_panics() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let emb = Embedding::new(&mut store, &mut rng, "e", 3, 2);
        let mut g = Graph::new();
        let _ = emb.forward(&mut g, &store, &[3]);
    }
}
