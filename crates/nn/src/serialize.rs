//! Checkpointing: save/load a whole [`ParamStore`] as a binary blob.
//!
//! Layout (format version 2): magic `b"ATNN"`, `u32` version, `u64` slot
//! count, `u64` total scalar count, `u64` FNV-1a checksum of the payload,
//! then per slot a length-prefixed UTF-8 name followed by an `atnn-tensor`
//! matrix record. The checksum catches truncated or bit-flipped blobs
//! *before* any weight is overwritten; the slot/scalar counts catch
//! architecture drift cheaply, and the per-slot name/shape comparison
//! catches it precisely.
//!
//! Version-1 blobs (no scalar count, no checksum) produced by earlier
//! builds still load through a legacy fallback; saving always writes the
//! current version.

use std::fmt;

use atnn_autograd::ParamStore;
use atnn_tensor::{decode_matrix, encode_matrix, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ATNN";
/// Current checkpoint format: counts + checksum header.
const VERSION: u32 = 2;
/// First format: magic, version, slot count, records — no integrity check.
const LEGACY_VERSION: u32 = 1;

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum NnError {
    /// The buffer is not a valid checkpoint.
    Corrupt(&'static str),
    /// The payload bytes do not hash to the checksum in the header.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
    /// The checkpoint does not describe the same architecture as the store.
    Mismatch(String),
    /// A matrix record failed to decode.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            NnError::Checksum { expected, actual } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
                )
            }
            NnError::Mismatch(msg) => write!(f, "checkpoint/store mismatch: {msg}"),
            NnError::Tensor(e) => write!(f, "checkpoint tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// 64-bit FNV-1a over `bytes` — tiny, dependency-free, and plenty to catch
/// truncation and bit rot (this is an integrity check, not a security one).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Serializes every parameter of `store` (values only; gradients are
/// transient state and are not persisted).
pub fn save_store(store: &ParamStore) -> Bytes {
    let mut payload = BytesMut::new();
    for id in store.all_ids() {
        let name = store.name(id).as_bytes();
        payload.put_u32_le(name.len() as u32);
        payload.put_slice(name);
        encode_matrix(store.value(id), &mut payload);
    }
    let mut buf = BytesMut::with_capacity(4 + 4 + 8 + 8 + 8 + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(store.len() as u64);
    buf.put_u64_le(store.num_scalars() as u64);
    buf.put_u64_le(fnv1a64(&payload));
    buf.put_slice(&payload);
    buf.freeze()
}

/// Restores parameter values into an existing store built by the same
/// model-construction code. Accepts the current format and the legacy
/// version-1 layout.
///
/// # Errors
/// Fails when the buffer is corrupt (bad magic/version, truncation,
/// checksum mismatch) or when the slot names/shapes do not match the store
/// exactly. The store is untouched on any header or checksum failure.
pub fn load_store(store: &mut ParamStore, mut buf: Bytes) -> Result<(), NnError> {
    if buf.remaining() < 16 {
        return Err(NnError::Corrupt("header truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(NnError::Corrupt("bad magic"));
    }
    let version = buf.get_u32_le();
    let count = buf.get_u64_le() as usize;
    match version {
        LEGACY_VERSION => {}
        VERSION => {
            if buf.remaining() < 16 {
                return Err(NnError::Corrupt("header truncated"));
            }
            let scalars = buf.get_u64_le() as usize;
            let expected = buf.get_u64_le();
            let actual = fnv1a64(&buf);
            if actual != expected {
                return Err(NnError::Checksum { expected, actual });
            }
            if scalars != store.num_scalars() {
                return Err(NnError::Mismatch(format!(
                    "checkpoint has {scalars} scalars, store has {}",
                    store.num_scalars()
                )));
            }
        }
        v => {
            let _ = v;
            return Err(NnError::Corrupt("unsupported version"));
        }
    }
    if count != store.len() {
        return Err(NnError::Mismatch(format!(
            "checkpoint has {count} params, store has {}",
            store.len()
        )));
    }
    for id in store.all_ids() {
        if buf.remaining() < 4 {
            return Err(NnError::Corrupt("name length truncated"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(NnError::Corrupt("name truncated"));
        }
        let mut name = vec![0u8; name_len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name).map_err(|_| NnError::Corrupt("name not UTF-8"))?;
        if name != store.name(id) {
            return Err(NnError::Mismatch(format!(
                "slot {}: checkpoint '{name}' vs store '{}'",
                id.index(),
                store.name(id)
            )));
        }
        let m = decode_matrix(&mut buf)?;
        if m.shape() != store.value(id).shape() {
            return Err(NnError::Mismatch(format!(
                "slot '{name}': checkpoint {:?} vs store {:?}",
                m.shape(),
                store.value(id).shape()
            )));
        }
        *store.value_mut(id) = m;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use atnn_tensor::{Init, Matrix, Rng64};

    fn build_store(seed: u64) -> (ParamStore, Mlp) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "net", &[3, 5, 2], Activation::Relu);
        (store, mlp)
    }

    /// Re-encodes a current blob in the legacy v1 layout (no scalar count,
    /// no checksum) — the format earlier builds wrote to disk.
    fn downgrade_to_v1(blob: &Bytes) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(LEGACY_VERSION);
        buf.put_slice(&blob[8..16]); // slot count
        buf.put_slice(&blob[32..]); // payload, skipping scalar count + checksum
        buf.freeze()
    }

    #[test]
    fn roundtrip_restores_values() {
        let (store_a, mlp) = build_store(1);
        let blob = save_store(&store_a);
        // Same architecture, different random init.
        let (mut store_b, _) = build_store(2);
        assert_ne!(
            store_a.value(mlp.params()[0]).as_slice(),
            store_b.value(mlp.params()[0]).as_slice()
        );
        load_store(&mut store_b, blob).unwrap();
        for id in store_a.all_ids() {
            assert_eq!(store_a.value(id), store_b.value(id));
        }
    }

    #[test]
    fn legacy_v1_blob_still_loads() {
        let (store_a, _) = build_store(1);
        let v1 = downgrade_to_v1(&save_store(&store_a));
        let (mut store_b, _) = build_store(2);
        load_store(&mut store_b, v1).unwrap();
        for id in store_a.all_ids() {
            assert_eq!(store_a.value(id), store_b.value(id));
        }
    }

    #[test]
    fn bit_flip_is_caught_by_checksum_before_any_write() {
        let (store_a, _) = build_store(1);
        let blob = save_store(&store_a);
        let mut bytes: Vec<u8> = blob.as_ref().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // corrupt one weight byte
        let (mut store_b, mlp) = build_store(2);
        let before = store_b.value(mlp.params()[0]).clone();
        match load_store(&mut store_b, Bytes::from(bytes)) {
            Err(NnError::Checksum { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected checksum error, got {other:?}"),
        }
        assert_eq!(store_b.value(mlp.params()[0]), &before, "store must be untouched");
    }

    #[test]
    fn scalar_count_mismatch_is_rejected() {
        let (store_a, _) = build_store(1);
        let blob = save_store(&store_a);
        // Same slot count, different widths: [3,5,2] vs [4,4,2] is 3 slots
        // either way but different scalar totals... build explicitly:
        let mut store_c = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let _ = Mlp::new(&mut store_c, &mut rng, "net", &[4, 6, 2], Activation::Relu);
        assert!(matches!(load_store(&mut store_c, blob), Err(NnError::Mismatch(_))));
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let (store_a, _) = build_store(1);
        let blob = save_store(&store_a);
        // A different architecture with the same number of slots but
        // different shapes.
        let mut store_c = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let _ = Mlp::new(&mut store_c, &mut rng, "net", &[4, 6, 2], Activation::Relu);
        assert!(matches!(load_store(&mut store_c, blob.clone()), Err(NnError::Mismatch(_))));
        // Different slot count.
        let mut store_d = ParamStore::new();
        store_d.add("only", Matrix::zeros(1, 1));
        assert!(matches!(load_store(&mut store_d, blob), Err(NnError::Mismatch(_))));
    }

    #[test]
    fn renamed_param_is_rejected() {
        let mut store_a = ParamStore::new();
        store_a.add("alpha", Matrix::full(1, 1, 7.0));
        let blob = save_store(&store_a);
        let mut store_b = ParamStore::new();
        store_b.add("beta", Matrix::zeros(1, 1));
        assert!(matches!(load_store(&mut store_b, blob), Err(NnError::Mismatch(_))));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(2, 2));
        let blob = save_store(&store);
        for cut in [0usize, 3, 9, 17, 31, blob.len() - 1] {
            let mut fresh = ParamStore::new();
            fresh.add("w", Matrix::zeros(2, 2));
            assert!(load_store(&mut fresh, blob.slice(0..cut)).is_err(), "cut={cut}");
        }
        let mut fresh = ParamStore::new();
        fresh.add("w", Matrix::zeros(2, 2));
        assert!(load_store(&mut fresh, Bytes::from_static(b"XXXXxxxxyyyyzzzz")).is_err());
    }

    #[test]
    fn truncated_legacy_blob_is_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(2, 2));
        let v1 = downgrade_to_v1(&save_store(&store));
        for cut in [0usize, 3, 9, v1.len() - 1] {
            let mut fresh = ParamStore::new();
            fresh.add("w", Matrix::zeros(2, 2));
            assert!(load_store(&mut fresh, v1.slice(0..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn unknown_future_version_is_rejected() {
        let (store_a, _) = build_store(1);
        let mut bytes = save_store(&store_a).as_ref().to_vec();
        bytes[4] = 99; // version field
        let (mut store_b, _) = build_store(2);
        assert!(matches!(
            load_store(&mut store_b, Bytes::from(bytes)),
            Err(NnError::Corrupt("unsupported version"))
        ));
    }

    #[test]
    fn gradients_are_not_persisted() {
        let mut store = ParamStore::new();
        let p = store.add("w", Init::Normal(1.0).sample(2, 2, &mut Rng64::seed_from_u64(5)));
        store.grad_mut(p).set(0, 0, 123.0);
        let blob = save_store(&store);
        let mut fresh = ParamStore::new();
        let q = fresh.add("w", Matrix::zeros(2, 2));
        load_store(&mut fresh, blob).unwrap();
        assert_eq!(fresh.grad(q).get(0, 0), 0.0);
        assert_eq!(fresh.value(q), store.value(p));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
