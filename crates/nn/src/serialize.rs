//! Checkpointing: save/load a whole [`ParamStore`] as a binary blob.
//!
//! Layout: magic `b"ATNN"`, `u32` version, `u64` slot count, then per slot a
//! length-prefixed UTF-8 name followed by an `atnn-tensor` matrix record.
//! Loading is *strict*: names, order and shapes must match the store being
//! loaded into, which catches architecture drift between save and restore.

use std::fmt;

use atnn_autograd::ParamStore;
use atnn_tensor::{decode_matrix, encode_matrix, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ATNN";
const VERSION: u32 = 1;

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum NnError {
    /// The buffer is not a valid checkpoint.
    Corrupt(&'static str),
    /// The checkpoint does not describe the same architecture as the store.
    Mismatch(String),
    /// A matrix record failed to decode.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            NnError::Mismatch(msg) => write!(f, "checkpoint/store mismatch: {msg}"),
            NnError::Tensor(e) => write!(f, "checkpoint tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// Serializes every parameter of `store` (values only; gradients are
/// transient state and are not persisted).
pub fn save_store(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(store.len() as u64);
    for id in store.all_ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        encode_matrix(store.value(id), &mut buf);
    }
    buf.freeze()
}

/// Restores parameter values into an existing store built by the same
/// model-construction code.
///
/// # Errors
/// Fails when the buffer is corrupt or when the slot names/shapes do not
/// match the store exactly.
pub fn load_store(store: &mut ParamStore, mut buf: Bytes) -> Result<(), NnError> {
    if buf.remaining() < 16 {
        return Err(NnError::Corrupt("header truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(NnError::Corrupt("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(NnError::Corrupt("unsupported version"));
    }
    let count = buf.get_u64_le() as usize;
    if count != store.len() {
        return Err(NnError::Mismatch(format!(
            "checkpoint has {count} params, store has {}",
            store.len()
        )));
    }
    for id in store.all_ids() {
        if buf.remaining() < 4 {
            return Err(NnError::Corrupt("name length truncated"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(NnError::Corrupt("name truncated"));
        }
        let mut name = vec![0u8; name_len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name).map_err(|_| NnError::Corrupt("name not UTF-8"))?;
        if name != store.name(id) {
            return Err(NnError::Mismatch(format!(
                "slot {}: checkpoint '{name}' vs store '{}'",
                id.index(),
                store.name(id)
            )));
        }
        let m = decode_matrix(&mut buf)?;
        if m.shape() != store.value(id).shape() {
            return Err(NnError::Mismatch(format!(
                "slot '{name}': checkpoint {:?} vs store {:?}",
                m.shape(),
                store.value(id).shape()
            )));
        }
        *store.value_mut(id) = m;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use atnn_tensor::{Init, Matrix, Rng64};

    fn build_store(seed: u64) -> (ParamStore, Mlp) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "net", &[3, 5, 2], Activation::Relu);
        (store, mlp)
    }

    #[test]
    fn roundtrip_restores_values() {
        let (store_a, mlp) = build_store(1);
        let blob = save_store(&store_a);
        // Same architecture, different random init.
        let (mut store_b, _) = build_store(2);
        assert_ne!(
            store_a.value(mlp.params()[0]).as_slice(),
            store_b.value(mlp.params()[0]).as_slice()
        );
        load_store(&mut store_b, blob).unwrap();
        for id in store_a.all_ids() {
            assert_eq!(store_a.value(id), store_b.value(id));
        }
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let (store_a, _) = build_store(1);
        let blob = save_store(&store_a);
        // A different architecture with the same number of slots but
        // different shapes.
        let mut store_c = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let _ = Mlp::new(&mut store_c, &mut rng, "net", &[4, 6, 2], Activation::Relu);
        assert!(matches!(load_store(&mut store_c, blob.clone()), Err(NnError::Mismatch(_))));
        // Different slot count.
        let mut store_d = ParamStore::new();
        store_d.add("only", Matrix::zeros(1, 1));
        assert!(matches!(load_store(&mut store_d, blob), Err(NnError::Mismatch(_))));
    }

    #[test]
    fn renamed_param_is_rejected() {
        let mut store_a = ParamStore::new();
        store_a.add("alpha", Matrix::full(1, 1, 7.0));
        let blob = save_store(&store_a);
        let mut store_b = ParamStore::new();
        store_b.add("beta", Matrix::zeros(1, 1));
        assert!(matches!(load_store(&mut store_b, blob), Err(NnError::Mismatch(_))));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(2, 2));
        let blob = save_store(&store);
        for cut in [0usize, 3, 9, blob.len() - 1] {
            let mut fresh = ParamStore::new();
            fresh.add("w", Matrix::zeros(2, 2));
            assert!(load_store(&mut fresh, blob.slice(0..cut)).is_err(), "cut={cut}");
        }
        let mut fresh = ParamStore::new();
        fresh.add("w", Matrix::zeros(2, 2));
        assert!(load_store(&mut fresh, Bytes::from_static(b"XXXXxxxxyyyyzzzz")).is_err());
    }

    #[test]
    fn gradients_are_not_persisted() {
        let mut store = ParamStore::new();
        let p = store.add("w", Init::Normal(1.0).sample(2, 2, &mut Rng64::seed_from_u64(5)));
        store.grad_mut(p).set(0, 0, 123.0);
        let blob = save_store(&store);
        let mut fresh = ParamStore::new();
        let q = fresh.add("w", Matrix::zeros(2, 2));
        load_store(&mut fresh, blob).unwrap();
        assert_eq!(fresh.grad(q).get(0, 0), 0.0);
        assert_eq!(fresh.value(q), store.value(p));
    }
}
