//! Multi-layer perceptron: a stack of [`Linear`] layers with a shared
//! hidden activation.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::{Init, Rng64};

use crate::{Activation, Linear};

/// A feed-forward stack. Hidden layers use `activation`; the final layer is
/// linear (produces logits / embeddings) unless an output activation is set
/// via [`Mlp::with_output_activation`].
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Builds an MLP with widths `dims = [in, h1, ..., out]`.
    ///
    /// Initialization follows the activation: He for (leaky-)ReLU, Xavier
    /// otherwise.
    ///
    /// # Panics
    /// Panics when `dims` has fewer than two entries.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let init = match activation {
            Activation::Relu | Activation::LeakyRelu(_) => Init::HeNormal,
            _ => Init::XavierUniform,
        };
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1], init, true))
            .collect();
        Mlp { layers, activation, output_activation: Activation::Identity }
    }

    /// Sets an activation applied after the final layer.
    pub fn with_output_activation(mut self, act: Activation) -> Self {
        self.output_activation = act;
        self
    }

    /// Forward pass over the whole stack: each layer runs the fused
    /// `act(x W + b)` kernel (one tape node, one memory sweep per layer).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last { self.activation } else { self.output_activation };
            h = layer.forward_act(g, store, h, act);
        }
        h
    }

    /// All parameter handles, layer by layer.
    pub fn params(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(Linear::params).collect()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::ParamStore;
    use atnn_tensor::Matrix;

    /// Local mini test-harness: gradient-descend a closure-built loss.
    fn train_until(
        store: &mut ParamStore,
        params: &[ParamId],
        lr: f32,
        max_steps: usize,
        target_loss: f32,
        mut build: impl FnMut(&mut Graph, &ParamStore) -> Var,
    ) -> f32 {
        let mut loss_val = f32::INFINITY;
        for _ in 0..max_steps {
            store.zero_grads(params);
            let mut g = Graph::new();
            let loss = build(&mut g, store);
            loss_val = g.value(loss).get(0, 0);
            if loss_val < target_loss {
                break;
            }
            g.backward(loss, store);
            for &p in params {
                let grad = store.grad(p).clone();
                store.value_mut(p).add_assign_scaled(&grad, -lr).unwrap();
            }
        }
        loss_val
    }

    #[test]
    fn shapes_flow_through() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[6, 10, 4, 2], Activation::Relu);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.params().len(), 6); // 3 layers x (w, b)
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(5, 6));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 2));
    }

    #[test]
    fn learns_xor() {
        // XOR is not linearly separable: passing requires the hidden layer
        // and its gradients to actually work.
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(42);
        let mlp = Mlp::new(&mut store, &mut rng, "xor", &[2, 8, 1], Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let y = Matrix::col_vector(&[0.0, 1.0, 1.0, 0.0]);
        let params = mlp.params();
        let loss = train_until(&mut store, &params, 0.5, 3000, 0.05, |g, s| {
            let xv = g.input(x.clone());
            let logits = mlp.forward(g, s, xv);
            g.bce_with_logits_loss(logits, &y)
        });
        assert!(loss < 0.05, "XOR loss stayed at {loss}");
        // Check the decision boundary.
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let logits = mlp.forward(&mut g, &store, xv);
        let preds = g.value(logits);
        for (i, want) in [0.0f32, 1.0, 1.0, 0.0].iter().enumerate() {
            let p = if preds.get(i, 0) > 0.0 { 1.0 } else { 0.0 };
            assert_eq!(p, *want, "sample {i}");
        }
    }

    #[test]
    fn output_activation_is_applied() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[2, 3], Activation::Relu)
            .with_output_activation(Activation::Sigmoid);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[10.0, -10.0]]).unwrap());
        let y = mlp.forward(&mut g, &store, x);
        assert!(g.value(y).as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(4);
        let _ = Mlp::new(&mut store, &mut rng, "bad", &[3], Activation::Relu);
    }
}
