//! Fully connected (dense) layer.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::{Init, Rng64};

use crate::Activation;

/// Affine map `y = x W + b`, with weights stored `[in_dim, out_dim]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters in `store`.
    ///
    /// `name` prefixes the parameter names (`{name}.w`, `{name}.b`), which
    /// is what checkpoints key on.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init.sample(in_dim, out_dim, rng));
        let b = bias.then(|| store.add(format!("{name}.b"), Init::Zeros.sample(1, out_dim, rng)));
        Linear { w, b, in_dim, out_dim }
    }

    /// Forward pass: `x` is `[batch, in_dim]`, output `[batch, out_dim]`.
    ///
    /// Equivalent to `forward_act(.., Activation::Identity)`; both run the
    /// fused `linear_bias_act` kernel and record one tape node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        self.forward_act(g, store, x, Activation::Identity)
    }

    /// Fused forward pass `act(x W + b)`: matmul, bias and activation in a
    /// single output sweep — bit-identical to applying them separately.
    pub fn forward_act(&self, g: &mut Graph, store: &ParamStore, x: Var, act: Activation) -> Var {
        g.linear(store, x, self.w, self.b, act.kind())
    }

    /// Parameter handles of this layer.
    pub fn params(&self) -> Vec<ParamId> {
        let mut ids = vec![self.w];
        ids.extend(self.b);
        ids
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Matrix;

    #[test]
    fn forward_matches_manual_affine() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let layer = Linear::new(&mut store, &mut rng, "l", 2, 2, Init::Zeros, true);
        store.value_mut(layer.w).as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        store.value_mut(layer.b.unwrap()).as_mut_slice().copy_from_slice(&[0.5, -0.5]);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 1.0]]).unwrap());
        let y = layer.forward(&mut g, &store, x);
        // [1,1] @ [[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(g.value(y).as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn bias_is_optional() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(1);
        let layer = Linear::new(&mut store, &mut rng, "l", 3, 4, Init::XavierUniform, false);
        assert_eq!(layer.params().len(), 1);
        assert_eq!(store.len(), 1);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 3));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 4));
        assert_eq!(g.value(y).as_slice(), &[0.0; 8]);
    }

    #[test]
    fn names_are_prefixed() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(2);
        let layer = Linear::new(&mut store, &mut rng, "tower.fc1", 2, 2, Init::Zeros, true);
        assert_eq!(store.name(layer.w), "tower.fc1.w");
        assert_eq!(store.name(layer.b.unwrap()), "tower.fc1.b");
        assert_eq!(layer.in_dim(), 2);
        assert_eq!(layer.out_dim(), 2);
    }
}
