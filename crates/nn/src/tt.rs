//! Tensor-train-factorized embedding tables (TT-Rec style).
//!
//! [`TtRowCodec`] stores a virtual `rows x dim` embedding table as two
//! factor matrices of a rank-`r` two-core tensor train — the compression
//! scheme of TT-Rec (Yin et al., MLSys 2021) specialized to two cores.
//! The row index factors as `i = i1 * v2 + i2` (`v1 * v2 >= rows`) and
//! the embedding dimension as `dim = e1 * e2`; element `(j1, j2)` of row
//! `i` is the rank-space dot
//!
//! ```text
//!   E[i][j1*e2 + j2] = < A[i1*e1 + j1], B[i2*e2 + j2] >
//! ```
//!
//! with factors `A: (v1*e1) x r` and `B: (v2*e2) x r`. Storage falls
//! from `rows * dim` scalars to `(v1*e1 + v2*e2) * r` — at 10M rows,
//! dim 64 and rank 16 that is ~1900x fewer parameters — while gathers
//! and row-sparse gradient scatters stay O(batch · dim · r).
//!
//! The codec registers with [`atnn_autograd::ParamStore::add_codec`] and
//! trains through the standard `Graph::gather` boundary; gradients
//! accumulate in *factor space* (`dA`, `dB`), which is what makes the
//! memory win real during training too (no dense `rows x dim` gradient
//! ever exists). Only plain SGD can step it — see the
//! [`atnn_autograd::codec`] module docs for why stateful optimizers
//! reject codec slots.

use atnn_autograd::RowCodec;
use atnn_tensor::{Matrix, Rng64};

/// Two-core tensor-train backing store for a `rows x dim` embedding
/// table. See the [module docs](self) for the factorization.
#[derive(Debug, Clone)]
pub struct TtRowCodec {
    rows: usize,
    dim: usize,
    v2: usize,
    e1: usize,
    e2: usize,
    rank: usize,
    a: Matrix,
    b: Matrix,
    da: Matrix,
    db: Matrix,
}

/// The largest divisor of `n` that is at most `sqrt(n)` (1 for primes).
fn balanced_divisor(n: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

impl TtRowCodec {
    /// A TT table for `rows x dim` at the given rank, with factor shapes
    /// chosen automatically: `v1 ~ sqrt(rows)` (rounded so `v1*v2 >=
    /// rows`) and `e1` the most balanced divisor split of `dim`.
    ///
    /// Factors are initialized i.i.d. normal with standard deviation
    /// `(init_std^2 / rank)^(1/4)`, so each virtual table element — a
    /// sum of `rank` products of two factors — has variance
    /// `init_std^2`, matching a dense table drawn from
    /// `N(0, init_std^2)`.
    ///
    /// # Panics
    /// Panics when `rows`, `dim` or `rank` is zero.
    pub fn new(rows: usize, dim: usize, rank: usize, init_std: f32, rng: &mut Rng64) -> Self {
        assert!(rows > 0 && dim > 0 && rank > 0, "TtRowCodec: degenerate shape");
        let v1 = (rows as f64).sqrt().ceil() as usize;
        let v2 = rows.div_ceil(v1);
        let e1 = balanced_divisor(dim);
        let e2 = dim / e1;
        let s = (f64::from(init_std * init_std) / rank as f64).sqrt().sqrt() as f32;
        let a = Matrix::from_fn(v1 * e1, rank, |_, _| rng.normal_with(0.0, s));
        let b = Matrix::from_fn(v2 * e2, rank, |_, _| rng.normal_with(0.0, s));
        let da = Matrix::zeros(v1 * e1, rank);
        let db = Matrix::zeros(v2 * e2, rank);
        Self { rows, dim, v2, e1, e2, rank, a, b, da, db }
    }

    /// The TT rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The factor shapes `((v1*e1, r), (v2*e2, r))`.
    pub fn factor_shapes(&self) -> ((usize, usize), (usize, usize)) {
        (self.a.shape(), self.b.shape())
    }

    /// The factor matrices `(A, B)` (tests, export).
    pub fn factors(&self) -> (&Matrix, &Matrix) {
        (&self.a, &self.b)
    }

    /// The accumulated factor gradients `(dA, dB)` (tests).
    pub fn factor_grads(&self) -> (&Matrix, &Matrix) {
        (&self.da, &self.db)
    }

    fn split(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        (i / self.v2, i % self.v2)
    }
}

impl RowCodec for TtRowCodec {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn gather_into(&self, indices: &[u32], out: &mut Matrix) {
        assert_eq!(out.shape(), (indices.len(), self.dim), "gather_into shape");
        for (k, &idx) in indices.iter().enumerate() {
            assert!((idx as usize) < self.rows, "gather index {idx} out of range");
            let (i1, i2) = self.split(idx as usize);
            let row = out.row_mut(k);
            for j1 in 0..self.e1 {
                let arow = self.a.row(i1 * self.e1 + j1);
                for j2 in 0..self.e2 {
                    let brow = self.b.row(i2 * self.e2 + j2);
                    row[j1 * self.e2 + j2] = atnn_tensor::dot(arow, brow);
                }
            }
        }
    }

    fn scatter_grads(&mut self, indices: &[u32], g: &Matrix) {
        assert_eq!(g.shape(), (indices.len(), self.dim), "scatter_grads shape");
        for (k, &idx) in indices.iter().enumerate() {
            assert!((idx as usize) < self.rows, "scatter index {idx} out of range");
            let (i1, i2) = self.split(idx as usize);
            let grow = g.row(k);
            // dA[i1*e1+j1] += sum_j2 g[j1*e2+j2] * B[i2*e2+j2]
            // dB[i2*e2+j2] += sum_j1 g[j1*e2+j2] * A[i1*e1+j1]
            for j1 in 0..self.e1 {
                let darow = self.da.row_mut(i1 * self.e1 + j1);
                for j2 in 0..self.e2 {
                    let gv = grow[j1 * self.e2 + j2];
                    if gv == 0.0 {
                        continue;
                    }
                    let brow = self.b.row(i2 * self.e2 + j2);
                    for (d, &bv) in darow.iter_mut().zip(brow) {
                        *d += gv * bv;
                    }
                }
            }
            for j2 in 0..self.e2 {
                let dbrow = self.db.row_mut(i2 * self.e2 + j2);
                for j1 in 0..self.e1 {
                    let gv = grow[j1 * self.e2 + j2];
                    if gv == 0.0 {
                        continue;
                    }
                    let arow = self.a.row(i1 * self.e1 + j1);
                    for (d, &av) in dbrow.iter_mut().zip(arow) {
                        *d += gv * av;
                    }
                }
            }
        }
    }

    fn zero_grads(&mut self) {
        self.da.fill_zero();
        self.db.fill_zero();
    }

    fn grad_l2_sq(&self) -> f32 {
        self.da.as_slice().iter().map(|&v| v * v).sum::<f32>()
            + self.db.as_slice().iter().map(|&v| v * v).sum::<f32>()
    }

    fn scale_grads(&mut self, alpha: f32) {
        self.da.scale_assign(alpha);
        self.db.scale_assign(alpha);
    }

    fn sgd_step(&mut self, lr: f32) {
        self.a.add_assign_scaled(&self.da, -lr).expect("tt factor shapes agree");
        self.b.add_assign_scaled(&self.db, -lr).expect("tt factor shapes agree");
    }

    fn param_count(&self) -> usize {
        self.a.len() + self.b.len()
    }

    fn storage_bytes(&self) -> usize {
        (self.a.len() + self.b.len()) * 4
    }

    fn clone_box(&self) -> Box<dyn RowCodec> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_divisor_splits() {
        assert_eq!(balanced_divisor(64), 8);
        assert_eq!(balanced_divisor(16), 4);
        assert_eq!(balanced_divisor(12), 3);
        assert_eq!(balanced_divisor(7), 1);
        assert_eq!(balanced_divisor(1), 1);
    }

    #[test]
    fn shapes_and_compression() {
        let mut rng = Rng64::seed_from_u64(1);
        let tt = TtRowCodec::new(10_000, 64, 8, 0.1, &mut rng);
        assert_eq!(tt.rows(), 10_000);
        assert_eq!(tt.dim(), 64);
        let ((ar, ac), (br, bc)) = tt.factor_shapes();
        assert_eq!(ac, 8);
        assert_eq!(bc, 8);
        assert_eq!(tt.param_count(), ar * ac + br * bc);
        assert!(
            tt.param_count() * 40 < 10_000 * 64,
            "expected >40x compression, got {}x",
            10_000 * 64 / tt.param_count()
        );
    }

    #[test]
    fn gather_matches_the_factorization_formula() {
        let mut rng = Rng64::seed_from_u64(7);
        let tt = TtRowCodec::new(30, 6, 3, 0.5, &mut rng);
        let (a, b) = tt.factors();
        let ids = [0u32, 13, 29, 13];
        let mut out = Matrix::zeros(ids.len(), 6);
        tt.gather_into(&ids, &mut out);
        for (k, &id) in ids.iter().enumerate() {
            let (i1, i2) = tt.split(id as usize);
            for j1 in 0..tt.e1 {
                for j2 in 0..tt.e2 {
                    let want = atnn_tensor::dot(a.row(i1 * tt.e1 + j1), b.row(i2 * tt.e2 + j2));
                    assert_eq!(out.get(k, j1 * tt.e2 + j2), want);
                }
            }
        }
    }

    #[test]
    fn factor_gradients_pass_finite_difference_check() {
        // Loss: L = sum_k sum_j c[k][j] * E[ids[k]][j]. Its analytic
        // factor gradients (via scatter_grads of c) must match central
        // differences on every factor element.
        let mut rng = Rng64::seed_from_u64(3);
        let mut tt = TtRowCodec::new(12, 4, 2, 0.6, &mut rng);
        let ids = [1u32, 7, 11, 7];
        let coefs = Matrix::from_fn(ids.len(), 4, |i, j| ((i * 4 + j) % 5) as f32 * 0.3 - 0.6);
        tt.scatter_grads(&ids, &coefs);

        let loss = |tt: &TtRowCodec| -> f64 {
            let mut out = Matrix::zeros(ids.len(), 4);
            tt.gather_into(&ids, &mut out);
            out.as_slice()
                .iter()
                .zip(coefs.as_slice())
                .map(|(&e, &c)| f64::from(e) * f64::from(c))
                .sum()
        };

        let eps = 1e-3f32;
        let (da, db) = (tt.factor_grads().0.clone(), tt.factor_grads().1.clone());
        for (which, grad) in [(0usize, &da), (1usize, &db)] {
            let (r, c) = grad.shape();
            for i in 0..r {
                for j in 0..c {
                    let mut plus = tt.clone();
                    let mut minus = tt.clone();
                    let (p, m) = if which == 0 {
                        (&mut plus.a, &mut minus.a)
                    } else {
                        (&mut plus.b, &mut minus.b)
                    };
                    p.set(i, j, p.get(i, j) + eps);
                    m.set(i, j, m.get(i, j) - eps);
                    let numeric = (loss(&plus) - loss(&minus)) / (2.0 * f64::from(eps));
                    let analytic = f64::from(grad.get(i, j));
                    assert!(
                        (numeric - analytic).abs() <= 1e-3 * analytic.abs().max(1.0),
                        "factor {which} ({i},{j}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn sgd_step_moves_against_the_gradient() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut tt = TtRowCodec::new(20, 4, 2, 0.4, &mut rng);
        let ids = [3u32, 17];
        let g = Matrix::from_fn(2, 4, |i, j| (i + j) as f32 * 0.25 + 0.1);
        let before = {
            let mut out = Matrix::zeros(2, 4);
            tt.gather_into(&ids, &mut out);
            out.as_slice().iter().zip(g.as_slice()).map(|(&e, &c)| e * c).sum::<f32>()
        };
        tt.scatter_grads(&ids, &g);
        tt.sgd_step(0.05);
        let after = {
            let mut out = Matrix::zeros(2, 4);
            tt.gather_into(&ids, &mut out);
            out.as_slice().iter().zip(g.as_slice()).map(|(&e, &c)| e * c).sum::<f32>()
        };
        assert!(after < before, "linear-in-E loss must drop: {before} -> {after}");
        tt.zero_grads();
        assert_eq!(tt.grad_l2_sq(), 0.0);
    }
}
