//! First-order optimizers over [`ParamStore`] parameter groups.
//!
//! Each optimizer owns the handles of the parameters it updates. The
//! paper's Algorithm 1 alternates between two optimizers over *disjoint*
//! groups of one shared store: a "D step" updating the towers/encoders and
//! a "G step" updating the generator (and the shared embeddings).

use atnn_autograd::{Grad, ParamId, ParamStore};
use atnn_obs::{Counter, Gauge};
use atnn_tensor::{decode_matrix, encode_matrix, Matrix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

// --- optimizer telemetry --------------------------------------------------
// Always-on relaxed counters (one `fetch_add` per parameter slot per
// step); the sparse/dense split is the observable effect of
// `ParamStore::mark_sparse` — a sparse-declared embedding table silently
// falling back to dense steps shows up here long before it shows up as a
// wall-clock regression.

/// Parameter slots stepped through the dense (full-matrix) path.
static DENSE_PARAM_STEPS: Counter = Counter::new();
/// Parameter slots stepped through the sparse (touched-rows-only) path.
static SPARSE_PARAM_STEPS: Counter = Counter::new();
/// Codec-compressed slots stepped through `RowCodec::sgd_step`.
static CODEC_PARAM_STEPS: Counter = Counter::new();
/// Pre-clip global gradient norm from the latest [`clip_grad_norm`].
static LAST_GRAD_NORM: Gauge = Gauge::new();

/// Optimizer step counts since process start: `(dense_slots,
/// sparse_slots)` — one count per parameter slot per `step()` call,
/// across all optimizers.
pub fn param_step_counts() -> (u64, u64) {
    (DENSE_PARAM_STEPS.get(), SPARSE_PARAM_STEPS.get())
}

/// Codec-compressed slot steps since process start (one count per codec
/// slot per plain-SGD `step()` call).
pub fn codec_param_steps() -> u64 {
    CODEC_PARAM_STEPS.get()
}

/// The pre-clip global gradient norm recorded by the most recent
/// [`clip_grad_norm`] call (0.0 before any).
pub fn last_grad_norm() -> f64 {
    LAST_GRAD_NORM.get()
}

/// A first-order optimizer bound to a parameter group.
pub trait Optimizer {
    /// Applies one update from the accumulated gradients. Does **not** zero
    /// gradients; callers zero the group before the next backward pass.
    fn step(&mut self, store: &mut ParamStore);

    /// The parameter group this optimizer updates.
    fn params(&self) -> &[ParamId];

    /// Overrides the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Serializes the optimizer's *internal state* (moments/accumulators/
    /// step counters — not the weights, which live in the store). Together
    /// with [`crate::save_store`] this makes long trainings resumable
    /// bit-identically.
    fn state_blob(&self) -> Bytes;

    /// Restores state saved by [`Optimizer::state_blob`] from an optimizer
    /// constructed over the same parameter group.
    ///
    /// # Errors
    /// Returns a description when the blob does not match this optimizer's
    /// kind or group shape.
    fn load_state(&mut self, blob: Bytes) -> Result<(), String>;
}

/// Shared helpers for the per-optimizer state codecs: a tagged header and
/// a list of matrices.
fn encode_state(tag: u8, scalars: &[f64], matrices: &[&[Matrix]]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"ATOP");
    buf.put_u8(tag);
    buf.put_u32_le(scalars.len() as u32);
    for &s in scalars {
        buf.put_f64_le(s);
    }
    let total: usize = matrices.iter().map(|ms| ms.len()).sum();
    buf.put_u32_le(total as u32);
    for ms in matrices {
        for m in *ms {
            encode_matrix(m, &mut buf);
        }
    }
    buf.freeze()
}

fn decode_state(mut buf: Bytes, expect_tag: u8) -> Result<(Vec<f64>, Vec<Matrix>), String> {
    if buf.remaining() < 5 {
        return Err("optimizer state truncated".into());
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != b"ATOP" {
        return Err("bad optimizer-state magic".into());
    }
    let tag = buf.get_u8();
    if tag != expect_tag {
        return Err(format!("optimizer kind mismatch: blob tag {tag}, expected {expect_tag}"));
    }
    if buf.remaining() < 4 {
        return Err("scalar count truncated".into());
    }
    let n_scalars = buf.get_u32_le() as usize;
    if buf.remaining() < n_scalars * 8 + 4 {
        return Err("scalars truncated".into());
    }
    let scalars = (0..n_scalars).map(|_| buf.get_f64_le()).collect();
    let n_mats = buf.get_u32_le() as usize;
    let mut matrices = Vec::with_capacity(n_mats);
    for _ in 0..n_mats {
        matrices.push(decode_matrix(&mut buf).map_err(|e| e.to_string())?);
    }
    Ok((scalars, matrices))
}

fn check_shapes(got: &[Matrix], want: &[Matrix]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("state has {} buffers, optimizer expects {}", got.len(), want.len()));
    }
    for (g, w) in got.iter().zip(want) {
        if g.shape() != w.shape() {
            return Err(format!("state buffer {:?} vs expected {:?}", g.shape(), w.shape()));
        }
    }
    Ok(())
}

/// Rescales the gradients of `params` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clipping norm.
pub fn clip_grad_norm(store: &mut ParamStore, params: &[ParamId], max_norm: f32) -> f32 {
    let norm = store.grad_norm(params);
    let clipped = norm > max_norm && norm > 0.0;
    if clipped {
        let scale = max_norm / norm;
        for &p in params {
            store.scale_grad(p, scale);
        }
    }
    LAST_GRAD_NORM.set(norm as f64);
    atnn_obs::emit(&atnn_obs::Event::GradNorm { norm, clipped });
    norm
}

/// Stochastic gradient descent, optionally with classical momentum and
/// decoupled weight decay.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<ParamId>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<ParamId>, lr: f32) -> Self {
        Sgd { params, lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.momentum > 0.0 && self.velocity.is_empty() {
            self.velocity = self
                .params
                .iter()
                .map(|&p| {
                    let (r, c) = store.shape(p);
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for (i, &p) in self.params.iter().enumerate() {
            // Codec-compressed slots carry their own factor-space
            // gradients and step themselves; only the plain-SGD update
            // is defined for them (momentum velocity / coupled decay
            // would need a per-codec layout — reject loudly instead).
            if store.is_codec_param(p) {
                assert!(
                    self.momentum == 0.0 && self.weight_decay == 0.0,
                    "codec-compressed parameter '{}' supports plain SGD only \
                     (momentum/weight decay would need dense state)",
                    store.name(p)
                );
                CODEC_PARAM_STEPS.incr();
                store.codec_mut(p).sgd_step(self.lr);
                continue;
            }
            // Momentum keeps dense velocity and weight decay pulls on every
            // weight, so both need the full gradient; plain SGD has a true
            // sparse path (touched rows only, bit-identical to the dense
            // sweep since untouched rows would receive exact-zero updates).
            if (self.momentum > 0.0 || self.weight_decay > 0.0) && store.grad_entry(p).is_sparse() {
                store.densify_grad(p);
            }
            let (value, grad) = store.value_and_grad_mut(p);
            match grad {
                Grad::Dense(gm) => {
                    DENSE_PARAM_STEPS.incr();
                    // One fused sweep over the slot: decay, velocity and
                    // weight update per element, preserving the exact
                    // expressions (and rounding) of the former separate
                    // passes — elementwise-independent passes interleave
                    // bit-identically.
                    if self.momentum > 0.0 {
                        let v = &mut self.velocity[i];
                        for ((w, gv), vv) in value
                            .as_mut_slice()
                            .iter_mut()
                            .zip(gm.as_mut_slice())
                            .zip(v.as_mut_slice())
                        {
                            if self.weight_decay > 0.0 {
                                *gv += *w * self.weight_decay;
                            }
                            // (the former add_assign_scaled(g, 1.0): the
                            // 1.0 factor is exact, so it is dropped here)
                            *vv = *vv * self.momentum + *gv;
                            *w += -self.lr * *vv;
                        }
                    } else if self.weight_decay > 0.0 {
                        for (w, gv) in value.as_mut_slice().iter_mut().zip(gm.as_mut_slice()) {
                            *gv += *w * self.weight_decay;
                            *w += -self.lr * *gv;
                        }
                    } else {
                        value.add_assign_scaled(gm, -self.lr).expect("sgd shape");
                    }
                }
                Grad::Sparse(sg) => {
                    SPARSE_PARAM_STEPS.incr();
                    for (row, vals) in sg.iter() {
                        let wrow = value.row_mut(row as usize);
                        for (w, &gv) in wrow.iter_mut().zip(vals) {
                            *w += -self.lr * gv;
                        }
                    }
                }
            }
        }
    }

    fn params(&self) -> &[ParamId] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_blob(&self) -> Bytes {
        encode_state(1, &[], &[&self.velocity])
    }

    fn load_state(&mut self, blob: Bytes) -> Result<(), String> {
        let (_, matrices) = decode_state(blob, 1)?;
        if !self.velocity.is_empty() {
            check_shapes(&matrices, &self.velocity)?;
        }
        self.velocity = matrices;
        Ok(())
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// # Sparse (lazy) updates
///
/// For parameters whose gradient arrives row-sparse, `step` applies
/// *lazy-Adam* semantics (as in TensorFlow's `LazyAdamOptimizer`): only
/// the rows touched by the batch update their first/second moments and
/// weights; untouched rows keep stale moments and skip their decay.
/// This is **not** bit-identical to dense Adam — dense Adam keeps
/// updating every row from moment momentum even on zero gradient — but
/// converges to the same quality on sparse workloads (see the
/// `sparse_optim` integration tests) while costing O(touched rows)
/// instead of O(vocab). Bias correction uses the global step counter
/// for all rows. Moments themselves stay dense, so checkpoint blobs are
/// unchanged.
#[derive(Debug)]
pub struct Adam {
    params: Vec<ParamId>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyper-parameters.
    pub fn new(params: Vec<ParamId>, lr: f32) -> Self {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the beta coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.is_empty() {
            let zero_like = |store: &ParamStore, p: ParamId| {
                let (r, c) = store.shape(p);
                Matrix::zeros(r, c)
            };
            self.m = self.params.iter().map(|&p| zero_like(store, p)).collect();
            self.v = self.params.iter().map(|&p| zero_like(store, p)).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, &p) in self.params.iter().enumerate() {
            assert!(
                !store.is_codec_param(p),
                "codec-compressed parameter '{}' supports plain SGD only; \
                 Adam moments have no codec layout",
                store.name(p)
            );
            let (value, grad) = store.value_and_grad_mut(p);
            match grad {
                Grad::Dense(gm) => {
                    DENSE_PARAM_STEPS.incr();
                    // One fused sweep: both moments and the weight update
                    // per element, with the exact expressions (and product
                    // association) of the former three passes.
                    let m = &mut self.m[i];
                    let v = &mut self.v[i];
                    for (((w, &gv), mv), vv) in value
                        .as_mut_slice()
                        .iter_mut()
                        .zip(gm.as_slice())
                        .zip(m.as_mut_slice())
                        .zip(v.as_mut_slice())
                    {
                        *mv = *mv * self.beta1 + (1.0 - self.beta1) * gv;
                        *vv = *vv * self.beta2 + (1.0 - self.beta2) * gv * gv;
                        let m_hat = *mv / bc1;
                        let v_hat = *vv / bc2;
                        let mut update = m_hat / (v_hat.sqrt() + self.eps);
                        if self.weight_decay > 0.0 {
                            update += self.weight_decay * *w;
                        }
                        *w -= self.lr * update;
                    }
                }
                Grad::Sparse(sg) => {
                    SPARSE_PARAM_STEPS.incr();
                    // Lazy Adam: touched rows only (see the type docs).
                    let m = &mut self.m[i];
                    let v = &mut self.v[i];
                    for (row, vals) in sg.iter() {
                        let r = row as usize;
                        let mrow = m.row_mut(r);
                        let vrow = v.row_mut(r);
                        let wrow = value.row_mut(r);
                        for (((w, mv), vv), &gv) in wrow.iter_mut().zip(mrow).zip(vrow).zip(vals) {
                            *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                            *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                            let m_hat = *mv / bc1;
                            let v_hat = *vv / bc2;
                            let mut update = m_hat / (v_hat.sqrt() + self.eps);
                            if self.weight_decay > 0.0 {
                                update += self.weight_decay * *w;
                            }
                            *w -= self.lr * update;
                        }
                    }
                }
            }
        }
    }

    fn params(&self) -> &[ParamId] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_blob(&self) -> Bytes {
        encode_state(2, &[self.t as f64], &[&self.m, &self.v])
    }

    fn load_state(&mut self, blob: Bytes) -> Result<(), String> {
        let (scalars, matrices) = decode_state(blob, 2)?;
        let t = *scalars.first().ok_or("missing Adam step counter")? as u64;
        if matrices.len() % 2 != 0 {
            return Err("Adam state must hold an (m, v) pair per parameter".into());
        }
        let (m, v) = matrices.split_at(matrices.len() / 2);
        if !self.m.is_empty() {
            check_shapes(m, &self.m)?;
            check_shapes(v, &self.v)?;
        }
        self.m = m.to_vec();
        self.v = v.to_vec();
        self.t = t;
        Ok(())
    }
}

/// AdaGrad (Duchi et al., 2011): per-coordinate rates that decay with the
/// accumulated squared gradient. Well suited to the sparse embedding
/// gradients produced by `Graph::gather`.
#[derive(Debug)]
pub struct AdaGrad {
    params: Vec<ParamId>,
    lr: f32,
    eps: f32,
    accum: Vec<Matrix>,
}

impl AdaGrad {
    /// AdaGrad with accumulator epsilon `1e-10`.
    pub fn new(params: Vec<ParamId>, lr: f32) -> Self {
        AdaGrad { params, lr, eps: 1e-10, accum: Vec::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, store: &mut ParamStore) {
        if self.accum.is_empty() {
            self.accum = self
                .params
                .iter()
                .map(|&p| {
                    let (r, c) = store.shape(p);
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for (i, &p) in self.params.iter().enumerate() {
            assert!(
                !store.is_codec_param(p),
                "codec-compressed parameter '{}' supports plain SGD only; \
                 AdaGrad accumulators have no codec layout",
                store.name(p)
            );
            let (value, grad) = store.value_and_grad_mut(p);
            match grad {
                Grad::Dense(gm) => {
                    DENSE_PARAM_STEPS.incr();
                    // One fused sweep, mirroring the sparse arm below:
                    // accumulate then update per element.
                    let acc = &mut self.accum[i];
                    for ((w, &gv), a) in
                        value.as_mut_slice().iter_mut().zip(gm.as_slice()).zip(acc.as_mut_slice())
                    {
                        *a += gv * gv;
                        *w -= self.lr * gv / (a.sqrt() + self.eps);
                    }
                }
                Grad::Sparse(sg) => {
                    SPARSE_PARAM_STEPS.incr();
                    // Touched rows only; bit-identical to the dense sweep
                    // (untouched accumulators/weights would see exact-zero
                    // deltas, and per-element update order is unchanged).
                    let acc = &mut self.accum[i];
                    for (row, vals) in sg.iter() {
                        let r = row as usize;
                        let arow = acc.row_mut(r);
                        let wrow = value.row_mut(r);
                        for ((w, a), &gv) in wrow.iter_mut().zip(arow).zip(vals) {
                            *a += gv * gv;
                            *w -= self.lr * gv / (a.sqrt() + self.eps);
                        }
                    }
                }
            }
        }
    }

    fn params(&self) -> &[ParamId] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_blob(&self) -> Bytes {
        encode_state(3, &[], &[&self.accum])
    }

    fn load_state(&mut self, blob: Bytes) -> Result<(), String> {
        let (_, matrices) = decode_state(blob, 3)?;
        if !self.accum.is_empty() {
            check_shapes(&matrices, &self.accum)?;
        }
        self.accum = matrices;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::Graph;

    /// Minimizes `f(w) = (w - 3)^2` and returns the final w.
    fn run_quadratic(
        opt: &mut dyn Optimizer,
        store: &mut ParamStore,
        p: ParamId,
        steps: usize,
    ) -> f32 {
        let target = Matrix::full(1, 1, 3.0);
        for _ in 0..steps {
            store.zero_grads(opt.params());
            let mut g = Graph::new();
            let w = g.param(store, p);
            let loss = g.mse_loss(w, &target);
            g.backward(loss, store);
            opt.step(store);
        }
        store.value(p).get(0, 0)
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, -5.0));
        let mut opt = Sgd::new(vec![p], 0.1);
        let w = run_quadratic(&mut opt, &mut store, p, 100);
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let run = |momentum: f32| {
            let mut store = ParamStore::new();
            let p = store.add("w", Matrix::full(1, 1, -5.0));
            let mut opt = Sgd::new(vec![p], 0.02).with_momentum(momentum);
            let w = run_quadratic(&mut opt, &mut store, p, 30);
            (w - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, -5.0));
        let mut opt = Adam::new(vec![p], 0.3);
        let w = run_quadratic(&mut opt, &mut store, p, 200);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adagrad_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, -5.0));
        let mut opt = AdaGrad::new(vec![p], 2.0);
        let w = run_quadratic(&mut opt, &mut store, p, 300);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_first_step_matches_closed_form() {
        // With bias correction, Adam's first update is exactly
        // -lr * g / (|g| + eps) regardless of gradient magnitude.
        for &grad in &[0.001f32, 1.0, 250.0] {
            let mut store = ParamStore::new();
            let p = store.add("w", Matrix::full(1, 1, 0.0));
            store.grad_mut(p).set(0, 0, grad);
            let mut opt = Adam::new(vec![p], 0.1);
            opt.step(&mut store);
            let w = store.value(p).get(0, 0);
            let expected = -0.1 * grad / (grad.abs() + 1e-8);
            assert!((w - expected).abs() < 1e-5, "grad={grad}: {w} vs {expected}");
        }
    }

    #[test]
    fn adagrad_step_matches_closed_form() {
        // First step: -lr * g / (sqrt(g^2) + eps) = -lr * sign(g).
        // Second identical gradient: accumulator doubles -> / sqrt(2).
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, 0.0));
        let mut opt = AdaGrad::new(vec![p], 0.5);
        store.grad_mut(p).set(0, 0, 2.0);
        opt.step(&mut store);
        let after_one = store.value(p).get(0, 0);
        assert!((after_one + 0.5).abs() < 1e-4, "{after_one}");
        store.zero_grads(&[p]);
        store.grad_mut(p).set(0, 0, 2.0);
        opt.step(&mut store);
        let second_delta = store.value(p).get(0, 0) - after_one;
        assert!(
            (second_delta + 0.5 / 2.0f32.sqrt()).abs() < 1e-4,
            "per-coordinate rate must decay: {second_delta}"
        );
    }

    #[test]
    fn momentum_first_two_steps_match_closed_form() {
        // v1 = g, w -= lr*v1; v2 = mu*v1 + g, w -= lr*v2.
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, 0.0));
        let mut opt = Sgd::new(vec![p], 0.1).with_momentum(0.9);
        store.grad_mut(p).set(0, 0, 1.0);
        opt.step(&mut store);
        assert!((store.value(p).get(0, 0) + 0.1).abs() < 1e-6);
        store.zero_grads(&[p]);
        store.grad_mut(p).set(0, 0, 1.0);
        opt.step(&mut store);
        // total = -0.1 - 0.1*(0.9 + 1.0) = -0.29
        assert!((store.value(p).get(0, 0) + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, 10.0));
        let mut opt = Sgd::new(vec![p], 0.1).with_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        for _ in 0..10 {
            store.zero_grads(opt.params());
            opt.step(&mut store);
        }
        let w = store.value(p).get(0, 0);
        assert!(w > 0.0 && w < 10.0 * 0.96f32.powi(10) + 1e-3, "w={w}");
    }

    #[test]
    fn step_only_touches_its_group() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::full(1, 1, 1.0));
        let b = store.add("b", Matrix::full(1, 1, 1.0));
        store.grad_mut(a).set(0, 0, 1.0);
        store.grad_mut(b).set(0, 0, 1.0);
        let mut opt = Sgd::new(vec![a], 0.5);
        opt.step(&mut store);
        assert_eq!(store.value(a).get(0, 0), 0.5);
        assert_eq!(store.value(b).get(0, 0), 1.0, "outside group must be untouched");
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::zeros(1, 2));
        store.grad_mut(p).as_mut_slice().copy_from_slice(&[3.0, 4.0]);
        let before = clip_grad_norm(&mut store, &[p], 1.0);
        assert!((before - 5.0).abs() < 1e-6);
        assert!((store.grad_norm(&[p]) - 1.0).abs() < 1e-5);
        // Within bound: untouched.
        let before = clip_grad_norm(&mut store, &[p], 10.0);
        assert!((before - 1.0).abs() < 1e-5);
        assert!((store.grad_norm(&[p]) - 1.0).abs() < 1e-5);
    }

    /// Checkpoint-resume must be bit-identical to uninterrupted training
    /// for every optimizer (the whole point of persisting moment state).
    #[test]
    fn resume_from_state_is_bit_identical() {
        use crate::{load_store, save_store};

        let build = |kind: u8| -> (ParamStore, Box<dyn Optimizer>) {
            let mut store = ParamStore::new();
            let p = store.add("w", Matrix::from_fn(2, 3, |i, j| (i + j) as f32 * 0.3 - 0.5));
            let opt: Box<dyn Optimizer> = match kind {
                0 => Box::new(Sgd::new(vec![p], 0.05).with_momentum(0.9)),
                1 => Box::new(Adam::new(vec![p], 0.05)),
                _ => Box::new(AdaGrad::new(vec![p], 0.2)),
            };
            (store, opt)
        };
        // A deterministic pseudo-gradient stream.
        let grad_at =
            |t: usize| Matrix::from_fn(2, 3, |i, j| ((t * 7 + i * 3 + j) % 5) as f32 * 0.2 - 0.4);
        for kind in 0..3u8 {
            // Continuous: 10 steps straight through.
            let (mut store_a, mut opt_a) = build(kind);
            let p = store_a.all_ids()[0];
            for t in 0..10 {
                store_a.zero_grads(&[p]);
                *store_a.grad_mut(p) = grad_at(t);
                opt_a.step(&mut store_a);
            }
            // Interrupted: 4 steps, checkpoint, fresh process, 6 more.
            let (mut store_b, mut opt_b) = build(kind);
            let q = store_b.all_ids()[0];
            for t in 0..4 {
                store_b.zero_grads(&[q]);
                *store_b.grad_mut(q) = grad_at(t);
                opt_b.step(&mut store_b);
            }
            let weights = save_store(&store_b);
            let state = opt_b.state_blob();
            let (mut store_c, mut opt_c) = build(kind);
            let r = store_c.all_ids()[0];
            load_store(&mut store_c, weights).unwrap();
            opt_c.load_state(state).unwrap();
            for t in 4..10 {
                store_c.zero_grads(&[r]);
                *store_c.grad_mut(r) = grad_at(t);
                opt_c.step(&mut store_c);
            }
            assert_eq!(
                store_a.value(p),
                store_c.value(r),
                "kind {kind}: resume must be bit-identical"
            );
        }
    }

    #[test]
    fn state_blob_rejects_kind_and_shape_mismatch() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::zeros(2, 2));
        let mut sgd = Sgd::new(vec![p], 0.1).with_momentum(0.9);
        store.grad_mut(p).set(0, 0, 1.0);
        sgd.step(&mut store); // materialize velocity
        let sgd_state = sgd.state_blob();

        let mut adam = Adam::new(vec![p], 0.1);
        assert!(adam.load_state(sgd_state.clone()).unwrap_err().contains("kind mismatch"));

        // Same kind, wrong shape.
        let mut other_store = ParamStore::new();
        let q = other_store.add("w", Matrix::zeros(3, 3));
        let mut other_sgd = Sgd::new(vec![q], 0.1).with_momentum(0.9);
        other_store.grad_mut(q).set(0, 0, 1.0);
        other_sgd.step(&mut other_store);
        assert!(other_sgd.load_state(sgd_state).unwrap_err().contains("state buffer"));

        // Garbage.
        let mut fresh = Sgd::new(vec![p], 0.1);
        assert!(fresh.load_state(bytes::Bytes::from_static(b"junk")).is_err());
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::full(1, 1, 0.0));
        store.grad_mut(p).set(0, 0, 1.0);
        let mut opt = Sgd::new(vec![p], 1.0);
        opt.set_lr(0.25);
        opt.step(&mut store);
        assert_eq!(store.value(p).get(0, 0), -0.25);
    }
}
