//! Neural-network building blocks over [`atnn_autograd`].
//!
//! Third substrate of the ATNN reproduction: the layer/optimizer zoo the
//! paper gets from TensorFlow. Provides exactly what the ATNN architecture
//! needs — [`Embedding`] tables for sparse categorical fields, [`Linear`] /
//! [`Mlp`] stacks, the Deep & Cross Network cross layers ([`CrossNet`],
//! Wang et al. 2017 as cited by the paper), initializers, and first-order
//! optimizers ([`Sgd`], [`Adam`], [`AdaGrad`]) that operate on explicit
//! parameter groups so the alternating D/G phases of the paper's
//! Algorithm 1 can update disjoint subsets of a shared [`ParamStore`].
//!
//! # Example: a tiny classifier
//! ```
//! use atnn_autograd::{Graph, ParamStore};
//! use atnn_nn::{Activation, Adam, Mlp, Optimizer};
//! use atnn_tensor::{Init, Matrix, Rng64};
//!
//! let mut store = ParamStore::new();
//! let mut rng = Rng64::seed_from_u64(0);
//! let mlp = Mlp::new(&mut store, &mut rng, "clf", &[4, 8, 1], Activation::Relu);
//! let mut opt = Adam::new(mlp.params(), 1e-2);
//!
//! let x = Init::Normal(1.0).sample(16, 4, &mut rng);
//! let y = Matrix::from_fn(16, 1, |i, _| (i % 2) as f32);
//! for _ in 0..10 {
//!     store.zero_grads(opt.params());
//!     let mut g = Graph::new();
//!     let xv = g.input(x.clone());
//!     let logits = mlp.forward(&mut g, &store, xv);
//!     let loss = g.bce_with_logits_loss(logits, &y);
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

mod activation;
mod cross;
mod embedding;
mod linear;
mod mlp;
mod norm;
mod optim;
mod schedule;
mod serialize;
mod tt;

pub use activation::Activation;
pub use cross::CrossNet;
pub use embedding::{Embedding, EmbeddingBag};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use optim::{
    clip_grad_norm, codec_param_steps, last_grad_norm, param_step_counts, AdaGrad, Adam, Optimizer,
    Sgd,
};
pub use schedule::{ConstantLr, ExponentialDecay, LrSchedule, StepDecay};
pub use serialize::{fnv1a64, load_store, save_store, NnError};
pub use tt::TtRowCodec;

use atnn_autograd::{Graph, ParamStore, Var};
use atnn_tensor::{Matrix, Rng64};

/// Applies inverted dropout to `x` during training; identity otherwise.
///
/// The mask is sampled fresh per call (per batch) and scaled by
/// `1 / (1 - rate)` so inference needs no rescaling.
pub fn dropout(g: &mut Graph, rng: &mut Rng64, x: Var, rate: f32, training: bool) -> Var {
    assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
    if !training || rate == 0.0 {
        return x;
    }
    let keep = 1.0 - rate;
    let (rows, cols) = g.value(x).shape();
    let mask =
        Matrix::from_fn(rows, cols, |_, _| if rng.bernoulli(keep) { 1.0 / keep } else { 0.0 });
    g.mul_mask(x, &mask)
}

/// Adds `0.5 * coeff * Σ ||w||²` over `params` to the tape and returns the
/// penalty node (add it to your loss).
pub fn l2_penalty(
    g: &mut Graph,
    store: &ParamStore,
    params: &[atnn_autograd::ParamId],
    coeff: f32,
) -> Var {
    let mut acc: Option<Var> = None;
    for &p in params {
        let v = g.param(store, p);
        let sq = g.mul(v, v);
        let s = g.sum(sq);
        acc = Some(match acc {
            Some(a) => g.add(a, s),
            None => s,
        });
    }
    let total = acc.expect("l2_penalty: empty parameter group");
    g.mul_scalar(total, 0.5 * coeff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::ParamStore;
    use atnn_tensor::Init;

    #[test]
    fn dropout_is_identity_in_eval_mode() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut g = Graph::new();
        let x = g.input(Matrix::full(4, 4, 2.0));
        let y = dropout(&mut g, &mut rng, x, 0.5, false);
        assert_eq!(g.value(y).as_slice(), g.value(x).as_slice());
    }

    #[test]
    fn dropout_scales_surviving_units() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut g = Graph::new();
        let x = g.input(Matrix::full(50, 50, 1.0));
        let y = dropout(&mut g, &mut rng, x, 0.5, true);
        let vals = g.value(y).as_slice();
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout keeps expectation: {mean}");
    }

    #[test]
    fn l2_penalty_matches_manual() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::row_vector(&[3.0, 4.0]));
        let mut g = Graph::new();
        let pen = l2_penalty(&mut g, &store, &[p], 0.1);
        assert!((g.value(pen).get(0, 0) - 0.5 * 0.1 * 25.0).abs() < 1e-6);
    }

    #[test]
    fn l2_penalty_gradient_is_scaled_weight() {
        let mut store = ParamStore::new();
        let p = store.add("w", Matrix::row_vector(&[2.0]));
        let mut g = Graph::new();
        let pen = l2_penalty(&mut g, &store, &[p], 0.5);
        g.backward(pen, &mut store);
        // d/dw 0.25 w^2 = 0.5 w = 1.0
        assert!((store.grad(p).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn doc_example_components_compose() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(2);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 5, 1], Activation::Tanh);
        let mut g = Graph::new();
        let x = g.input(Init::Normal(1.0).sample(7, 3, &mut rng));
        let out = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(out).shape(), (7, 1));
    }
}
