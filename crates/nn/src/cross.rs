//! Deep & Cross Network cross layers (Wang et al., ADKDD 2017 — reference
//! [2] of the ATNN paper).
//!
//! Each cross layer computes `x_{l+1} = x_0 ⊙ (x_l w_l) + b_l + x_l`, which
//! constructs explicit bounded-degree feature crosses: after `L` layers the
//! output contains polynomial interactions of the input up to degree
//! `L + 1`, at `O(dim)` extra parameters per layer. The ATNN paper uses
//! this in *all* generators and encoders so that "plenty of high level
//! features, e.g., item PV, seller PV and category PV" are crossed
//! automatically instead of by manual feature engineering.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_tensor::{Init, Rng64};

/// A stack of DCN cross layers over a fixed input width.
#[derive(Debug, Clone)]
pub struct CrossNet {
    ws: Vec<ParamId>,
    bs: Vec<ParamId>,
    dim: usize,
}

impl CrossNet {
    /// Registers `depth` cross layers of width `dim`.
    ///
    /// `depth == 0` is allowed and makes [`CrossNet::forward`] the identity
    /// — that degenerate configuration is what the cross-depth ablation
    /// (DESIGN.md A3) exercises.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        dim: usize,
        depth: usize,
    ) -> Self {
        let mut ws = Vec::with_capacity(depth);
        let mut bs = Vec::with_capacity(depth);
        for l in 0..depth {
            // Small-normal init keeps the polynomial terms tame at depth.
            ws.push(store.add(format!("{name}.cross{l}.w"), Init::Normal(0.1).sample(dim, 1, rng)));
            bs.push(store.add(format!("{name}.cross{l}.b"), Init::Zeros.sample(1, dim, rng)));
        }
        CrossNet { ws, bs, dim }
    }

    /// Applies every cross layer; input and output are `[batch, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x0: Var) -> Var {
        let mut xl = x0;
        for (w, b) in self.ws.iter().zip(&self.bs) {
            let wv = g.param(store, *w);
            let bv = g.param(store, *b);
            let xlw = g.matmul(xl, wv); // [batch, 1]
            let crossed = g.scale_rows(x0, xlw); // x0 ⊙ (x_l w)
            let with_bias = g.add_row_broadcast(crossed, bv);
            xl = g.add(with_bias, xl);
        }
        xl
    }

    /// Parameter handles of all layers.
    pub fn params(&self) -> Vec<ParamId> {
        self.ws.iter().chain(&self.bs).copied().collect()
    }

    /// Number of cross layers.
    pub fn depth(&self) -> usize {
        self.ws.len()
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_autograd::check_gradients;
    use atnn_tensor::Matrix;

    #[test]
    fn depth_zero_is_identity() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let net = CrossNet::new(&mut store, &mut rng, "c", 3, 0);
        assert_eq!(net.depth(), 0);
        assert!(net.params().is_empty());
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap());
        let y = net.forward(&mut g, &store, x);
        assert_eq!(y, x);
    }

    #[test]
    fn single_layer_matches_manual_formula() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(1);
        let net = CrossNet::new(&mut store, &mut rng, "c", 2, 1);
        store.value_mut(net.ws[0]).as_mut_slice().copy_from_slice(&[0.5, -1.0]);
        store.value_mut(net.bs[0]).as_mut_slice().copy_from_slice(&[0.1, 0.2]);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[2.0, 3.0]]).unwrap());
        let y = net.forward(&mut g, &store, x);
        // x w = 2*0.5 + 3*(-1) = -2; x0*(xw) = [-4, -6]; + b + x0 = [-1.9, -2.8]
        let got = g.value(y);
        assert!((got.get(0, 0) + 1.9).abs() < 1e-6);
        assert!((got.get(0, 1) + 2.8).abs() < 1e-6);
    }

    #[test]
    fn deep_stack_produces_high_degree_crosses() {
        // With b = 0 and w = e1, the first output coordinate after L layers
        // is x1 * (1 + x1)^L — verify the polynomial degree escalates.
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(2);
        let net = CrossNet::new(&mut store, &mut rng, "c", 2, 3);
        for l in 0..3 {
            store.value_mut(net.ws[l]).as_mut_slice().copy_from_slice(&[1.0, 0.0]);
            store.value_mut(net.bs[l]).as_mut_slice().copy_from_slice(&[0.0, 0.0]);
        }
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[0.5, 1.0]]).unwrap());
        let y = net.forward(&mut g, &store, x);
        // Manual recurrence: x_{l+1}[0] = x0[0]*xl[0] + xl[0] (since w=e1)
        // and xl[0] evolves 0.5 -> 0.75 -> 1.125 -> 1.6875.
        assert!((g.value(y).get(0, 0) - 1.6875).abs() < 1e-5);
    }

    #[test]
    fn gradients_check_out() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let net = CrossNet::new(&mut store, &mut rng, "c", 4, 2);
        let x = Init::Normal(0.5).sample(3, 4, &mut rng);
        let target = Init::Normal(0.5).sample(3, 4, &mut rng);
        let params = net.params();
        check_gradients(&mut store, &params, 2e-2, |g, s| {
            let xv = g.input(x.clone());
            let y = net.forward(g, s, xv);
            g.mse_loss(y, &target)
        })
        .unwrap();
    }
}
