//! Sparse-vs-dense training equivalence at the optimizer level.
//!
//! Two models with bit-identical initial weights train side by side —
//! one with its embedding tables declared row-sparse, one dense. For
//! SGD (plain) and AdaGrad the resulting weights must agree **bitwise**
//! after many steps, including under gradient clipping: untouched rows
//! receive `w += -lr * 0.0`, which is a bitwise no-op for every finite
//! `w`, and touched rows run the exact same scalar expressions in the
//! same order. Adam is exempt from bit-identity by design (lazy
//! moments; see `Adam`'s doc comment) and gets a convergence-parity
//! test instead. EmbeddingBag backward (mean pooling, empty bags,
//! duplicate ids across bags) is covered through the same harness.

use atnn_autograd::{Graph, ParamStore};
use atnn_nn::{clip_grad_norm, AdaGrad, Adam, EmbeddingBag, Optimizer, Sgd};
use atnn_tensor::{Matrix, Rng64};
use proptest::prelude::*;

/// One tiny model: an embedding bag pooled over id bags, squared-error
/// loss against per-sample targets. Everything deterministic from `seed`.
struct Harness {
    store: ParamStore,
    bag: EmbeddingBag,
}

impl Harness {
    fn new(seed: u64, vocab: usize, dim: usize, sparse: bool) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(seed);
        let bag = EmbeddingBag::new(&mut store, &mut rng, "emb", vocab, dim);
        if sparse {
            store.mark_sparse(bag.param());
        }
        Harness { store, bag }
    }

    /// Forward + backward on one batch of bags; returns the loss node's value.
    fn backward(&mut self, g: &mut Graph, bags: &[Vec<u32>], targets: &Matrix) -> f32 {
        self.store.zero_all_grads();
        g.clear();
        let pooled = self.bag.forward(g, &self.store, bags);
        let loss = g.mse_loss(pooled, targets);
        let value = g.value(loss).get(0, 0);
        g.backward(loss, &mut self.store);
        value
    }

    fn table_bits(&self) -> Vec<u32> {
        self.store.value(self.bag.param()).as_slice().iter().map(|v| v.to_bits()).collect()
    }
}

fn targets_for(bags: &[Vec<u32>], dim: usize) -> Matrix {
    Matrix::from_fn(bags.len(), dim, |i, j| ((i * 7 + j * 3) as f32 * 0.61).cos())
}

/// Batches of bags over a small vocab: variable bag length *including
/// empty bags*, duplicate ids within and across bags.
fn bag_batches() -> impl Strategy<Value = (usize, usize, Vec<Vec<Vec<u32>>>)> {
    (3usize..10, 1usize..5).prop_flat_map(|(vocab, dim)| {
        let bag = collection::vec(0..vocab as u32, 0..4); // 0 => empty bag allowed
        let batch = collection::vec(bag, 1..5);
        collection::vec(batch, 2..6).prop_map(move |steps| (vocab, dim, steps))
    })
}

/// Runs the same multi-step training twice (sparse vs dense declaration)
/// with the given optimizer factory and asserts bitwise weight equality
/// after every step.
fn assert_training_bit_identical<O: Optimizer>(
    vocab: usize,
    dim: usize,
    steps: &[Vec<Vec<u32>>],
    clip: Option<f32>,
    make_opt: impl Fn(&Harness) -> O,
) -> Result<(), TestCaseError> {
    let mut dense = Harness::new(42, vocab, dim, false);
    let mut sparse = Harness::new(42, vocab, dim, true);
    prop_assert_eq!(dense.table_bits(), sparse.table_bits(), "identical init");
    let mut dense_opt = make_opt(&dense);
    let mut sparse_opt = make_opt(&sparse);
    let mut gd = Graph::new();
    let mut gs = Graph::new();
    for (step, bags) in steps.iter().enumerate() {
        let targets = targets_for(bags, dim);
        let ld = dense.backward(&mut gd, bags, &targets);
        let ls = sparse.backward(&mut gs, bags, &targets);
        prop_assert_eq!(ld.to_bits(), ls.to_bits(), "loss diverged at step {}", step);
        if let Some(c) = clip {
            let group = [dense.bag.param()];
            clip_grad_norm(&mut dense.store, &group, c);
            clip_grad_norm(&mut sparse.store, &group, c);
        }
        dense_opt.step(&mut dense.store);
        sparse_opt.step(&mut sparse.store);
        prop_assert_eq!(
            dense.table_bits(),
            sparse.table_bits(),
            "weights diverged after step {}",
            step
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn embedding_bag_backward_is_bit_identical((vocab, dim, steps) in bag_batches()) {
        // Gradient-level check (before any optimizer): accumulate one
        // batch in each representation and compare densified results.
        let mut dense = Harness::new(7, vocab, dim, false);
        let mut sparse = Harness::new(7, vocab, dim, true);
        let mut gd = Graph::new();
        let mut gs = Graph::new();
        for bags in &steps {
            let targets = targets_for(bags, dim);
            dense.backward(&mut gd, bags, &targets);
            sparse.backward(&mut gs, bags, &targets);
            let a = dense.store.grad_to_dense(dense.bag.param());
            let b = sparse.store.grad_to_dense(sparse.bag.param());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn sgd_training_is_bit_identical((vocab, dim, steps) in bag_batches()) {
        assert_training_bit_identical(vocab, dim, &steps, None, |h| {
            Sgd::new(vec![h.bag.param()], 0.1)
        })?;
    }

    #[test]
    fn sgd_with_clipping_is_bit_identical((vocab, dim, steps) in bag_batches()) {
        // Tight clip threshold so rescaling actually fires.
        assert_training_bit_identical(vocab, dim, &steps, Some(0.05), |h| {
            Sgd::new(vec![h.bag.param()], 0.1)
        })?;
    }

    #[test]
    fn adagrad_training_is_bit_identical((vocab, dim, steps) in bag_batches()) {
        assert_training_bit_identical(vocab, dim, &steps, None, |h| {
            AdaGrad::new(vec![h.bag.param()], 0.1)
        })?;
    }

    #[test]
    fn sgd_momentum_densifies_and_still_matches((vocab, dim, steps) in bag_batches()) {
        // Momentum (and coupled weight decay) cannot run row-sparse —
        // velocity decays even on untouched rows — so the step densifies
        // first. The result must still equal the dense-declared run.
        assert_training_bit_identical(vocab, dim, &steps, None, |h| {
            Sgd::new(vec![h.bag.param()], 0.05).with_momentum(0.9)
        })?;
    }
}

/// Lazy Adam is *not* bit-identical to dense Adam (dense moments keep
/// decaying on untouched rows; lazy moments freeze). The contract is
/// convergence parity: on the same regression task both reach a loss far
/// below the starting point, and within a modest factor of each other.
#[test]
fn lazy_adam_converges_like_dense_adam() {
    let vocab = 24;
    let dim = 4;
    // Skewed id distribution so some rows go untouched for many steps —
    // the exact regime where lazy and dense moments diverge.
    let mut rng = Rng64::seed_from_u64(99);
    let batches: Vec<Vec<Vec<u32>>> = (0..120)
        .map(|_| {
            (0..6)
                .map(|_| {
                    (0..2)
                        .map(|_| {
                            let r = rng.uniform();
                            // 80% of mass on the first 4 ids.
                            if r < 0.8 {
                                rng.index(4) as u32
                            } else {
                                rng.index(vocab) as u32
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Exactly fittable regression: each id has a fixed target vector and a
    // bag's target is the mean of its ids' vectors — the solution is
    // "embedding row i == target vector i", so the loss floor is zero.
    let id_target = |id: u32, j: usize| ((id as usize * 3 + j) as f32 * 0.7).sin();
    let bag_targets = |bags: &[Vec<u32>]| {
        Matrix::from_fn(bags.len(), dim, |i, j| {
            let bag = &bags[i];
            if bag.is_empty() {
                0.0
            } else {
                bag.iter().map(|&id| id_target(id, j)).sum::<f32>() / bag.len() as f32
            }
        })
    };

    let run = |sparse: bool| -> (f32, f32) {
        let mut h = Harness::new(5, vocab, dim, sparse);
        let mut opt = Adam::new(vec![h.bag.param()], 0.05);
        let mut g = Graph::new();
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, bags) in batches.iter().enumerate() {
            let targets = bag_targets(bags);
            let loss = h.backward(&mut g, bags, &targets);
            if i == 0 {
                first = loss;
            }
            last = loss;
            opt.step(&mut h.store);
        }
        (first, last)
    };

    let (dense_first, dense_last) = run(false);
    let (sparse_first, sparse_last) = run(true);
    assert_eq!(dense_first.to_bits(), sparse_first.to_bits(), "same init => same first loss");
    assert!(
        dense_last < 0.2 * dense_first,
        "dense Adam must converge: {dense_first} -> {dense_last}"
    );
    assert!(
        sparse_last < 0.2 * sparse_first,
        "lazy Adam must converge: {sparse_first} -> {sparse_last}"
    );
    let ratio = sparse_last / dense_last.max(1e-6);
    assert!(
        (0.2..=5.0).contains(&ratio),
        "lazy Adam should land within 5x of dense Adam: {sparse_last} vs {dense_last}"
    );
}

/// AdaGrad's sparse step and a from-scratch dense reference must agree
/// on a hand-checkable case: one id hit twice, one never.
#[test]
fn adagrad_sparse_matches_closed_form() {
    let mut h = Harness::new(1, 3, 1, true);
    let w0: Vec<f32> = h.store.value(h.bag.param()).as_slice().to_vec();
    let mut opt = AdaGrad::new(vec![h.bag.param()], 1.0);
    let mut g = Graph::new();
    let bags = vec![vec![1u32]];
    let targets = Matrix::zeros(1, 1);
    h.backward(&mut g, &bags, &targets);
    // mse grad for one sample: 2*(w1 - 0)/1 = 2*w1; adagrad with accum=g^2:
    // w1 -= lr * g / (sqrt(g^2) + eps) ≈ w1 - sign(g).
    let grad = 2.0 * w0[1];
    let expected = w0[1] - 1.0 * grad / (grad.abs() + 1e-10);
    opt.step(&mut h.store);
    let w = h.store.value(h.bag.param());
    assert_eq!(w.get(0, 0).to_bits(), w0[0].to_bits(), "untouched row 0 unchanged");
    assert_eq!(w.get(2, 0).to_bits(), w0[2].to_bits(), "untouched row 2 unchanged");
    assert!((w.get(1, 0) - expected).abs() < 1e-5, "{} vs {expected}", w.get(1, 0));
}
