//! Codec-backed embedding slots through the full train loop.
//!
//! Two pins: (1) the codec *plumbing* is lossless — a model trained
//! through an `IdentityCodec` slot is bit-identical to the same model
//! trained through a native sparse dense slot under plain SGD; (2) the
//! tensor-train codec actually *learns* — a gather→regression task
//! drives its loss down while storing a small fraction of the dense
//! parameter count.

use atnn_autograd::{Graph, IdentityCodec, ParamStore, RowCodec};
use atnn_nn::{clip_grad_norm, Optimizer, Sgd, TtRowCodec};
use atnn_tensor::{Matrix, Rng64};

const VOCAB: usize = 40;
const DIM: usize = 8;

/// One SGD epoch over a fixed batch stream: gather rows, project with a
/// shared dense weight, MSE against targets. Returns the final loss.
fn run_epochs(store: &mut ParamStore, table: atnn_autograd::ParamId, epochs: usize) -> f32 {
    let mut rng = Rng64::seed_from_u64(99);
    let w = store.add("proj", Matrix::from_fn(DIM, 1, |i, _| (i as f32 * 0.17 - 0.5) * 0.3));
    let params = vec![table, w];
    let mut opt = Sgd::new(params.clone(), 0.1);
    let mut last = f32::INFINITY;
    for _ in 0..epochs {
        for step in 0..8 {
            let ids: Vec<u32> = (0..16).map(|k| ((step * 16 + k * 7) % VOCAB) as u32).collect();
            let targets = Matrix::from_fn(ids.len(), 1, |i, _| ((ids[i] % 5) as f32 - 2.0) * 0.4);
            store.zero_grads(&params);
            let mut g = Graph::new();
            let e = g.gather(store, table, &ids);
            let wv = g.param(store, w);
            let pred = g.matmul(e, wv);
            let loss = g.mse_loss(pred, &targets);
            last = g.value(loss).get(0, 0);
            g.backward(loss, store);
            clip_grad_norm(store, &params, 5.0);
            opt.step(store);
        }
        let _ = rng.next_u64();
    }
    last
}

#[test]
fn identity_codec_training_is_bit_identical_to_dense_sparse_slot() {
    let init = Matrix::from_fn(VOCAB, DIM, |i, j| ((i * DIM + j) % 13) as f32 * 0.05 - 0.3);

    let mut dense_store = ParamStore::new();
    let dense_table = dense_store.add("emb", init.clone());
    dense_store.mark_sparse(dense_table);
    let dense_loss = run_epochs(&mut dense_store, dense_table, 80);

    let mut codec_store = ParamStore::new();
    let codec_table = codec_store.add_codec("emb", Box::new(IdentityCodec::new(init.clone())));
    let codec_loss = run_epochs(&mut codec_store, codec_table, 80);

    assert_eq!(dense_loss.to_bits(), codec_loss.to_bits(), "losses must match bit-for-bit");
    let trained_codec =
        codec_store.gather_rows(codec_table, &(0..VOCAB as u32).collect::<Vec<_>>());
    for i in 0..VOCAB {
        for j in 0..DIM {
            assert_eq!(
                dense_store.value(dense_table).get(i, j).to_bits(),
                trained_codec.get(i, j).to_bits(),
                "table element ({i},{j}) diverged"
            );
        }
    }
    assert!(dense_loss < 0.05, "training must actually reduce the loss ({dense_loss})");
}

#[test]
fn tt_codec_learns_the_regression_task() {
    let mut rng = Rng64::seed_from_u64(5);
    let mut store = ParamStore::new();
    let tt = TtRowCodec::new(VOCAB, DIM, 4, 0.3, &mut rng);
    let compressed = tt.param_count();
    let table = store.add_codec("emb.tt", Box::new(tt));
    assert!(store.is_codec_param(table));
    assert_eq!(store.shape(table), (VOCAB, DIM));
    assert!(compressed < VOCAB * DIM, "TT must store fewer scalars than dense");

    // Loss before any training, on the same stream run_epochs uses.
    let first = {
        let mut probe = ParamStore::new();
        let t2 = probe.add_codec(
            "emb.tt",
            Box::new({
                let mut r = Rng64::seed_from_u64(5);
                TtRowCodec::new(VOCAB, DIM, 4, 0.3, &mut r)
            }),
        );
        let w = probe.add("proj", Matrix::from_fn(DIM, 1, |i, _| (i as f32 * 0.17 - 0.5) * 0.3));
        let ids: Vec<u32> = (0..16).map(|k| ((k * 7) % VOCAB) as u32).collect();
        let targets = Matrix::from_fn(ids.len(), 1, |i, _| ((ids[i] % 5) as f32 - 2.0) * 0.4);
        let mut g = Graph::new();
        let e = g.gather(&probe, t2, &ids);
        let wv = g.param(&probe, w);
        let pred = g.matmul(e, wv);
        let loss = g.mse_loss(pred, &targets);
        g.value(loss).get(0, 0)
    };

    let last = run_epochs(&mut store, table, 30);
    assert!(last < first * 0.5, "TT training must at least halve the loss: {first} -> {last}");
}

#[test]
fn codec_slots_reject_stateful_optimizers() {
    let make = || {
        let mut store = ParamStore::new();
        let table = store.add_codec("emb", Box::new(IdentityCodec::new(Matrix::zeros(4, 2))));
        store.scatter_rows(table, &[1], &Matrix::full(1, 2, 1.0));
        (store, table)
    };

    let (mut store, table) = make();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        atnn_nn::Adam::new(vec![table], 0.1).step(&mut store);
    }));
    assert!(result.is_err(), "Adam must reject codec slots");

    let (mut store, table) = make();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Sgd::new(vec![table], 0.1).with_momentum(0.9).step(&mut store);
    }));
    assert!(result.is_err(), "momentum SGD must reject codec slots");
}
