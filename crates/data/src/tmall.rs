//! The Tmall e-commerce simulator.
//!
//! Substitutes the paper's proprietary Tmall log (23.1M items, 4M users,
//! 40M interactions) with a generative model that preserves the causal
//! structure the paper's Table I depends on:
//!
//! 1. Every user has a latent preference vector `z_u`; every item a latent
//!    attribute vector `z_i` and a scalar quality `q_i`.
//! 2. The click probability is
//!    `P(click|u,i) = σ(α·⟨z_u,z_i⟩/√k + β·q_i + γ)`.
//! 3. **Item statistics** (the paper's 46 features: PV/UV/clicks/cart/
//!    favorite/purchase counts and rates over 1–30-day horizons) are
//!    aggregates of simulated historical traffic — so the empirical CTR
//!    columns reveal `q_i` almost noiselessly. Models with access to
//!    statistics are therefore strong, exactly as in the paper.
//! 4. **Item profiles** (the paper's 38 features: category/brand/seller/…
//!    plus numeric attributes) are *noisy, partially-informative* functions
//!    of `(z_i, q_i)`. A model that only sees profiles must dig the latent
//!    signal out of the noise — that is the cold-start gap ATNN's generator
//!    closes.
//!
//! Feature counts match the paper exactly: 19 user / 38 item-profile /
//! 46 item-statistics raw features.

use atnn_tensor::{Matrix, Rng64};

use crate::schema::{FeatureBlock, FeatureSchema, FieldSpec};

/// One logged exposure with its click label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// User index.
    pub user: u32,
    /// Item index.
    pub item: u32,
    /// Whether the user clicked.
    pub clicked: bool,
}

/// Simulator configuration. All fields are public dials; presets below.
#[derive(Debug, Clone, PartialEq)]
pub struct TmallConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Number of logged user-item exposures.
    pub num_interactions: usize,
    /// Latent dimensionality `k` of preference/attribute vectors.
    pub latent_dim: usize,
    /// Std of the Gaussian noise on numeric profile features.
    pub profile_noise: f32,
    /// Probability a categorical profile field is replaced by a random id.
    pub profile_flip_prob: f32,
    /// Relative noise of the historical-traffic statistics.
    pub stats_noise: f32,
    /// α — weight of user-item affinity in the click model.
    pub affinity_weight: f32,
    /// β — weight of item appeal in the click model.
    pub quality_weight: f32,
    /// Strength of the multiplicative `z₀·z₁` term inside item appeal —
    /// a bounded-degree feature cross (the structure DCN exists to
    /// capture; paper §III-C motivates DCN with exactly such crosses).
    pub interaction_strength: f32,
    /// γ — global bias (controls the base click rate).
    pub bias: f32,
    /// Append hashed `userID` / `itemID` columns to the encoded blocks
    /// (the paper's input sample includes both raw ids). The item-id
    /// column rides on the *statistics* block so it reaches only the
    /// encoder — the generator stays profile-only by construction.
    pub include_ids: bool,
    /// Hash-bucket count for the id columns.
    pub id_hash_buckets: usize,
    /// Master seed.
    pub seed: u64,
}

impl TmallConfig {
    /// Minutes-long full-scale run for the release-mode repro binaries
    /// (scaled from the paper's 23.1M/4M/40M; see DESIGN.md §2.1).
    pub fn paper_scale() -> Self {
        TmallConfig {
            num_users: 4_000,
            num_items: 20_000,
            num_interactions: 400_000,
            ..Self::tiny()
        }
    }

    /// Seconds-long run for examples and release benches.
    pub fn small() -> Self {
        TmallConfig { num_users: 1_500, num_items: 4_000, num_interactions: 60_000, ..Self::tiny() }
    }

    /// Sub-second run for unit/integration tests (debug builds).
    pub fn tiny() -> Self {
        TmallConfig {
            num_users: 300,
            num_items: 800,
            num_interactions: 8_000,
            latent_dim: 8,
            profile_noise: 0.6,
            profile_flip_prob: 0.10,
            stats_noise: 0.05,
            affinity_weight: 1.2,
            quality_weight: 1.5,
            interaction_strength: 0.8,
            bias: -1.1,
            include_ids: false,
            id_hash_buckets: 2_048,
            seed: 7,
        }
    }

    /// Enables the hashed id columns (see [`Self::include_ids`]).
    pub fn with_ids(mut self) -> Self {
        self.include_ids = true;
        self
    }

    /// Replaces the seed (for repeated-draw experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct UserRecord {
    z: Vec<f32>,
    cats: [u32; USER_CAT_FIELDS],
    nums: Vec<f32>,
}

#[derive(Debug, Clone)]
struct ItemRecord {
    z: Vec<f32>,
    quality: f32,
    price: f32,
    /// Expected population CTR (ground-truth popularity).
    popularity: f32,
    /// Mean daily historical exposure rate.
    traffic: f32,
    cats: [u32; ITEM_CAT_FIELDS],
    nums: Vec<f32>,
    stats: Vec<f32>,
}

const USER_CAT_FIELDS: usize = 5;
const USER_NUM_FIELDS: usize = 14; // 5 + 14 = 19 raw user features
const ITEM_CAT_FIELDS: usize = 6;
const ITEM_NUM_FIELDS: usize = 32; // 6 + 32 = 38 raw item-profile features
const STATS_FIELDS: usize = 46; // raw item-statistics features

const USER_CAT_VOCABS: [(&str, usize); USER_CAT_FIELDS] =
    [("gender", 3), ("age_band", 8), ("occupation", 12), ("location", 32), ("pref_category", 16)];

const ITEM_CAT_VOCABS: [(&str, usize); ITEM_CAT_FIELDS] = [
    ("category", 24),
    ("sub_category", 96),
    ("brand", 200),
    ("seller", 400),
    ("price_band", 10),
    ("origin", 20),
];

/// The generated dataset: users, items (with profiles and statistics) and
/// the interaction log.
#[derive(Debug, Clone)]
pub struct TmallDataset {
    cfg: TmallConfig,
    users: Vec<UserRecord>,
    items: Vec<ItemRecord>,
    /// The logged exposures with click labels.
    pub interactions: Vec<Interaction>,
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Buckets `sigmoid`-squashed value `v` into `[0, n)`.
fn bucket(v: f32, n: usize) -> u32 {
    ((sigmoid(v) * n as f32) as usize).min(n - 1) as u32
}

impl TmallDataset {
    /// Runs the generative model. Deterministic in `cfg.seed`.
    pub fn generate(cfg: TmallConfig) -> Self {
        assert!(cfg.num_users > 0 && cfg.num_items > 0, "need users and items");
        assert!(cfg.latent_dim > 0, "latent_dim must be positive");
        let mut root = Rng64::seed_from_u64(cfg.seed);
        let mut rng_proj = root.fork(1);
        let mut rng_users = root.fork(2);
        let mut rng_items = root.fork(3);
        let mut rng_log = root.fork(4);
        let k = cfg.latent_dim;

        // Fixed random projections from latents to observable numerics.
        let w_user = Matrix::from_fn(k, USER_NUM_FIELDS, |_, _| rng_proj.normal_with(0.0, 1.0));
        let w_item = Matrix::from_fn(k + 1, ITEM_NUM_FIELDS, |_, _| rng_proj.normal_with(0.0, 1.0));

        let users: Vec<UserRecord> =
            (0..cfg.num_users).map(|_| Self::gen_user(&cfg, &w_user, &mut rng_users)).collect();
        let items: Vec<ItemRecord> =
            (0..cfg.num_items).map(|_| Self::gen_item(&cfg, &w_item, &mut rng_items)).collect();

        let mut dataset = TmallDataset { cfg, users, items, interactions: Vec::new() };
        dataset.log_interactions(&mut rng_log);
        dataset
    }

    fn gen_user(cfg: &TmallConfig, w_user: &Matrix, rng: &mut Rng64) -> UserRecord {
        let z: Vec<f32> = (0..cfg.latent_dim).map(|_| rng.normal()).collect();
        // Categorical fields are quantized views of the latents with light
        // corruption (user profiles are cleaner than item profiles).
        let raw = [
            bucket(z[0], 3),
            bucket(z[1 % z.len()], 8),
            bucket(z[2 % z.len()], 12),
            bucket(0.8 * z[3 % z.len()], 32),
            bucket(0.6 * z[0] + 0.6 * z[4 % z.len()], 16),
        ];
        let mut cats = [0u32; USER_CAT_FIELDS];
        for (c, (raw_id, (_, vocab))) in cats.iter_mut().zip(raw.iter().zip(USER_CAT_VOCABS.iter()))
        {
            *c = if rng.bernoulli(0.05) { rng.index(*vocab) as u32 } else { *raw_id };
        }
        let mut nums = vec![0.0f32; USER_NUM_FIELDS];
        for (j, n) in nums.iter_mut().enumerate() {
            let proj: f32 = z.iter().enumerate().map(|(d, &zv)| zv * w_user.get(d, j)).sum();
            *n = proj / (cfg.latent_dim as f32).sqrt() + rng.normal_with(0.0, 0.3);
        }
        UserRecord { z, cats, nums }
    }

    fn gen_item(cfg: &TmallConfig, w_item: &Matrix, rng: &mut Rng64) -> ItemRecord {
        let k = cfg.latent_dim;
        let z: Vec<f32> = (0..k).map(|_| rng.normal()).collect();
        let quality = rng.normal();
        let price = (rng.normal_with(3.0, 0.8)).exp();

        // Ground-truth population CTR: E_u σ(α·⟨z_u,z_i⟩/√k + β·appeal + γ)
        // with z_u ~ N(0, I), where appeal = q + c·z₀·z₁ includes a
        // bounded-degree feature cross. The probit approximation
        // E σ(m + s·N(0,1)) ≈ σ(m / sqrt(1 + π s²/8)) is accurate enough
        // for a ranking ground truth.
        let z_norm = z.iter().map(|v| v * v).sum::<f32>().sqrt();
        let appeal = Self::appeal(cfg, quality, &z);
        let m = cfg.quality_weight * appeal + cfg.bias;
        let s = cfg.affinity_weight * z_norm / (k as f32).sqrt();
        let popularity = sigmoid(m / (1.0 + std::f32::consts::PI * s * s / 8.0).sqrt());

        // Historical exposure rate: partly merchandising (quality leaks into
        // placement), partly random seller effort.
        let traffic = (0.5 * quality + rng.normal_with(2.5, 0.7)).exp();

        let raw = [
            bucket(z[0], 24),
            bucket(0.7 * z[0] + 0.7 * z[1 % k], 96),
            bucket(0.7 * z[2 % k] + 0.7 * quality, 200),
            bucket(0.7 * z[3 % k] + 0.3 * quality, 400),
            ((price.ln().clamp(0.0, 6.0) / 6.0 * 10.0) as usize).min(9) as u32,
            bucket(z[4 % k], 20),
        ];
        let mut cats = [0u32; ITEM_CAT_FIELDS];
        for (c, (raw_id, (_, vocab))) in cats.iter_mut().zip(raw.iter().zip(ITEM_CAT_VOCABS.iter()))
        {
            *c = if rng.bernoulli(cfg.profile_flip_prob) {
                rng.index(*vocab) as u32
            } else {
                *raw_id
            };
        }

        // Numeric profile: noisy projection of [z; q]. Quality enters
        // damped so no single observable column reveals it cleanly — the
        // cold-start signal must be assembled across many noisy features.
        let mut latent = z.clone();
        latent.push(0.6 * quality);
        let mut nums = vec![0.0f32; ITEM_NUM_FIELDS];
        for (j, n) in nums.iter_mut().enumerate() {
            let proj: f32 = latent.iter().enumerate().map(|(d, &v)| v * w_item.get(d, j)).sum();
            *n = proj / ((k + 1) as f32).sqrt() + rng.normal_with(0.0, cfg.profile_noise);
        }

        let stats = Self::gen_stats(cfg, popularity, traffic, price, rng);
        ItemRecord { z, quality, price, popularity, traffic, cats, nums, stats }
    }

    /// Simulates the 46 historical-traffic statistics over the horizons
    /// {1, 3, 7, 14, 30} days. Counts are stored `ln(1 + x)`.
    fn gen_stats(
        cfg: &TmallConfig,
        popularity: f32,
        traffic: f32,
        price: f32,
        rng: &mut Rng64,
    ) -> Vec<f32> {
        const HORIZONS: [f32; 5] = [1.0, 3.0, 7.0, 14.0, 30.0];
        let mut stats = Vec::with_capacity(STATS_FIELDS);
        let jitter = |rng: &mut Rng64, v: f32| v * (1.0 + cfg.stats_noise * rng.normal());
        let mut pv30 = 0.0f32;
        let mut clicks30 = 0.0f32;
        let mut purchases30 = 0.0f32;
        // 5 horizons x 7 funnel stages = 35 count features.
        for h in HORIZONS {
            let rate = jitter(rng, traffic * h).max(0.0);
            let pv = rng.poisson(rate) as f32;
            let uv = (pv * (0.55 + 0.2 * rng.uniform())).round();
            let clicks = rng.poisson((pv * popularity).max(0.0)) as f32;
            let cart = rng.poisson((clicks * 0.25).max(0.0)) as f32;
            let fav = rng.poisson((clicks * 0.15).max(0.0)) as f32;
            let purchase = rng.poisson((clicks * 0.10).max(0.0)) as f32;
            let gmv = purchase * price;
            for v in [pv, uv, clicks, cart, fav, purchase, gmv] {
                stats.push((1.0 + v.max(0.0)).ln());
            }
            if h == 30.0 {
                pv30 = pv;
                clicks30 = clicks;
                purchases30 = purchase;
            }
        }
        // 6 rate features (the high-value columns: empirical CTR etc.).
        let safe = |a: f32, b: f32| if b > 0.0 { a / b } else { 0.0 };
        stats.push(safe(clicks30, pv30)); // empirical CTR (reveals q)
        stats.push(safe(purchases30, clicks30.max(1.0)));
        stats.push(safe(purchases30, pv30));
        stats.push((1.0 + traffic).ln());
        stats.push(price.ln());
        stats.push(safe(clicks30, 30.0));
        // 5 context aggregates (seller/category-level PV proxies).
        for scale in [0.9f32, 1.1, 0.8, 1.2, 1.0] {
            let v = rng.poisson((traffic * 30.0 * scale).max(0.0)) as f32;
            stats.push((1.0 + v).ln());
        }
        debug_assert_eq!(stats.len(), STATS_FIELDS);
        stats
    }

    /// Item appeal: intrinsic quality plus a bounded-degree feature cross.
    /// Profiles observe the latents only individually (noisy linear
    /// projections), so predicting appeal from profiles requires
    /// *composing* features — the workload DCN's cross layers exist for
    /// (paper §III-C).
    fn appeal(cfg: &TmallConfig, quality: f32, z: &[f32]) -> f32 {
        quality + cfg.interaction_strength * z[0] * z[1 % z.len()]
    }

    fn log_interactions(&mut self, rng: &mut Rng64) {
        let n_items = self.items.len();
        self.interactions.reserve(self.cfg.num_interactions);
        for _ in 0..self.cfg.num_interactions {
            let user = rng.index(self.users.len()) as u32;
            // Exposure is traffic-biased 70% of the time (tournament pick),
            // mimicking the platform's placement policy.
            let item = if rng.bernoulli(0.7) {
                let a = rng.index(n_items);
                let b = rng.index(n_items);
                if self.items[a].traffic >= self.items[b].traffic {
                    a
                } else {
                    b
                }
            } else {
                rng.index(n_items)
            } as u32;
            let p = self.true_ctr(user, item);
            self.interactions.push(Interaction { user, item, clicked: rng.bernoulli(p) });
        }
    }

    // ------------------------------------------------------------------
    // Schemas (match the paper's raw feature counts).
    // ------------------------------------------------------------------

    /// The 19-field user-profile schema.
    pub fn user_schema() -> FeatureSchema {
        let mut fields: Vec<FieldSpec> = USER_CAT_VOCABS
            .iter()
            .map(|&(name, vocab)| FieldSpec::categorical(name, vocab))
            .collect();
        fields.extend((0..USER_NUM_FIELDS).map(|i| FieldSpec::numeric(&format!("u_num{i}"))));
        FeatureSchema::new(fields)
    }

    /// The 38-field item-profile schema.
    pub fn item_profile_schema() -> FeatureSchema {
        let mut fields: Vec<FieldSpec> = ITEM_CAT_VOCABS
            .iter()
            .map(|&(name, vocab)| FieldSpec::categorical(name, vocab))
            .collect();
        fields.extend((0..ITEM_NUM_FIELDS).map(|i| FieldSpec::numeric(&format!("i_num{i}"))));
        FeatureSchema::new(fields)
    }

    /// The 46-field item-statistics schema (all numeric).
    pub fn item_stats_schema() -> FeatureSchema {
        FeatureSchema::new(
            (0..STATS_FIELDS).map(|i| FieldSpec::numeric(&format!("s_num{i}"))).collect(),
        )
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration this dataset was generated with.
    pub fn config(&self) -> &TmallConfig {
        &self.cfg
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Ground-truth population CTR of an item (its true popularity).
    pub fn true_popularity(&self, item: u32) -> f32 {
        self.items[item as usize].popularity
    }

    /// Ground-truth click probability for a specific pair.
    pub fn true_ctr(&self, user: u32, item: u32) -> f32 {
        let u = &self.users[user as usize];
        let it = &self.items[item as usize];
        let k = self.cfg.latent_dim as f32;
        let affinity: f32 = u.z.iter().zip(&it.z).map(|(&a, &b)| a * b).sum::<f32>() / k.sqrt();
        sigmoid(
            self.cfg.affinity_weight * affinity
                + self.cfg.quality_weight * Self::appeal(&self.cfg, it.quality, &it.z)
                + self.cfg.bias,
        )
    }

    /// An item's sale price (used for GMV accounting in the market sim).
    pub fn item_price(&self, item: u32) -> f32 {
        self.items[item as usize].price
    }

    /// An item's mean daily historical exposure rate.
    pub fn item_traffic(&self, item: u32) -> f32 {
        self.items[item as usize].traffic
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Fibonacci-hashes an entity id into `[0, id_hash_buckets)`.
    fn id_bucket(&self, id: u32) -> u32 {
        ((id as u64).wrapping_mul(2_654_435_761) % self.cfg.id_hash_buckets as u64) as u32
    }

    /// Encodes users into a [`FeatureBlock`] against [`Self::user_schema`]
    /// (plus a trailing hashed `userID` column when `include_ids` is set).
    pub fn encode_users(&self, ids: &[u32]) -> FeatureBlock {
        let mut categorical: Vec<Vec<u32>> = (0..USER_CAT_FIELDS)
            .map(|f| ids.iter().map(|&u| self.users[u as usize].cats[f]).collect())
            .collect();
        if self.cfg.include_ids {
            categorical.push(ids.iter().map(|&u| self.id_bucket(u)).collect());
        }
        let numeric =
            Matrix::from_fn(ids.len(), USER_NUM_FIELDS, |i, j| self.users[ids[i] as usize].nums[j]);
        FeatureBlock { categorical, numeric }
    }

    /// Encodes item profiles against [`Self::item_profile_schema`].
    pub fn encode_item_profiles(&self, ids: &[u32]) -> FeatureBlock {
        let categorical = (0..ITEM_CAT_FIELDS)
            .map(|f| ids.iter().map(|&i| self.items[i as usize].cats[f]).collect())
            .collect();
        let numeric =
            Matrix::from_fn(ids.len(), ITEM_NUM_FIELDS, |i, j| self.items[ids[i] as usize].nums[j]);
        FeatureBlock { categorical, numeric }
    }

    /// Encodes item statistics against [`Self::item_stats_schema`].
    ///
    /// With `include_ids` the hashed `itemID` rides along as a categorical
    /// column here (not on the profile block) so that only the encoder —
    /// never the generator — can memorize per-item identity.
    pub fn encode_item_stats(&self, ids: &[u32]) -> FeatureBlock {
        let categorical = if self.cfg.include_ids {
            vec![ids.iter().map(|&i| self.id_bucket(i)).collect()]
        } else {
            vec![]
        };
        let numeric =
            Matrix::from_fn(ids.len(), STATS_FIELDS, |i, j| self.items[ids[i] as usize].stats[j]);
        FeatureBlock { categorical, numeric }
    }

    /// Builds the 46-feature statistics vector of an item from *live
    /// launch telemetry* (the first `days_observed` days of a
    /// [`crate::market::MarketOutcome`]) instead of from simulated
    /// history.
    ///
    /// This is the paper's §IV-D deployment loop: the real-time data
    /// engine accumulates PV/clicks/favorites/purchases for a new arrival
    /// day by day, and once statistics exist the encoder path can take
    /// over from the generator. Funnel stages the market simulator does
    /// not model (UV, add-to-cart) are filled with their expected ratios;
    /// context aggregates use the observed exposure rate. Horizons longer
    /// than `days_observed` saturate at the data seen so far — exactly
    /// what a production feature store would serve mid-window.
    pub fn stats_from_telemetry(
        &self,
        item: u32,
        days: &[crate::market::DailyFunnel],
        days_observed: usize,
    ) -> Vec<f32> {
        const HORIZONS: [usize; 5] = [1, 3, 7, 14, 30];
        let d = days_observed.min(days.len());
        let price = self.items[item as usize].price;
        let cum = |upto: usize, f: &dyn Fn(&crate::market::DailyFunnel) -> f32| -> f32 {
            days[..upto.min(d)].iter().map(f).sum()
        };
        let mut stats = Vec::with_capacity(STATS_FIELDS);
        let mut pv30 = 0.0f32;
        let mut clicks30 = 0.0f32;
        let mut purchases30 = 0.0f32;
        for h in HORIZONS {
            let pv = cum(h, &|f| f.pv as f32);
            let uv = pv * 0.65; // expected UV/PV ratio of the history model
            let clicks = cum(h, &|f| f.clicks as f32);
            let cart = clicks * 0.25; // expected cart rate
            let fav = cum(h, &|f| f.favorites as f32);
            let purchase = cum(h, &|f| f.purchases as f32);
            let gmv = cum(h, &|f| f.gmv as f32);
            for v in [pv, uv, clicks, cart, fav, purchase, gmv] {
                stats.push((1.0 + v.max(0.0)).ln());
            }
            if h == 30 {
                pv30 = pv;
                clicks30 = clicks;
                purchases30 = purchase;
            }
        }
        let safe = |a: f32, b: f32| if b > 0.0 { a / b } else { 0.0 };
        let traffic = if d > 0 { pv30 / d as f32 } else { 0.0 };
        stats.push(safe(clicks30, pv30));
        stats.push(safe(purchases30, clicks30.max(1.0)));
        stats.push(safe(purchases30, pv30));
        stats.push((1.0 + traffic).ln());
        stats.push(price.ln());
        stats.push(safe(clicks30, 30.0));
        for scale in [0.9f32, 1.1, 0.8, 1.2, 1.0] {
            stats.push((1.0 + traffic * 30.0 * scale).ln());
        }
        debug_assert_eq!(stats.len(), STATS_FIELDS);
        stats
    }

    /// Encodes a batch of items' statistics from per-item telemetry
    /// vectors produced by [`Self::stats_from_telemetry`].
    pub fn stats_block_from_rows(rows: Vec<Vec<f32>>) -> FeatureBlock {
        let n = rows.len();
        let numeric = Matrix::from_fn(n, STATS_FIELDS, |i, j| rows[i][j]);
        FeatureBlock { categorical: vec![], numeric }
    }

    /// Column means of the statistics over `ids` — the imputation vector
    /// used when scoring cold items with a statistics-hungry model.
    pub fn mean_item_stats(&self, ids: &[u32]) -> Vec<f32> {
        let mut mean = vec![0.0f32; STATS_FIELDS];
        for &i in ids {
            for (m, &v) in mean.iter_mut().zip(&self.items[i as usize].stats) {
                *m += v;
            }
        }
        let n = ids.len().max(1) as f32;
        mean.iter_mut().for_each(|m| *m /= n);
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TmallDataset {
        TmallDataset::generate(TmallConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.encode_item_stats(&[0, 1]), b.encode_item_stats(&[0, 1]));
        let c = TmallDataset::generate(TmallConfig::tiny().with_seed(999));
        assert_ne!(a.interactions, c.interactions);
    }

    #[test]
    fn feature_counts_match_the_paper() {
        assert_eq!(TmallDataset::user_schema().num_raw(), 19);
        assert_eq!(TmallDataset::item_profile_schema().num_raw(), 38);
        assert_eq!(TmallDataset::item_stats_schema().num_raw(), 46);
    }

    #[test]
    fn encoded_blocks_validate_against_schemas() {
        let d = tiny();
        let users: Vec<u32> = (0..d.num_users() as u32).collect();
        let items: Vec<u32> = (0..d.num_items() as u32).collect();
        d.encode_users(&users).validate(&TmallDataset::user_schema()).unwrap();
        d.encode_item_profiles(&items).validate(&TmallDataset::item_profile_schema()).unwrap();
        d.encode_item_stats(&items).validate(&TmallDataset::item_stats_schema()).unwrap();
    }

    #[test]
    fn click_rate_is_sane() {
        let d = tiny();
        let rate = d.interactions.iter().filter(|i| i.clicked).count() as f32
            / d.interactions.len() as f32;
        assert!((0.05..0.6).contains(&rate), "click rate {rate}");
    }

    #[test]
    fn probabilities_are_valid() {
        let d = tiny();
        for item in 0..d.num_items() as u32 {
            let p = d.true_popularity(item);
            assert!((0.0..=1.0).contains(&p));
        }
        for &Interaction { user, item, .. } in d.interactions.iter().take(200) {
            let p = d.true_ctr(user, item);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn statistics_reveal_popularity() {
        // The empirical-CTR statistic (index 35) must rank items nearly as
        // well as the ground truth itself.
        let d = tiny();
        let items: Vec<u32> = (0..d.num_items() as u32).collect();
        let stats = d.encode_item_stats(&items);
        let ctr_col: Vec<f32> = (0..items.len()).map(|i| stats.numeric.get(i, 35)).collect();
        let pop: Vec<f32> = items.iter().map(|&i| d.true_popularity(i)).collect();
        let rho = atnn_metrics::spearman(&ctr_col, &pop).unwrap();
        assert!(rho > 0.6, "stats must leak popularity strongly: rho={rho}");
    }

    #[test]
    fn profiles_carry_recoverable_but_noisy_signal() {
        // Some numeric profile column must correlate with quality (signal
        // exists), but none may reveal it as strongly as the statistics do.
        let d = tiny();
        let items: Vec<u32> = (0..d.num_items() as u32).collect();
        let profiles = d.encode_item_profiles(&items);
        let quality: Vec<f32> = items.iter().map(|&i| d.items[i as usize].quality).collect();
        let mut best = 0.0f64;
        for j in 0..profiles.numeric.cols() {
            let col: Vec<f32> = (0..items.len()).map(|i| profiles.numeric.get(i, j)).collect();
            if let Some(r) = atnn_metrics::spearman(&col, &quality) {
                best = best.max(r.abs());
            }
        }
        assert!(best > 0.08, "profiles must carry some signal: best |rho|={best}");
        assert!(best < 0.6, "profiles must stay noisy: best |rho|={best}");
    }

    #[test]
    fn exposure_is_traffic_biased() {
        let d = tiny();
        let mut counts = vec![0usize; d.num_items()];
        for i in &d.interactions {
            counts[i.item as usize] += 1;
        }
        // Split items at median traffic; the upper half must absorb more
        // exposures than the lower half.
        let mut by_traffic: Vec<usize> = (0..d.num_items()).collect();
        by_traffic.sort_by(|&a, &b| d.items[a].traffic.partial_cmp(&d.items[b].traffic).unwrap());
        let half = d.num_items() / 2;
        let low: usize = by_traffic[..half].iter().map(|&i| counts[i]).sum();
        let high: usize = by_traffic[half..].iter().map(|&i| counts[i]).sum();
        assert!(high > low * 2, "exposure bias too weak: low={low} high={high}");
    }

    #[test]
    fn id_columns_are_appended_only_when_enabled() {
        let plain = tiny();
        let with_ids = TmallDataset::generate(TmallConfig::tiny().with_ids());
        let users = [0u32, 1, 2];
        let items = [5u32, 6, 7];

        assert_eq!(plain.encode_users(&users).categorical.len(), 5);
        assert_eq!(plain.encode_item_stats(&items).categorical.len(), 0);

        let u = with_ids.encode_users(&users);
        let s = with_ids.encode_item_stats(&items);
        assert_eq!(u.categorical.len(), 6, "trailing userID column");
        assert_eq!(s.categorical.len(), 1, "itemID column on the stats block");
        // Buckets are deterministic, in range, and distinct for these ids.
        let buckets = &s.categorical[0];
        assert!(buckets.iter().all(|&b| (b as usize) < 2_048));
        assert_eq!(buckets, &with_ids.encode_item_stats(&items).categorical[0]);
        assert!(buckets[0] != buckets[1] || buckets[1] != buckets[2]);
        // The generator-visible profile block carries no id column.
        assert_eq!(
            with_ids.encode_item_profiles(&items).categorical.len(),
            ITEM_CAT_FIELDS,
            "profiles must stay id-free"
        );
    }

    #[test]
    fn telemetry_stats_match_layout_and_converge() {
        use crate::market::{simulate_launch, MarketConfig};
        let d = tiny();
        let items: Vec<u32> = (0..30).collect();
        let outcomes = simulate_launch(&d, &items, &MarketConfig::default());
        // Width matches the schema; all values finite; zero days = cold.
        for (i, o) in items.iter().zip(&outcomes) {
            let s0 = d.stats_from_telemetry(*i, &o.days, 0);
            let s30 = d.stats_from_telemetry(*i, &o.days, 30);
            assert_eq!(s0.len(), 46);
            assert_eq!(s30.len(), 46);
            assert!(s30.iter().all(|v| v.is_finite()));
            // With zero observed days every count feature is ln(1) = 0.
            assert!(s0[..35].iter().all(|&v| v == 0.0));
        }
        // The 30-day empirical CTR column tracks true popularity.
        let ctr: Vec<f32> = items
            .iter()
            .zip(&outcomes)
            .map(|(&i, o)| d.stats_from_telemetry(i, &o.days, 30)[35])
            .collect();
        let pop: Vec<f32> = items.iter().map(|&i| d.true_popularity(i)).collect();
        assert!(atnn_metrics::spearman(&ctr, &pop).unwrap() > 0.6);
        // Block assembly.
        let rows: Vec<Vec<f32>> = items
            .iter()
            .zip(&outcomes)
            .map(|(&i, o)| d.stats_from_telemetry(i, &o.days, 7))
            .collect();
        let block = TmallDataset::stats_block_from_rows(rows);
        assert!(block.validate(&TmallDataset::item_stats_schema()).is_ok());
    }

    #[test]
    fn mean_stats_imputation_has_right_width() {
        let d = tiny();
        let ids: Vec<u32> = (0..50).collect();
        let mean = d.mean_item_stats(&ids);
        assert_eq!(mean.len(), 46);
        assert!(mean.iter().all(|v| v.is_finite()));
    }
}
