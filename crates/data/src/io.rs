//! Persistence of data artifacts: interaction logs and encoded feature
//! blocks.
//!
//! A production feature pipeline materializes its outputs once and feeds
//! many training jobs from the same snapshot; these codecs provide that
//! for the simulators — generate once, `encode_*`, persist, and every
//! downstream experiment reads identical bytes. The format is
//! little-endian and length-checked throughout (magic, counts, then
//! payload), like the model checkpoints in `atnn-nn`.

use atnn_tensor::{decode_matrix, encode_matrix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::schema::FeatureBlock;
use crate::tmall::Interaction;

const LOG_MAGIC: &[u8; 4] = b"ATLG";
const BLOCK_MAGIC: &[u8; 4] = b"ATFB";

/// Errors from artifact (de)serialization.
#[derive(Debug, PartialEq, Eq)]
pub enum IoError {
    /// The buffer is not a valid artifact of the expected kind.
    Corrupt(&'static str),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serializes an interaction log.
pub fn encode_interactions(log: &[Interaction]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + log.len() * 9);
    buf.put_slice(LOG_MAGIC);
    buf.put_u64_le(log.len() as u64);
    for i in log {
        buf.put_u32_le(i.user);
        buf.put_u32_le(i.item);
        buf.put_u8(i.clicked as u8);
    }
    buf.freeze()
}

/// Deserializes an interaction log.
pub fn decode_interactions(mut buf: Bytes) -> Result<Vec<Interaction>, IoError> {
    if buf.remaining() < 12 {
        return Err(IoError::Corrupt("log header truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != LOG_MAGIC {
        return Err(IoError::Corrupt("bad log magic"));
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 9 {
        return Err(IoError::Corrupt("log payload truncated"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let user = buf.get_u32_le();
        let item = buf.get_u32_le();
        let clicked = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return Err(IoError::Corrupt("label byte out of range")),
        };
        out.push(Interaction { user, item, clicked });
    }
    Ok(out)
}

/// Serializes an encoded feature block.
pub fn encode_feature_block(block: &FeatureBlock) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(BLOCK_MAGIC);
    buf.put_u32_le(block.categorical.len() as u32);
    for col in &block.categorical {
        buf.put_u64_le(col.len() as u64);
        for &id in col {
            buf.put_u32_le(id);
        }
    }
    encode_matrix(&block.numeric, &mut buf);
    buf.freeze()
}

/// Deserializes an encoded feature block.
pub fn decode_feature_block(mut buf: Bytes) -> Result<FeatureBlock, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Corrupt("block header truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != BLOCK_MAGIC {
        return Err(IoError::Corrupt("bad block magic"));
    }
    let n_cols = buf.get_u32_le() as usize;
    let mut categorical = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        if buf.remaining() < 8 {
            return Err(IoError::Corrupt("column header truncated"));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len * 4 {
            return Err(IoError::Corrupt("column payload truncated"));
        }
        categorical.push((0..len).map(|_| buf.get_u32_le()).collect());
    }
    let numeric = decode_matrix(&mut buf).map_err(|_| IoError::Corrupt("numeric matrix"))?;
    let block = FeatureBlock { categorical, numeric };
    // Internal consistency: all columns must match the numeric row count.
    if block.categorical.iter().any(|c| c.len() != block.numeric.rows()) {
        return Err(IoError::Corrupt("column/row count mismatch"));
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmall::{TmallConfig, TmallDataset};

    #[test]
    fn interaction_log_roundtrips() {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 50,
            num_items: 80,
            num_interactions: 500,
            ..TmallConfig::tiny()
        });
        let blob = encode_interactions(&data.interactions);
        let back = decode_interactions(blob).unwrap();
        assert_eq!(back, data.interactions);
    }

    #[test]
    fn empty_log_roundtrips() {
        assert_eq!(decode_interactions(encode_interactions(&[])).unwrap(), vec![]);
    }

    #[test]
    fn feature_block_roundtrips() {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 30,
            num_items: 60,
            num_interactions: 100,
            ..TmallConfig::tiny()
        });
        let ids: Vec<u32> = (0..60).collect();
        for block in [
            data.encode_item_profiles(&ids),
            data.encode_item_stats(&ids),
            data.encode_users(&(0..30).collect::<Vec<_>>()),
        ] {
            let back = decode_feature_block(encode_feature_block(&block)).unwrap();
            assert_eq!(back, block);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 20,
            num_items: 20,
            num_interactions: 50,
            ..TmallConfig::tiny()
        });
        let log = encode_interactions(&data.interactions);
        for cut in [0usize, 3, 11, log.len() - 1] {
            assert!(decode_interactions(log.slice(0..cut)).is_err(), "cut={cut}");
        }
        let block = encode_feature_block(&data.encode_users(&[0, 1]));
        for cut in [0usize, 5, block.len() - 1] {
            assert!(decode_feature_block(block.slice(0..cut)).is_err(), "cut={cut}");
        }
        // Wrong magic for each kind.
        assert!(decode_interactions(block.clone()).is_err());
        assert!(decode_feature_block(log.clone()).is_err());
        // Bad label byte.
        let mut bad = BytesMut::from(&log[..]);
        let last = bad.len() - 1;
        bad[last] = 7;
        assert_eq!(
            decode_interactions(bad.freeze()).unwrap_err(),
            IoError::Corrupt("label byte out of range")
        );
    }
}
