//! Train/test splits and mini-batch iteration over interaction logs.

use atnn_tensor::Rng64;

/// An 80/20-style split of indices, by *entity* (e.g. by item, so held-out
/// items are genuinely cold) or by row.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training-set indices.
    pub train: Vec<u32>,
    /// Test-set indices.
    pub test: Vec<u32>,
}

impl Split {
    /// Randomly splits `0..n` with the given test fraction.
    ///
    /// # Panics
    /// Panics unless `0.0 < test_fraction < 1.0`.
    pub fn random(n: usize, test_fraction: f64, rng: &mut Rng64) -> Self {
        assert!(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0, 1)");
        let mut idx: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut idx);
        let n_test = ((n as f64) * test_fraction).round() as usize;
        let n_test = n_test.clamp(1, n.saturating_sub(1));
        let test = idx.split_off(n - n_test);
        Split { train: idx, test }
    }

    /// Splits rows by a per-row group key: any group whose key is in the
    /// held-out set goes entirely to test. This is how cold-start item
    /// splits are made — no test item ever appears in training.
    pub fn by_group(keys: &[u32], held_out: impl Fn(u32) -> bool) -> Self {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if held_out(k) {
                test.push(i as u32);
            } else {
                train.push(i as u32);
            }
        }
        Split { train, test }
    }
}

/// Keeps every positive row and a `keep_rate` fraction of negative rows —
/// the standard trick for imbalanced CTR logs. Returns the surviving row
/// indices in their original order.
///
/// Predictions from a model trained on the downsampled log are biased;
/// correct them with [`recalibrate_probability`].
pub fn downsample_negatives(labels: &[bool], keep_rate: f32, rng: &mut Rng64) -> Vec<u32> {
    assert!((0.0..=1.0).contains(&keep_rate), "keep_rate must be a probability");
    labels
        .iter()
        .enumerate()
        .filter(|&(_, &positive)| positive || rng.bernoulli(keep_rate))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Undoes the base-rate shift introduced by negative downsampling at rate
/// `keep_rate`: `p' = p / (p + (1 − p) / keep_rate)`.
pub fn recalibrate_probability(p: f32, keep_rate: f32) -> f32 {
    assert!(keep_rate > 0.0 && keep_rate <= 1.0, "keep_rate must be in (0, 1]");
    let p = p.clamp(0.0, 1.0);
    p / (p + (1.0 - p) / keep_rate)
}

/// Yields shuffled mini-batches of indices, reshuffling every epoch.
#[derive(Debug)]
pub struct BatchIter {
    indices: Vec<u32>,
    batch_size: usize,
    cursor: usize,
    rng: Rng64,
    drop_last: bool,
}

impl BatchIter {
    /// Creates an iterator over `indices` with the given batch size.
    ///
    /// # Panics
    /// Panics when `batch_size == 0`.
    pub fn new(indices: Vec<u32>, batch_size: usize, rng: Rng64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut it = BatchIter { indices, batch_size, cursor: 0, rng, drop_last: false };
        it.rng.shuffle(&mut it.indices);
        it
    }

    /// Drops a trailing partial batch (steadier loss scales in training).
    pub fn with_drop_last(mut self, drop: bool) -> Self {
        self.drop_last = drop;
        self
    }

    /// Next mini-batch within the current epoch, or `None` at epoch end.
    pub fn next_batch(&mut self) -> Option<&[u32]> {
        if self.cursor >= self.indices.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        if self.drop_last && end - self.cursor < self.batch_size {
            return None;
        }
        let batch = &self.indices[self.cursor..end];
        self.cursor = end;
        Some(batch)
    }

    /// Starts a new epoch: reshuffles and resets the cursor.
    pub fn next_epoch(&mut self) {
        self.cursor = 0;
        self.rng.shuffle(&mut self.indices);
    }

    /// Number of batches per full epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.indices.len() / self.batch_size
        } else {
            self.indices.len().div_ceil(self.batch_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_split_partitions() {
        let mut rng = Rng64::seed_from_u64(0);
        let s = Split::random(100, 0.2, &mut rng);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<u32> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_split_never_empties_either_side() {
        let mut rng = Rng64::seed_from_u64(1);
        let s = Split::random(2, 0.01, &mut rng);
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn group_split_keeps_groups_whole() {
        // Rows tagged by item id; items >= 3 are held out.
        let keys = [0u32, 1, 3, 3, 2, 4, 1];
        let s = Split::by_group(&keys, |k| k >= 3);
        assert_eq!(s.train, vec![0, 1, 4, 6]);
        assert_eq!(s.test, vec![2, 3, 5]);
    }

    #[test]
    fn downsampling_keeps_all_positives() {
        let mut rng = Rng64::seed_from_u64(9);
        let labels: Vec<bool> = (0..2_000).map(|i| i % 10 == 0).collect();
        let kept = downsample_negatives(&labels, 0.25, &mut rng);
        let positives_kept = kept.iter().filter(|&&i| labels[i as usize]).count();
        assert_eq!(positives_kept, 200, "every positive survives");
        let negatives_kept = kept.len() - positives_kept;
        let expected = (1_800.0 * 0.25) as i64;
        assert!(
            (negatives_kept as i64 - expected).abs() < 120,
            "negatives near the rate: {negatives_kept} vs {expected}"
        );
        // Indices stay sorted (original order).
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
        // Degenerate rates.
        assert_eq!(downsample_negatives(&labels, 1.0, &mut rng).len(), labels.len());
        let only_pos = downsample_negatives(&labels, 0.0, &mut rng);
        assert!(only_pos.iter().all(|&i| labels[i as usize]));
    }

    #[test]
    fn recalibration_inverts_the_base_rate_shift() {
        // A population with true rate r, downsampled at w, has observed
        // rate r' = r / (r + (1-r)w). Recalibrating r' must return r.
        for &(r, w) in &[(0.05f32, 0.1f32), (0.3, 0.25), (0.5, 0.5)] {
            let observed = r / (r + (1.0 - r) * w);
            let back = recalibrate_probability(observed, w);
            assert!((back - r).abs() < 1e-6, "r={r} w={w}: got {back}");
        }
        assert_eq!(recalibrate_probability(0.0, 0.5), 0.0);
        assert_eq!(recalibrate_probability(1.0, 0.5), 1.0);
        // keep_rate = 1 is the identity.
        assert!((recalibrate_probability(0.37, 1.0) - 0.37).abs() < 1e-6);
    }

    #[test]
    fn batches_cover_every_index_once_per_epoch() {
        let rng = Rng64::seed_from_u64(2);
        let mut it = BatchIter::new((0..10).collect(), 3, rng);
        assert_eq!(it.batches_per_epoch(), 4);
        let mut seen = Vec::new();
        while let Some(b) = it.next_batch() {
            seen.extend_from_slice(b);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(it.next_batch().is_none(), "epoch exhausted");
        it.next_epoch();
        assert!(it.next_batch().is_some());
    }

    #[test]
    fn drop_last_discards_partial() {
        let rng = Rng64::seed_from_u64(3);
        let mut it = BatchIter::new((0..10).collect(), 3, rng).with_drop_last(true);
        assert_eq!(it.batches_per_epoch(), 3);
        let mut count = 0;
        while let Some(b) = it.next_batch() {
            assert_eq!(b.len(), 3);
            count += 1;
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn epochs_reshuffle() {
        let rng = Rng64::seed_from_u64(4);
        let mut it = BatchIter::new((0..64).collect(), 64, rng);
        let first: Vec<u32> = it.next_batch().unwrap().to_vec();
        it.next_epoch();
        let second: Vec<u32> = it.next_batch().unwrap().to_vec();
        assert_ne!(first, second, "orders should differ across epochs");
    }
}
