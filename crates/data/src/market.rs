//! Day-by-day market simulator — the substitute for the paper's online
//! A/B infrastructure (Tables II and III).
//!
//! Given the ground-truth popularity of a cohort of new arrivals, the
//! simulator realizes a daily exposure → click → favorite → purchase
//! funnel, producing the telemetry the paper reports: Item Page Views
//! (IPV), Add-to-Favorite counts (AtF), Gross Merchandise Volume (GMV) at
//! 7/14/30 days, and the time to the first `k` sales used by the online
//! A/B test. An [`ExpertPolicy`] models the human-curation control arm: a
//! noisy estimate of item quality, with a skill dial.

use atnn_tensor::Rng64;

use crate::tmall::TmallDataset;

/// Funnel counts realized on one simulated day.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DailyFunnel {
    /// Item page views.
    pub pv: u32,
    /// Clicks.
    pub clicks: u32,
    /// Add-to-favorite events.
    pub favorites: u32,
    /// Purchases.
    pub purchases: u32,
    /// Gross merchandise volume (purchases × price).
    pub gmv: f64,
}

/// The full telemetry of one item over the observation horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketOutcome {
    /// Per-day funnel counts, `days.len() == horizon`.
    pub days: Vec<DailyFunnel>,
}

impl MarketOutcome {
    /// Cumulative IPV over the first `d` days.
    pub fn ipv_at(&self, d: usize) -> u64 {
        self.days.iter().take(d).map(|f| f.pv as u64).sum()
    }

    /// Cumulative add-to-favorite count over the first `d` days.
    pub fn atf_at(&self, d: usize) -> u64 {
        self.days.iter().take(d).map(|f| f.favorites as u64).sum()
    }

    /// Cumulative GMV over the first `d` days.
    pub fn gmv_at(&self, d: usize) -> f64 {
        self.days.iter().take(d).map(|f| f.gmv).sum()
    }

    /// 1-based day on which cumulative purchases first reach `k`, or
    /// `None` within the horizon.
    ///
    /// This is the paper's online metric: "the average time for the first
    /// five successful transactions".
    pub fn time_to_k_sales(&self, k: u32) -> Option<usize> {
        let mut total = 0u32;
        for (day, f) in self.days.iter().enumerate() {
            total += f.purchases;
            if total >= k {
                return Some(day + 1);
            }
        }
        None
    }
}

/// Market dynamics configuration.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Days to simulate (the paper observes 7/14/30 within a 30-day run).
    pub horizon_days: usize,
    /// Mean daily page views a new arrival receives from its launch slot.
    pub base_daily_pv: f32,
    /// Rich-get-richer factor: tomorrow's exposure grows with today's
    /// observed CTR (`pv_d = base · (1 + momentum · ctr_so_far)`).
    pub momentum: f32,
    /// P(favorite | click).
    pub fav_rate: f32,
    /// P(purchase | click).
    pub purchase_rate: f32,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            horizon_days: 30,
            base_daily_pv: 6.0,
            momentum: 2.0,
            fav_rate: 0.15,
            purchase_rate: 0.10,
            seed: 11,
        }
    }
}

/// Simulates the launch of `items` (indices into `data`) and returns one
/// [`MarketOutcome`] per item, in order. Deterministic in `cfg.seed`.
pub fn simulate_launch(
    data: &TmallDataset,
    items: &[u32],
    cfg: &MarketConfig,
) -> Vec<MarketOutcome> {
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    items
        .iter()
        .map(|&item| {
            let mut item_rng = rng.fork(item as u64 + 1);
            simulate_one(data, item, cfg, &mut item_rng)
        })
        .collect()
}

fn simulate_one(
    data: &TmallDataset,
    item: u32,
    cfg: &MarketConfig,
    rng: &mut Rng64,
) -> MarketOutcome {
    let pop = data.true_popularity(item);
    let price = data.item_price(item) as f64;
    let mut days = Vec::with_capacity(cfg.horizon_days);
    let mut cum_pv = 0u64;
    let mut cum_clicks = 0u64;
    for _ in 0..cfg.horizon_days {
        let observed_ctr = if cum_pv > 0 { cum_clicks as f32 / cum_pv as f32 } else { 0.0 };
        let rate = cfg.base_daily_pv * (1.0 + cfg.momentum * observed_ctr);
        let pv = rng.poisson(rate);
        let clicks = binomial(rng, pv, pop);
        let favorites = binomial(rng, clicks, cfg.fav_rate);
        let purchases = binomial(rng, clicks, cfg.purchase_rate);
        cum_pv += pv as u64;
        cum_clicks += clicks as u64;
        days.push(DailyFunnel { pv, clicks, favorites, purchases, gmv: purchases as f64 * price });
    }
    MarketOutcome { days }
}

/// Exact Bernoulli-sum binomial draw; `n` is small (daily counts).
fn binomial(rng: &mut Rng64, n: u32, p: f32) -> u32 {
    (0..n).filter(|_| rng.bernoulli(p)).count() as u32
}

/// The human-expert selection policy used as the A/B control arm.
///
/// An expert inspects an item's visible profile and forms a noisy estimate
/// of its quality; `noise` controls skill (the paper's experts are good
/// but beatable — the deployed ATNN improved time-to-5-sales by 7.16%).
#[derive(Debug, Clone)]
pub struct ExpertPolicy {
    /// Std of the Gaussian error on the expert's quality estimate.
    pub noise: f32,
    /// Seed of the expert's idiosyncrasies.
    pub seed: u64,
}

impl Default for ExpertPolicy {
    fn default() -> Self {
        // Calibrated so a well-trained model beats the expert by a margin
        // in the paper's reported range (~5-10% on time-to-5-sales).
        ExpertPolicy { noise: 1.6, seed: 23 }
    }
}

impl ExpertPolicy {
    /// Scores every item in `items`: true popularity signal + expert noise.
    pub fn score(&self, data: &TmallDataset, items: &[u32]) -> Vec<f32> {
        let mut rng = Rng64::seed_from_u64(self.seed);
        items
            .iter()
            .map(|&i| {
                // Experts reason from the same observable evidence a
                // profile exposes: a corrupted view of true popularity.
                let logit = logit(data.true_popularity(i));
                logit + self.noise * rng.normal()
            })
            .collect()
    }
}

fn logit(p: f32) -> f32 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

/// Result of one A/B arm (Table III's row).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmResult {
    /// Items the arm selected.
    pub selected: Vec<u32>,
    /// Average 1-based day of the k-th sale; items that never reach `k`
    /// sales are charged the full horizon + 1 (conservative, matches how a
    /// capped observation window is analyzed).
    pub avg_days_to_k_sales: f64,
    /// Fraction of selected items that reached `k` sales in the horizon.
    pub hit_rate: f64,
}

/// Runs one A/B arm: select the `top_k` items of `pool` by `scores`,
/// launch them, and report the time-to-`k_sales` statistics.
pub fn run_arm(
    data: &TmallDataset,
    pool: &[u32],
    scores: &[f32],
    top_k: usize,
    k_sales: u32,
    cfg: &MarketConfig,
) -> ArmResult {
    assert_eq!(pool.len(), scores.len(), "run_arm: pool/scores mismatch");
    assert!(top_k > 0 && top_k <= pool.len(), "run_arm: bad top_k");
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score").then(a.cmp(&b)));
    let selected: Vec<u32> = order[..top_k].iter().map(|&i| pool[i]).collect();
    let outcomes = simulate_launch(data, &selected, cfg);
    let mut total_days = 0.0f64;
    let mut hits = 0usize;
    for o in &outcomes {
        match o.time_to_k_sales(k_sales) {
            Some(d) => {
                total_days += d as f64;
                hits += 1;
            }
            None => total_days += (cfg.horizon_days + 1) as f64,
        }
    }
    ArmResult {
        selected,
        avg_days_to_k_sales: total_days / top_k as f64,
        hit_rate: hits as f64 / top_k as f64,
    }
}

// ---------------------------------------------------------------------
// Figure-1 mechanism: the tripartite win-win feedback loop.
// ---------------------------------------------------------------------

/// Parameters of the [`simulate_ecosystem`] feedback loop.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Feedback rounds (e.g. months).
    pub rounds: usize,
    /// New arrivals offered by sellers in round 0.
    pub initial_supply: usize,
    /// Fraction of each round's supply the platform can promote.
    pub promotion_capacity: f32,
    /// Elasticity of seller participation: next round's supply grows with
    /// the average GMV sellers realized this round.
    pub supply_elasticity: f32,
    /// Market dynamics for each round's launch.
    pub market: MarketConfig,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            rounds: 6,
            initial_supply: 120,
            promotion_capacity: 0.25,
            supply_elasticity: 0.4,
            market: MarketConfig { horizon_days: 14, ..MarketConfig::default() },
        }
    }
}

/// One round of the feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct EcosystemRound {
    /// Items sellers offered this round.
    pub supply: usize,
    /// GMV realized by the promoted slice.
    pub promoted_gmv: f64,
    /// Buyer clicks on the promoted slice (user-experience proxy).
    pub promoted_clicks: u64,
}

/// Outcome of [`simulate_ecosystem`].
#[derive(Debug, Clone)]
pub struct EcosystemOutcome {
    /// Per-round telemetry.
    pub rounds: Vec<EcosystemRound>,
}

impl EcosystemOutcome {
    /// Total GMV over all rounds (the platform's win).
    pub fn total_gmv(&self) -> f64 {
        self.rounds.iter().map(|r| r.promoted_gmv).sum()
    }

    /// Total promoted clicks (the buyers' win: they found things to like).
    pub fn total_clicks(&self) -> u64 {
        self.rounds.iter().map(|r| r.promoted_clicks).sum()
    }

    /// Supply in the final round (the sellers' win: participation grew).
    pub fn final_supply(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.supply)
    }
}

/// Simulates the paper's Figure-1 mechanism: each round the platform
/// promotes the top slice of new arrivals according to `score` (higher =
/// promoted), the market realizes transactions, and seller participation
/// next round grows with the GMV sellers just experienced. A better
/// selector compounds: more GMV → more supply → more good items to find.
///
/// `score(item)` is the selection policy under test (e.g. an ATNN
/// popularity index, an expert, or random). Items are drawn round-robin
/// from `data`'s item population.
pub fn simulate_ecosystem(
    data: &TmallDataset,
    cfg: &EcosystemConfig,
    mut score: impl FnMut(&[u32]) -> Vec<f32>,
) -> EcosystemOutcome {
    let n_items = data.num_items() as u32;
    let mut next_item = 0u32;
    let mut supply = cfg.initial_supply;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        // Sellers offer `supply` new arrivals (cycled through the pool).
        let pool: Vec<u32> = (0..supply)
            .map(|_| {
                let item = next_item;
                next_item = (next_item + 1) % n_items;
                item
            })
            .collect();
        let scores = score(&pool);
        assert_eq!(scores.len(), pool.len(), "selection policy must score the pool");
        let k = ((pool.len() as f32 * cfg.promotion_capacity) as usize).clamp(1, pool.len());
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).expect("NaN score").then(a.cmp(&b))
        });
        let promoted: Vec<u32> = order[..k].iter().map(|&i| pool[i]).collect();

        let market =
            MarketConfig { seed: cfg.market.seed ^ (round as u64 + 1), ..cfg.market.clone() };
        let outcomes = simulate_launch(data, &promoted, &market);
        let gmv: f64 = outcomes.iter().map(|o| o.gmv_at(market.horizon_days)).sum();
        let clicks: u64 =
            outcomes.iter().map(|o| o.days.iter().map(|d| d.clicks as u64).sum::<u64>()).sum();
        rounds.push(EcosystemRound { supply, promoted_gmv: gmv, promoted_clicks: clicks });

        // Seller response: supply grows with realized per-slot GMV.
        let gmv_per_slot = gmv / k as f64;
        let growth = 1.0 + cfg.supply_elasticity as f64 * (gmv_per_slot / 100.0).tanh();
        supply = ((supply as f64 * growth) as usize).max(1);
    }
    EcosystemOutcome { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmall::TmallConfig;

    fn data() -> TmallDataset {
        TmallDataset::generate(TmallConfig::tiny())
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = data();
        let items: Vec<u32> = (0..50).collect();
        let cfg = MarketConfig::default();
        assert_eq!(simulate_launch(&d, &items, &cfg), simulate_launch(&d, &items, &cfg));
    }

    #[test]
    fn cumulative_metrics_are_monotone() {
        let d = data();
        let outcomes = simulate_launch(&d, &[0, 1, 2], &MarketConfig::default());
        for o in &outcomes {
            assert_eq!(o.days.len(), 30);
            assert!(o.ipv_at(7) <= o.ipv_at(14));
            assert!(o.ipv_at(14) <= o.ipv_at(30));
            assert!(o.atf_at(7) <= o.atf_at(30));
            assert!(o.gmv_at(7) <= o.gmv_at(30) + 1e-9);
        }
    }

    #[test]
    fn funnel_is_consistent() {
        let d = data();
        for o in simulate_launch(&d, &(0..30).collect::<Vec<_>>(), &MarketConfig::default()) {
            for f in &o.days {
                assert!(f.clicks <= f.pv);
                assert!(f.favorites <= f.clicks);
                assert!(f.purchases <= f.clicks);
            }
        }
    }

    #[test]
    fn popular_items_accumulate_more_telemetry() {
        let d = data();
        let items: Vec<u32> = (0..d.num_items() as u32).collect();
        let outcomes = simulate_launch(&d, &items, &MarketConfig::default());
        let pop: Vec<f32> = items.iter().map(|&i| d.true_popularity(i)).collect();
        let ipv: Vec<f32> = outcomes.iter().map(|o| o.ipv_at(30) as f32).collect();
        let atf: Vec<f32> = outcomes.iter().map(|o| o.atf_at(30) as f32).collect();
        assert!(atnn_metrics::spearman(&pop, &ipv).unwrap() > 0.3);
        assert!(atnn_metrics::spearman(&pop, &atf).unwrap() > 0.5);
    }

    #[test]
    fn time_to_k_sales_finds_first_crossing() {
        let mk = |purchases: &[u32]| MarketOutcome {
            days: purchases
                .iter()
                .map(|&p| DailyFunnel { purchases: p, ..Default::default() })
                .collect(),
        };
        assert_eq!(mk(&[0, 2, 3, 1]).time_to_k_sales(5), Some(3));
        assert_eq!(mk(&[5]).time_to_k_sales(5), Some(1));
        assert_eq!(mk(&[1, 1, 1]).time_to_k_sales(5), None);
    }

    #[test]
    fn oracle_selection_beats_random_and_expert_sits_between() {
        let d = data();
        let pool: Vec<u32> = (0..d.num_items() as u32).collect();
        let cfg = MarketConfig::default();
        let oracle: Vec<f32> = pool.iter().map(|&i| d.true_popularity(i)).collect();
        let expert = ExpertPolicy::default().score(&d, &pool);
        // "Random" = an expert with enormous noise.
        let random = ExpertPolicy { noise: 100.0, seed: 5 }.score(&d, &pool);
        let k = 80;
        let a = run_arm(&d, &pool, &oracle, k, 5, &cfg);
        let b = run_arm(&d, &pool, &expert, k, 5, &cfg);
        let c = run_arm(&d, &pool, &random, k, 5, &cfg);
        assert!(
            a.avg_days_to_k_sales < b.avg_days_to_k_sales,
            "oracle {} vs expert {}",
            a.avg_days_to_k_sales,
            b.avg_days_to_k_sales
        );
        assert!(
            b.avg_days_to_k_sales < c.avg_days_to_k_sales,
            "expert {} vs random {}",
            b.avg_days_to_k_sales,
            c.avg_days_to_k_sales
        );
    }

    #[test]
    fn expert_skill_improves_with_less_noise() {
        let d = data();
        let pool: Vec<u32> = (0..d.num_items() as u32).collect();
        let pop: Vec<f32> = pool.iter().map(|&i| d.true_popularity(i)).collect();
        let sharp = ExpertPolicy { noise: 0.2, seed: 1 }.score(&d, &pool);
        let blunt = ExpertPolicy { noise: 3.0, seed: 1 }.score(&d, &pool);
        let rho_sharp = atnn_metrics::spearman(&sharp, &pop).unwrap();
        let rho_blunt = atnn_metrics::spearman(&blunt, &pop).unwrap();
        assert!(rho_sharp > rho_blunt, "{rho_sharp} vs {rho_blunt}");
        assert!(rho_sharp > 0.9);
    }

    #[test]
    fn ecosystem_rewards_better_selection() {
        // The Figure-1 claim, made operational: an oracle selector grows
        // supply, clicks and GMV faster than a random selector.
        let d = data();
        let cfg = EcosystemConfig::default();
        let oracle = simulate_ecosystem(&d, &cfg, |pool| {
            pool.iter().map(|&i| d.true_popularity(i)).collect()
        });
        let mut rng = Rng64::seed_from_u64(77);
        let random =
            simulate_ecosystem(&d, &cfg, |pool| pool.iter().map(|_| rng.uniform()).collect());
        assert!(
            oracle.total_gmv() > random.total_gmv() * 1.2,
            "GMV: oracle {:.0} vs random {:.0}",
            oracle.total_gmv(),
            random.total_gmv()
        );
        assert!(oracle.total_clicks() > random.total_clicks());
        assert!(
            oracle.final_supply() >= random.final_supply(),
            "seller participation: oracle {} vs random {}",
            oracle.final_supply(),
            random.final_supply()
        );
        // Participation compounds for the good selector.
        assert!(oracle.final_supply() > cfg.initial_supply, "supply must grow");
        assert_eq!(oracle.rounds.len(), cfg.rounds);
    }

    #[test]
    fn ecosystem_is_deterministic_given_policy() {
        let d = data();
        let cfg = EcosystemConfig { rounds: 3, ..Default::default() };
        let run = |d: &TmallDataset| {
            simulate_ecosystem(d, &cfg, |pool| pool.iter().map(|&i| d.true_popularity(i)).collect())
        };
        assert_eq!(run(&d).rounds, run(&d).rounds);
    }

    #[test]
    #[should_panic(expected = "bad top_k")]
    fn run_arm_validates_top_k() {
        let d = data();
        let pool = [0u32, 1];
        let scores = [0.5f32, 0.2];
        let _ = run_arm(&d, &pool, &scores, 3, 5, &MarketConfig::default());
    }
}
