//! Data platform for the ATNN reproduction.
//!
//! The paper evaluates on proprietary Alibaba data: a Tmall log with 23.1M
//! items / 4M users / 40M interactions (19 user-profile, 38 item-profile
//! and 46 item-statistics raw features) and an Ele.me set of 1.2M new
//! restaurants. Neither is available, so this crate implements **generative
//! simulators** that preserve the causal structure those experiments rely
//! on (see `DESIGN.md` §2 for the substitution argument):
//!
//! - [`tmall`] — users and items carry latent preference/quality vectors;
//!   observable *profiles* are noisy functions of the latents, *statistics*
//!   are aggregates of simulated historical traffic (hence nearly noiseless
//!   functions of an item's true appeal), and clicks follow
//!   `P(click|u,i) = σ(α·⟨z_u, z_i⟩ + β·q_i + γ)`.
//! - [`market`] — a day-by-day exposure→click→favorite→purchase funnel that
//!   realizes IPV / AtF / GMV telemetry and time-to-k-sales for A/B tests
//!   (Tables II, III, V), plus the noisy *expert policy* control arm.
//! - [`eleme`] — location-grouped users and restaurants with continuous
//!   VpPV / GMV labels for the multi-task extension (Tables IV, V).
//!
//! Supporting machinery: [`schema`] (typed feature schemas), [`encode`]
//! (vocabularies and normalization), [`dataset`] (splits and mini-batching).

pub mod dataset;
pub mod eleme;
pub mod encode;
pub mod io;
pub mod market;
pub mod schema;
pub mod tmall;

pub use dataset::{BatchIter, Split};
pub use encode::{hash_bucket, Normalizer, Vocab};
pub use schema::{FeatureBlock, FeatureSchema, FieldSpec};
