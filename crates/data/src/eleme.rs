//! The Ele.me food-delivery simulator (paper §V).
//!
//! Substitutes the proprietary Ele.me set of 1.2M newly signed-up
//! restaurants. The paper's O2O twist: food delivery is location-sensitive,
//! so users are partitioned into **location groups** and the user tower
//! consumes *mean group features* instead of single-user features; the
//! training task switches from CTR classification to joint **VpPV**
//! (Value-per-Page-View) and **GMV** regression under multi-task learning.
//!
//! Generative model:
//! - each location group `g` has a mean preference vector `z_g` and a
//!   traffic level `t_g`;
//! - each restaurant `r` has a latent vector `z_r`, an intrinsic
//!   attractiveness `a_r`, and belongs to one group;
//! - `VpPV_r = softplus(v₀ + v₁·⟨z_g, z_r⟩/√k + v₂·a_r + ε)` and
//!   `GMV_r = VpPV_r · t_g · e^ε'` — so VpPV measures per-view value and
//!   GMV couples it with local traffic, mirroring the paper's two metrics;
//! - restaurant *profiles* (brand/cuisine/theme/… + numerics) are noisy
//!   functions of `(z_r, a_r)`; *statistics* (overall VpPV/GMV/CTR of the
//!   restaurant's history — present only for established restaurants) are
//!   nearly noiseless functions of them.

use atnn_tensor::{Matrix, Rng64};

use crate::schema::{FeatureBlock, FeatureSchema, FieldSpec};

const REST_CAT_FIELDS: usize = 5;
const REST_NUM_FIELDS: usize = 24;
const REST_STATS_FIELDS: usize = 8;
const GROUP_NUM_FIELDS: usize = 12;

const REST_CAT_VOCABS: [(&str, usize); REST_CAT_FIELDS] =
    [("brand", 300), ("location_grid", 64), ("cuisine", 24), ("theme", 12), ("price_tier", 8)];

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct ElemeConfig {
    /// Number of restaurants.
    pub num_restaurants: usize,
    /// Number of location-based user groups (≤ the location-grid vocab).
    pub num_groups: usize,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Noise std on numeric profile features.
    pub profile_noise: f32,
    /// Noise std inside the VpPV label (observation noise of a 30-day
    /// window).
    pub label_noise: f32,
    /// Master seed.
    pub seed: u64,
}

impl ElemeConfig {
    /// Release-mode scale for the repro binaries (scaled from the paper's
    /// 1.2M sign-ups).
    pub fn paper_scale() -> Self {
        ElemeConfig { num_restaurants: 12_000, ..Self::tiny() }
    }

    /// Seconds-long preset.
    pub fn small() -> Self {
        ElemeConfig { num_restaurants: 3_000, ..Self::tiny() }
    }

    /// Sub-second preset for tests.
    pub fn tiny() -> Self {
        ElemeConfig {
            num_restaurants: 700,
            num_groups: 48,
            latent_dim: 8,
            profile_noise: 0.8,
            label_noise: 0.10,
            seed: 31,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct GroupRecord {
    z: Vec<f32>,
    traffic: f32,
    nums: Vec<f32>,
}

#[derive(Debug, Clone)]
struct RestaurantRecord {
    group: u32,
    attractiveness: f32,
    vppv: f32,
    gmv: f32,
    cats: [u32; REST_CAT_FIELDS],
    nums: Vec<f32>,
    stats: Vec<f32>,
}

/// The generated food-delivery dataset.
#[derive(Debug, Clone)]
pub struct ElemeDataset {
    cfg: ElemeConfig,
    groups: Vec<GroupRecord>,
    restaurants: Vec<RestaurantRecord>,
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

fn bucket(v: f32, n: usize) -> u32 {
    ((sigmoid(v) * n as f32) as usize).min(n - 1) as u32
}

impl ElemeDataset {
    /// Runs the generative model. Deterministic in `cfg.seed`.
    pub fn generate(cfg: ElemeConfig) -> Self {
        assert!(cfg.num_groups > 0 && cfg.num_groups <= 64, "1..=64 groups");
        assert!(cfg.num_restaurants > 0 && cfg.latent_dim > 0);
        let mut root = Rng64::seed_from_u64(cfg.seed);
        let mut rng_proj = root.fork(1);
        let mut rng_groups = root.fork(2);
        let mut rng_rest = root.fork(3);
        let k = cfg.latent_dim;

        let w_rest = Matrix::from_fn(k + 1, REST_NUM_FIELDS, |_, _| rng_proj.normal_with(0.0, 1.0));
        let w_group = Matrix::from_fn(k, GROUP_NUM_FIELDS, |_, _| rng_proj.normal_with(0.0, 1.0));

        let groups: Vec<GroupRecord> = (0..cfg.num_groups)
            .map(|_| {
                let z: Vec<f32> = (0..k).map(|_| rng_groups.normal()).collect();
                let traffic = rng_groups.normal_with(2.0, 0.5).exp();
                let mut nums = vec![0.0f32; GROUP_NUM_FIELDS];
                for (j, n) in nums.iter_mut().enumerate() {
                    let proj: f32 = z.iter().enumerate().map(|(d, &v)| v * w_group.get(d, j)).sum();
                    // Group features are averages over many users: low noise.
                    *n = proj / (k as f32).sqrt() + rng_groups.normal_with(0.0, 0.1);
                }
                GroupRecord { z, traffic, nums }
            })
            .collect();

        let restaurants: Vec<RestaurantRecord> = (0..cfg.num_restaurants)
            .map(|_| Self::gen_restaurant(&cfg, &groups, &w_rest, &mut rng_rest))
            .collect();

        ElemeDataset { cfg, groups, restaurants }
    }

    fn gen_restaurant(
        cfg: &ElemeConfig,
        groups: &[GroupRecord],
        w_rest: &Matrix,
        rng: &mut Rng64,
    ) -> RestaurantRecord {
        let k = cfg.latent_dim;
        let group = rng.index(groups.len()) as u32;
        let g = &groups[group as usize];
        let z: Vec<f32> = (0..k).map(|_| rng.normal()).collect();
        let attractiveness = rng.normal();

        let affinity: f32 =
            z.iter().zip(&g.z).map(|(&a, &b)| a * b).sum::<f32>() / (k as f32).sqrt();
        let vppv =
            softplus(-0.8 + 0.5 * affinity + 0.8 * attractiveness + cfg.label_noise * rng.normal())
                * 0.4;
        let gmv = vppv * g.traffic * (0.15 * rng.normal()).exp();

        let raw = [
            bucket(0.7 * z[0] + 0.6 * attractiveness, 300),
            group, // the location grid IS the group
            bucket(z[1 % k], 24),
            bucket(z[2 % k], 12),
            bucket(0.8 * z[3 % k], 8),
        ];
        let mut cats = [0u32; REST_CAT_FIELDS];
        for (i, (c, raw_id)) in cats.iter_mut().zip(raw.iter()).enumerate() {
            // The location grid is never corrupted — it is ground truth.
            *c = if i != 1 && rng.bernoulli(0.08) {
                rng.index(REST_CAT_VOCABS[i].1) as u32
            } else {
                *raw_id
            };
        }

        let mut latent = z.clone();
        latent.push(attractiveness);
        let mut nums = vec![0.0f32; REST_NUM_FIELDS];
        for (j, n) in nums.iter_mut().enumerate() {
            let proj: f32 = latent.iter().enumerate().map(|(d, &v)| v * w_rest.get(d, j)).sum();
            *n = proj / ((k + 1) as f32).sqrt() + rng.normal_with(0.0, cfg.profile_noise);
        }

        // Historical statistics of an *established* restaurant: overall
        // VpPV / GMV / CTR / PV — nearly noiseless functions of the truth.
        let stats = vec![
            vppv * (1.0 + 0.03 * rng.normal()),
            (1.0 + gmv.max(0.0)).ln() * (1.0 + 0.03 * rng.normal()),
            sigmoid(0.9 * attractiveness - 0.5) * (1.0 + 0.03 * rng.normal()),
            (1.0 + g.traffic * 30.0).ln() * (1.0 + 0.03 * rng.normal()),
            affinity + 0.05 * rng.normal(),
            attractiveness + 0.05 * rng.normal(),
            (1.0 + vppv * g.traffic * 30.0).ln(),
            softplus(attractiveness) * (1.0 + 0.03 * rng.normal()),
        ];
        debug_assert_eq!(stats.len(), REST_STATS_FIELDS);

        RestaurantRecord { group, attractiveness, vppv, gmv, cats, nums, stats }
    }

    // ------------------------------------------------------------------
    // Schemas
    // ------------------------------------------------------------------

    /// Restaurant-profile schema (5 categorical + 24 numeric fields; after
    /// embedding/one-hot expansion this is ~211-dimensional, matching the
    /// paper's preprocessing note).
    pub fn restaurant_profile_schema() -> FeatureSchema {
        let mut fields: Vec<FieldSpec> = REST_CAT_VOCABS
            .iter()
            .map(|&(name, vocab)| FieldSpec::categorical(name, vocab))
            .collect();
        fields.extend((0..REST_NUM_FIELDS).map(|i| FieldSpec::numeric(&format!("r_num{i}"))));
        FeatureSchema::new(fields)
    }

    /// Restaurant-statistics schema (overall VpPV / GMV / CTR / traffic…).
    pub fn restaurant_stats_schema() -> FeatureSchema {
        FeatureSchema::new(
            (0..REST_STATS_FIELDS).map(|i| FieldSpec::numeric(&format!("rs_num{i}"))).collect(),
        )
    }

    /// User-group schema: the group id plus mean numeric features.
    pub fn group_schema() -> FeatureSchema {
        let mut fields = vec![FieldSpec::categorical("group_id", 64)];
        fields.extend((0..GROUP_NUM_FIELDS).map(|i| FieldSpec::numeric(&format!("g_num{i}"))));
        FeatureSchema::new(fields)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration used to generate this dataset.
    pub fn config(&self) -> &ElemeConfig {
        &self.cfg
    }

    /// Number of restaurants.
    pub fn num_restaurants(&self) -> usize {
        self.restaurants.len()
    }

    /// Number of user groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The location group a restaurant belongs to.
    pub fn group_of(&self, restaurant: u32) -> u32 {
        self.restaurants[restaurant as usize].group
    }

    /// Ground-truth 30-day VpPV label.
    pub fn vppv(&self, restaurant: u32) -> f32 {
        self.restaurants[restaurant as usize].vppv
    }

    /// Ground-truth 30-day GMV label.
    pub fn gmv(&self, restaurant: u32) -> f32 {
        self.restaurants[restaurant as usize].gmv
    }

    /// Latent attractiveness (for diagnostics/tests only — a model never
    /// sees this).
    pub fn attractiveness(&self, restaurant: u32) -> f32 {
        self.restaurants[restaurant as usize].attractiveness
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Encodes restaurant profiles against
    /// [`Self::restaurant_profile_schema`].
    pub fn encode_restaurant_profiles(&self, ids: &[u32]) -> FeatureBlock {
        let categorical = (0..REST_CAT_FIELDS)
            .map(|f| ids.iter().map(|&r| self.restaurants[r as usize].cats[f]).collect())
            .collect();
        let numeric = Matrix::from_fn(ids.len(), REST_NUM_FIELDS, |i, j| {
            self.restaurants[ids[i] as usize].nums[j]
        });
        FeatureBlock { categorical, numeric }
    }

    /// Encodes restaurant statistics against
    /// [`Self::restaurant_stats_schema`].
    pub fn encode_restaurant_stats(&self, ids: &[u32]) -> FeatureBlock {
        let numeric = Matrix::from_fn(ids.len(), REST_STATS_FIELDS, |i, j| {
            self.restaurants[ids[i] as usize].stats[j]
        });
        FeatureBlock { categorical: vec![], numeric }
    }

    /// Column means of statistics over `ids` (cold-start imputation).
    pub fn mean_restaurant_stats(&self, ids: &[u32]) -> Vec<f32> {
        let mut mean = vec![0.0f32; REST_STATS_FIELDS];
        for &r in ids {
            for (m, &v) in mean.iter_mut().zip(&self.restaurants[r as usize].stats) {
                *m += v;
            }
        }
        let n = ids.len().max(1) as f32;
        mean.iter_mut().for_each(|m| *m /= n);
        mean
    }

    /// Encodes the *home group* of each restaurant in `ids` against
    /// [`Self::group_schema`] — the paper's mean-user-feature trick.
    pub fn encode_groups_of(&self, ids: &[u32]) -> FeatureBlock {
        let group_ids: Vec<u32> = ids.iter().map(|&r| self.group_of(r)).collect();
        let numeric = Matrix::from_fn(ids.len(), GROUP_NUM_FIELDS, |i, j| {
            self.groups[group_ids[i] as usize].nums[j]
        });
        FeatureBlock { categorical: vec![group_ids], numeric }
    }
}

/// The human-expert restaurant-selection policy for the food-delivery A/B
/// test (Table V's control arm): a noisy estimate of each restaurant's
/// intrinsic attractiveness.
#[derive(Debug, Clone)]
pub struct ElemeExpertPolicy {
    /// Std of the Gaussian error on the expert's attractiveness estimate.
    pub noise: f32,
    /// Seed of the expert's idiosyncrasies.
    pub seed: u64,
}

impl Default for ElemeExpertPolicy {
    fn default() -> Self {
        // Calibrated so a well-trained model improves VpPV/GMV by a margin
        // in the paper's reported range (~8-15%).
        ElemeExpertPolicy { noise: 1.5, seed: 47 }
    }
}

impl ElemeExpertPolicy {
    /// Scores every restaurant in `ids`.
    pub fn score(&self, data: &ElemeDataset, ids: &[u32]) -> Vec<f32> {
        let mut rng = Rng64::seed_from_u64(self.seed);
        ids.iter().map(|&r| data.attractiveness(r) + self.noise * rng.normal()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> ElemeDataset {
        ElemeDataset::generate(ElemeConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = data();
        let b = data();
        let ids: Vec<u32> = (0..50).collect();
        assert_eq!(a.encode_restaurant_profiles(&ids), b.encode_restaurant_profiles(&ids));
        assert_eq!(a.vppv(3), b.vppv(3));
        let c = ElemeDataset::generate(ElemeConfig::tiny().with_seed(77));
        assert_ne!(a.vppv(3), c.vppv(3));
    }

    #[test]
    fn blocks_validate_against_schemas() {
        let d = data();
        let ids: Vec<u32> = (0..d.num_restaurants() as u32).collect();
        d.encode_restaurant_profiles(&ids)
            .validate(&ElemeDataset::restaurant_profile_schema())
            .unwrap();
        d.encode_restaurant_stats(&ids).validate(&ElemeDataset::restaurant_stats_schema()).unwrap();
        d.encode_groups_of(&ids).validate(&ElemeDataset::group_schema()).unwrap();
    }

    #[test]
    fn labels_are_positive_and_plausible() {
        let d = data();
        let mut mean_vppv = 0.0f64;
        for r in 0..d.num_restaurants() as u32 {
            assert!(d.vppv(r) >= 0.0);
            assert!(d.gmv(r) >= 0.0);
            mean_vppv += d.vppv(r) as f64;
        }
        mean_vppv /= d.num_restaurants() as f64;
        assert!((0.05..1.5).contains(&mean_vppv), "mean VpPV {mean_vppv}");
    }

    #[test]
    fn gmv_couples_vppv_with_group_traffic() {
        let d = data();
        let ids: Vec<u32> = (0..d.num_restaurants() as u32).collect();
        let vppv: Vec<f32> = ids.iter().map(|&r| d.vppv(r)).collect();
        let gmv: Vec<f32> = ids.iter().map(|&r| d.gmv(r)).collect();
        let rho = atnn_metrics::spearman(&vppv, &gmv).unwrap();
        assert!(rho > 0.4, "VpPV and GMV correlate: {rho}");
        assert!(rho < 0.99, "but are not identical: {rho}");
    }

    #[test]
    fn stats_reveal_attractiveness_profiles_less_so() {
        let d = data();
        let ids: Vec<u32> = (0..d.num_restaurants() as u32).collect();
        let attr: Vec<f32> = ids.iter().map(|&r| d.attractiveness(r)).collect();
        let stats = d.encode_restaurant_stats(&ids);
        let col5: Vec<f32> = (0..ids.len()).map(|i| stats.numeric.get(i, 5)).collect();
        assert!(atnn_metrics::spearman(&col5, &attr).unwrap() > 0.9);
        let profiles = d.encode_restaurant_profiles(&ids);
        let mut best = 0.0f64;
        for j in 0..profiles.numeric.cols() {
            let col: Vec<f32> = (0..ids.len()).map(|i| profiles.numeric.get(i, j)).collect();
            if let Some(r) = atnn_metrics::spearman(&col, &attr) {
                best = best.max(r.abs());
            }
        }
        assert!(best > 0.08 && best < 0.6, "profile signal should be partial: {best}");
    }

    #[test]
    fn expert_policy_skill_tracks_noise() {
        let d = data();
        let ids: Vec<u32> = (0..d.num_restaurants() as u32).collect();
        let attr: Vec<f32> = ids.iter().map(|&r| d.attractiveness(r)).collect();
        let sharp = ElemeExpertPolicy { noise: 0.1, seed: 1 }.score(&d, &ids);
        let blunt = ElemeExpertPolicy { noise: 4.0, seed: 1 }.score(&d, &ids);
        let rho_sharp = atnn_metrics::spearman(&sharp, &attr).unwrap();
        let rho_blunt = atnn_metrics::spearman(&blunt, &attr).unwrap();
        assert!(rho_sharp > 0.95 && rho_sharp > rho_blunt);
        // Determinism.
        assert_eq!(sharp, ElemeExpertPolicy { noise: 0.1, seed: 1 }.score(&d, &ids));
    }

    #[test]
    fn group_encoding_uses_home_group() {
        let d = data();
        let ids = [0u32, 1, 2];
        let block = d.encode_groups_of(&ids);
        for (i, &r) in ids.iter().enumerate() {
            assert_eq!(block.categorical[0][i], d.group_of(r));
        }
        assert!(d.group_of(0) < d.num_groups() as u32);
    }
}
