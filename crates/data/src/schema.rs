//! Typed feature schemas and encoded feature blocks.

use atnn_tensor::Matrix;

/// One raw feature field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldSpec {
    /// A categorical id in `[0, vocab)`; consumed through an embedding.
    Categorical {
        /// Field name (stable; checkpoints and encoders key on it).
        name: String,
        /// Number of distinct values, including an out-of-vocabulary slot.
        vocab: usize,
    },
    /// A real-valued feature, consumed directly (normalized upstream).
    Numeric {
        /// Field name.
        name: String,
    },
}

impl FieldSpec {
    /// Convenience constructor for a categorical field.
    pub fn categorical(name: &str, vocab: usize) -> Self {
        FieldSpec::Categorical { name: name.to_string(), vocab }
    }

    /// Convenience constructor for a numeric field.
    pub fn numeric(name: &str) -> Self {
        FieldSpec::Numeric { name: name.to_string() }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        match self {
            FieldSpec::Categorical { name, .. } | FieldSpec::Numeric { name } => name,
        }
    }
}

/// An ordered list of fields describing one entity (user, item profile,
/// item statistics, restaurant, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSchema {
    fields: Vec<FieldSpec>,
}

impl FeatureSchema {
    /// Builds a schema from fields; names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate field names (schemas are static declarations;
    /// a duplicate is a programming error).
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[..i] {
                assert_ne!(f.name(), g.name(), "duplicate field name '{}'", f.name());
            }
        }
        FeatureSchema { fields }
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// The categorical fields, in order, as `(name, vocab)`.
    pub fn categorical_fields(&self) -> Vec<(&str, usize)> {
        self.fields
            .iter()
            .filter_map(|f| match f {
                FieldSpec::Categorical { name, vocab } => Some((name.as_str(), *vocab)),
                FieldSpec::Numeric { .. } => None,
            })
            .collect()
    }

    /// Number of categorical fields.
    pub fn num_categorical(&self) -> usize {
        self.categorical_fields().len()
    }

    /// Number of numeric fields.
    pub fn num_numeric(&self) -> usize {
        self.fields.len() - self.num_categorical()
    }

    /// Total raw feature count (the paper counts 19 / 38 / 46 this way).
    pub fn num_raw(&self) -> usize {
        self.fields.len()
    }
}

/// A batch of entities encoded against a [`FeatureSchema`]: one id column
/// per categorical field plus a dense numeric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBlock {
    /// `categorical[f][i]` = id of entity `i` in categorical field `f`.
    pub categorical: Vec<Vec<u32>>,
    /// `numeric` is `[n, num_numeric]`.
    pub numeric: Matrix,
}

impl FeatureBlock {
    /// Number of entities in the block.
    pub fn len(&self) -> usize {
        self.numeric.rows()
    }

    /// True when the block holds no entities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the block against its schema: column counts, row counts
    /// and id ranges.
    pub fn validate(&self, schema: &FeatureSchema) -> Result<(), String> {
        let cats = schema.categorical_fields();
        if self.categorical.len() != cats.len() {
            return Err(format!(
                "expected {} categorical columns, got {}",
                cats.len(),
                self.categorical.len()
            ));
        }
        if self.numeric.cols() != schema.num_numeric() {
            return Err(format!(
                "expected {} numeric columns, got {}",
                schema.num_numeric(),
                self.numeric.cols()
            ));
        }
        let n = self.numeric.rows();
        for (col, (name, vocab)) in self.categorical.iter().zip(&cats) {
            if col.len() != n {
                return Err(format!("field '{name}': {} ids for {n} rows", col.len()));
            }
            if let Some(&bad) = col.iter().find(|&&id| id as usize >= *vocab) {
                return Err(format!("field '{name}': id {bad} >= vocab {vocab}"));
            }
        }
        // Non-finite numerics silently poison every downstream gradient;
        // reject them at the boundary.
        if let Some(pos) = self.numeric.as_slice().iter().position(|v| !v.is_finite()) {
            let (row, col) = (pos / self.numeric.cols().max(1), pos % self.numeric.cols().max(1));
            return Err(format!("non-finite numeric value at row {row}, column {col}"));
        }
        Ok(())
    }

    /// Extracts the sub-block of entities at `rows`.
    pub fn select(&self, rows: &[u32]) -> FeatureBlock {
        FeatureBlock {
            categorical: self
                .categorical
                .iter()
                .map(|col| rows.iter().map(|&r| col[r as usize]).collect())
                .collect(),
            numeric: self.numeric.select_rows(rows).expect("select rows in range"),
        }
    }

    /// Concatenates the numeric parts and categorical columns of two blocks
    /// describing the *same* entities (e.g. item profile ++ item stats).
    pub fn zip(&self, other: &FeatureBlock) -> FeatureBlock {
        assert_eq!(self.len(), other.len(), "zip: row count mismatch");
        let mut categorical = self.categorical.clone();
        categorical.extend(other.categorical.iter().cloned());
        FeatureBlock {
            categorical,
            numeric: self.numeric.concat_cols(&other.numeric).expect("zip numeric"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> FeatureSchema {
        FeatureSchema::new(vec![
            FieldSpec::categorical("cat", 4),
            FieldSpec::numeric("x"),
            FieldSpec::categorical("brand", 2),
            FieldSpec::numeric("y"),
        ])
    }

    #[test]
    fn counts_and_accessors() {
        let s = schema();
        assert_eq!(s.num_raw(), 4);
        assert_eq!(s.num_categorical(), 2);
        assert_eq!(s.num_numeric(), 2);
        assert_eq!(s.categorical_fields(), vec![("cat", 4), ("brand", 2)]);
        assert_eq!(s.fields()[1].name(), "x");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        FeatureSchema::new(vec![FieldSpec::numeric("x"), FieldSpec::numeric("x")]);
    }

    #[test]
    fn validate_catches_errors() {
        let s = schema();
        let good = FeatureBlock {
            categorical: vec![vec![0, 3], vec![1, 0]],
            numeric: Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
        };
        assert!(good.validate(&s).is_ok());

        let mut wrong_vocab = good.clone();
        wrong_vocab.categorical[0][1] = 4;
        assert!(wrong_vocab.validate(&s).unwrap_err().contains("vocab"));

        let mut wrong_rows = good.clone();
        wrong_rows.categorical[1].pop();
        assert!(wrong_rows.validate(&s).unwrap_err().contains("rows"));

        let wrong_cols =
            FeatureBlock { categorical: vec![vec![0, 0]], numeric: good.numeric.clone() };
        assert!(wrong_cols.validate(&s).unwrap_err().contains("categorical columns"));

        let wrong_numeric =
            FeatureBlock { categorical: good.categorical.clone(), numeric: Matrix::zeros(2, 3) };
        assert!(wrong_numeric.validate(&s).unwrap_err().contains("numeric"));

        let mut poisoned = good.clone();
        poisoned.numeric.set(1, 0, f32::NAN);
        let err = poisoned.validate(&s).unwrap_err();
        assert!(err.contains("non-finite") && err.contains("row 1"), "{err}");
        let mut infinite = good.clone();
        infinite.numeric.set(0, 1, f32::INFINITY);
        assert!(infinite.validate(&s).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn select_reorders_entities() {
        let b = FeatureBlock {
            categorical: vec![vec![0, 1, 2]],
            numeric: Matrix::from_fn(3, 1, |i, _| i as f32),
        };
        let s = b.select(&[2, 0]);
        assert_eq!(s.categorical[0], vec![2, 0]);
        assert_eq!(s.numeric.as_slice(), &[2.0, 0.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zip_concatenates_fields() {
        let a = FeatureBlock {
            categorical: vec![vec![1, 2]],
            numeric: Matrix::from_fn(2, 2, |i, j| (i + j) as f32),
        };
        let b = FeatureBlock {
            categorical: vec![],
            numeric: Matrix::from_fn(2, 3, |i, j| (10 + i + j) as f32),
        };
        let z = a.zip(&b);
        assert_eq!(z.categorical.len(), 1);
        assert_eq!(z.numeric.shape(), (2, 5));
        assert_eq!(z.numeric.row(0)[2..], [10.0, 11.0, 12.0]);
    }
}
