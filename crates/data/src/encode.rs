//! Encoding utilities: string vocabularies, hash buckets and numeric
//! normalization.

use std::collections::HashMap;

use atnn_tensor::Matrix;

/// A growable string-to-id vocabulary with a reserved out-of-vocabulary
/// slot at id `0`.
///
/// `fit`-time strings get stable ids `1..`; unseen strings map to `0` at
/// lookup time. This is how production feature pipelines keep embedding
/// tables bounded while new sellers/brands keep arriving.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    map: HashMap<String, u32>,
    frozen: bool,
}

impl Vocab {
    /// Creates an empty, unfrozen vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `token`, inserting it when unfrozen. A frozen
    /// vocabulary maps unknown tokens to the OOV id `0`.
    pub fn encode(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        if self.frozen {
            return 0;
        }
        let id = self.map.len() as u32 + 1;
        self.map.insert(token.to_string(), id);
        id
    }

    /// Lookup without insertion; unknown tokens map to `0`.
    pub fn get(&self, token: &str) -> u32 {
        self.map.get(token).copied().unwrap_or(0)
    }

    /// Freezes the vocabulary: subsequent unknown tokens become OOV.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Number of ids issued, including the OOV slot (i.e. valid embedding
    /// vocab size).
    pub fn len(&self) -> usize {
        self.map.len() + 1
    }

    /// True when only the OOV slot exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Deterministic hash-bucket encoder (FNV-1a), for id spaces too large to
/// enumerate (e.g. raw user ids). Returns a bucket in `[0, buckets)`.
pub fn hash_bucket(token: &str, buckets: usize) -> u32 {
    assert!(buckets > 0, "hash_bucket needs at least one bucket");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % buckets as u64) as u32
}

/// Per-column z-score normalization fit on a training matrix and applied
/// to any other matrix with the same width.
///
/// Columns with (near-)zero variance are passed through centered only —
/// dividing by ~0 would explode them.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits means and standard deviations per column.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &Matrix) -> Self {
        assert!(data.rows() > 0, "Normalizer::fit on empty matrix");
        let n = data.rows() as f32;
        let mut mean = vec![0.0f32; data.cols()];
        for i in 0..data.rows() {
            for (m, &v) in mean.iter_mut().zip(data.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; data.cols()];
        for i in 0..data.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(data.row(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|s| (s / n).sqrt()).collect();
        Normalizer { mean, std }
    }

    /// Applies `(x - mean) / std` column-wise.
    ///
    /// # Panics
    /// Panics when the width differs from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "Normalizer width mismatch");
        let mut out = data.clone();
        for i in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(i).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = if s > 1e-6 { (*v - m) / s } else { *v - m };
            }
        }
        out
    }

    /// The fitted per-column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The fitted per-column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_assigns_stable_ids_and_oov() {
        let mut v = Vocab::new();
        assert!(v.is_empty());
        let a = v.encode("nike");
        let b = v.encode("adidas");
        assert_eq!(v.encode("nike"), a);
        assert_ne!(a, b);
        assert!(a > 0 && b > 0, "OOV id 0 is reserved");
        assert_eq!(v.len(), 3);
        v.freeze();
        assert_eq!(v.encode("puma"), 0);
        assert_eq!(v.get("nike"), a);
        assert_eq!(v.get("unknown"), 0);
        assert_eq!(v.len(), 3, "freeze stops growth");
    }

    #[test]
    fn hash_bucket_is_deterministic_and_in_range() {
        for buckets in [1usize, 7, 1024] {
            for token in ["user_1", "user_2", ""] {
                let b = hash_bucket(token, buckets);
                assert_eq!(b, hash_bucket(token, buckets));
                assert!((b as usize) < buckets);
            }
        }
        assert_ne!(hash_bucket("a", 1 << 20), hash_bucket("b", 1 << 20));
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let data = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0], &[5.0, 10.0]]).unwrap();
        let norm = Normalizer::fit(&data);
        let t = norm.transform(&data);
        // Column 0: mean 3, std sqrt(8/3).
        let col0: Vec<f32> = (0..3).map(|i| t.get(i, 0)).collect();
        let mean0 = col0.iter().sum::<f32>() / 3.0;
        let var0 = col0.iter().map(|v| v * v).sum::<f32>() / 3.0 - mean0 * mean0;
        assert!(mean0.abs() < 1e-6);
        assert!((var0 - 1.0).abs() < 1e-5);
        // Constant column passes through centered, not exploded.
        for i in 0..3 {
            assert_eq!(t.get(i, 1), 0.0);
        }
    }

    #[test]
    fn normalizer_applies_train_stats_to_test() {
        let train = Matrix::from_rows(&[&[0.0], &[2.0]]).unwrap();
        let norm = Normalizer::fit(&train);
        let test = Matrix::from_rows(&[&[4.0]]).unwrap();
        // mean 1, std 1 -> (4-1)/1 = 3
        assert_eq!(norm.transform(&test).get(0, 0), 3.0);
        assert_eq!(norm.mean(), &[1.0]);
        assert_eq!(norm.std(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn normalizer_rejects_wrong_width() {
        let norm = Normalizer::fit(&Matrix::zeros(2, 2));
        let _ = norm.transform(&Matrix::zeros(1, 3));
    }
}
