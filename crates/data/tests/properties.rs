//! Property-based tests over the simulators and data utilities: the
//! invariants must hold for *any* small configuration, not just the
//! presets.

use atnn_data::dataset::{BatchIter, Split};
use atnn_data::eleme::{ElemeConfig, ElemeDataset};
use atnn_data::io::{
    decode_feature_block, decode_interactions, encode_feature_block, encode_interactions,
};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::Rng64;
use proptest::prelude::*;

fn small_config() -> impl Strategy<Value = TmallConfig> {
    (
        20usize..80,     // users
        30usize..120,    // items
        200usize..1_000, // interactions
        2usize..10,      // latent dim
        0.1f32..1.5,     // profile noise
        0.0f32..0.3,     // flip prob
        any::<u64>(),    // seed
    )
        .prop_map(|(u, i, n, k, noise, flip, seed)| TmallConfig {
            num_users: u,
            num_items: i,
            num_interactions: n,
            latent_dim: k,
            profile_noise: noise,
            profile_flip_prob: flip,
            seed,
            ..TmallConfig::tiny()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulator_invariants_hold_for_any_config(cfg in small_config()) {
        let data = TmallDataset::generate(cfg.clone());
        prop_assert_eq!(data.num_users(), cfg.num_users);
        prop_assert_eq!(data.num_items(), cfg.num_items);
        prop_assert_eq!(data.interactions.len(), cfg.num_interactions);

        // Every interaction references valid entities.
        for i in &data.interactions {
            prop_assert!((i.user as usize) < cfg.num_users);
            prop_assert!((i.item as usize) < cfg.num_items);
        }
        // Probabilities are valid for sampled pairs and all items.
        for item in 0..cfg.num_items as u32 {
            let p = data.true_popularity(item);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(data.item_price(item) > 0.0);
            prop_assert!(data.item_traffic(item) > 0.0);
        }
        // Encoded blocks validate against their schemas.
        let items: Vec<u32> = (0..cfg.num_items as u32).collect();
        let users: Vec<u32> = (0..cfg.num_users as u32).collect();
        prop_assert!(data
            .encode_item_profiles(&items)
            .validate(&TmallDataset::item_profile_schema())
            .is_ok());
        prop_assert!(data
            .encode_item_stats(&items)
            .validate(&TmallDataset::item_stats_schema())
            .is_ok());
        prop_assert!(data.encode_users(&users).validate(&TmallDataset::user_schema()).is_ok());
        // All encoded numerics are finite.
        prop_assert!(data
            .encode_item_stats(&items)
            .numeric
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn generation_is_seed_deterministic(cfg in small_config()) {
        let a = TmallDataset::generate(cfg.clone());
        let b = TmallDataset::generate(cfg);
        prop_assert_eq!(a.interactions, b.interactions);
    }

    #[test]
    fn artifact_roundtrips_for_any_dataset(cfg in small_config()) {
        let data = TmallDataset::generate(cfg);
        let log = encode_interactions(&data.interactions);
        prop_assert_eq!(decode_interactions(log).unwrap(), data.interactions.clone());
        let ids: Vec<u32> = (0..data.num_items().min(40) as u32).collect();
        let block = data.encode_item_profiles(&ids);
        prop_assert_eq!(decode_feature_block(encode_feature_block(&block)).unwrap(), block);
    }

    #[test]
    fn eleme_invariants_hold_for_any_config(
        restaurants in 20usize..150,
        groups in 1usize..32,
        k in 2usize..8,
        noise in 0.2f32..1.2,
        seed in any::<u64>(),
    ) {
        let cfg = ElemeConfig {
            num_restaurants: restaurants,
            num_groups: groups,
            latent_dim: k,
            profile_noise: noise,
            seed,
            ..ElemeConfig::tiny()
        };
        let data = ElemeDataset::generate(cfg);
        prop_assert_eq!(data.num_restaurants(), restaurants);
        prop_assert_eq!(data.num_groups(), groups);
        let ids: Vec<u32> = (0..restaurants as u32).collect();
        for &r in &ids {
            prop_assert!(data.vppv(r) >= 0.0 && data.vppv(r).is_finite());
            prop_assert!(data.gmv(r) >= 0.0 && data.gmv(r).is_finite());
            prop_assert!((data.group_of(r) as usize) < groups);
        }
        prop_assert!(data
            .encode_restaurant_profiles(&ids)
            .validate(&ElemeDataset::restaurant_profile_schema())
            .is_ok());
        prop_assert!(data
            .encode_groups_of(&ids)
            .validate(&ElemeDataset::group_schema())
            .is_ok());
        // Determinism.
        let again = ElemeDataset::generate(ElemeConfig {
            num_restaurants: restaurants,
            num_groups: groups,
            latent_dim: k,
            profile_noise: noise,
            seed,
            ..ElemeConfig::tiny()
        });
        prop_assert_eq!(again.vppv(0), data.vppv(0));
    }

    #[test]
    fn split_partitions_for_any_fraction(n in 2usize..400, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let mut rng = Rng64::seed_from_u64(seed);
        let s = Split::random(n, frac, &mut rng);
        prop_assert_eq!(s.train.len() + s.test.len(), n);
        prop_assert!(!s.train.is_empty() && !s.test.is_empty());
        let mut all: Vec<u32> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iter_covers_all_indices(n in 1usize..300, batch in 1usize..64, seed in any::<u64>()) {
        let mut it = BatchIter::new((0..n as u32).collect(), batch, Rng64::seed_from_u64(seed));
        let mut seen = Vec::new();
        while let Some(b) = it.next_batch() {
            prop_assert!(b.len() <= batch);
            seen.extend_from_slice(b);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
    }
}
