//! Figure 2 — the standard concat-DNN baseline: training-step and
//! inference throughput of the architecture the two-tower design replaces.

use atnn_core::{gather_batch, AtnnConfig, ConcatDnn};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_concat_dnn(c: &mut Criterion) {
    let data = TmallDataset::generate(TmallConfig::tiny());
    let mut model = ConcatDnn::new(&AtnnConfig::scaled(), &data);
    let rows: Vec<u32> = (0..256).collect();
    let (profile, stats, users, labels) = gather_batch(&data, &rows);

    let mut group = c.benchmark_group("fig2_concat_dnn");
    group.sample_size(20);
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("train_step_256", |b| {
        b.iter(|| model.train_step(&profile, &stats, &users, &labels))
    });
    group.bench_function("predict_256", |b| b.iter(|| model.predict(&profile, &stats, &users)));
    group.finish();
}

criterion_group!(benches, bench_concat_dnn);
criterion_main!(benches);
