//! Figure 3 — the two-tower network: forward-pass cost of each tower and
//! the pairwise scoring head, plus the key structural payoff the paper
//! highlights: item vectors are materializable *independently* of users.

use atnn_autograd::Graph;
use atnn_core::{gather_batch, Atnn, AtnnConfig};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_two_tower(c: &mut Criterion) {
    let data = TmallDataset::generate(TmallConfig::tiny());
    let model = Atnn::new(AtnnConfig::tnn_dcn(), &data);
    let rows: Vec<u32> = (0..256).collect();
    let (profile, stats, users, _) = gather_batch(&data, &rows);

    let mut group = c.benchmark_group("fig3_two_tower");
    group.sample_size(20);
    group.throughput(Throughput::Elements(rows.len() as u64));
    group
        .bench_function("item_tower_256", |b| b.iter(|| model.item_vectors_full(&profile, &stats)));
    group.bench_function("user_tower_256", |b| b.iter(|| model.user_vectors(&users)));
    group.bench_function("full_pairwise_ctr_256", |b| {
        b.iter(|| model.predict_ctr_full(&profile, &stats, &users))
    });
    group.bench_function("score_head_only_256", |b| {
        // Towers precomputed; only the dot-product head runs per pair.
        let mut g = Graph::new();
        let iv = model.item_vec_full(&mut g, &profile, &stats);
        let uv = model.user_vec(&mut g, &users);
        let item_vecs = g.value(iv).clone();
        let user_vecs = g.value(uv).clone();
        b.iter(|| {
            let mut g = Graph::new();
            let i = g.input(item_vecs.clone());
            let u = g.input(user_vecs.clone());
            let logits = model.score_logits(&mut g, i, u);
            std::hint::black_box(g.value(logits).sum())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_two_tower);
criterion_main!(benches);
