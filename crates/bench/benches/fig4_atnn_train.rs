//! Figure 4 / Algorithm 1 — ATNN's alternating training step: cost of the
//! full D+G step versus a plain TNN step, in both adversarial modes.

use atnn_core::{gather_batch, AdversarialMode, Atnn, AtnnConfig};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_train_step(c: &mut Criterion) {
    let data = TmallDataset::generate(TmallConfig::tiny());
    let rows: Vec<u32> = (0..256).collect();
    let (profile, stats, users, labels) = gather_batch(&data, &rows);

    let mut group = c.benchmark_group("fig4_train_step_256");
    group.sample_size(20);
    group.throughput(Throughput::Elements(rows.len() as u64));

    let variants = [
        ("tnn_dcn_d_only", AtnnConfig::tnn_dcn()),
        ("atnn_similarity", AtnnConfig::scaled()),
        (
            "atnn_learned_disc",
            AtnnConfig::scaled()
                .to_builder()
                .adversarial(AdversarialMode::LearnedDiscriminator)
                .build()
                .expect("valid config"),
        ),
    ];
    for (name, cfg) in variants {
        let mut model = Atnn::new(cfg, &data);
        group.bench_function(name, |b| {
            b.iter(|| model.train_step(&profile, &stats, &users, &labels))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
