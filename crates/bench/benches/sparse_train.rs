//! Vocab-sweep train-step benchmark: sparse vs dense embedding
//! gradients (`ParamStore::mark_sparse`).
//!
//! One "train step" is the full loop body — zero grads, forward
//! (gather + linear head), backward, clip, AdaGrad update — on a fixed
//! 256-row batch over a `vocab x 16` table. The dense path pays
//! `O(vocab x dim)` per step (gradient zeroing + optimizer scan); the
//! sparse path pays `O(batch x dim)`, so its step time should be flat
//! in vocab: the acceptance bar is 1M-vocab sparse within 2x of
//! 10k-vocab sparse. AdaGrad is the sparse-bit-identical optimizer with
//! per-row state, i.e. the representative training configuration.
//!
//! Set `CRITERION_JSON=BENCH_sparse.json` to capture the sweep; a
//! counting global allocator additionally reports steady-state heap
//! allocations per step on stderr (the EXPERIMENTS.md numbers).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use atnn_autograd::{Graph, ParamId, ParamStore};
use atnn_nn::{clip_grad_norm, AdaGrad, Optimizer};
use atnn_tensor::{pool, Init, Matrix, Rng64};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct CountingAlloc;

static COUNT_ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNT_ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNT_ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DIM: usize = 16;
const BATCH: usize = 256;

/// Embedding table + linear head trained with AdaGrad on a fixed batch.
struct StepHarness {
    store: ParamStore,
    table: ParamId,
    head: ParamId,
    group: Vec<ParamId>,
    opt: AdaGrad,
    g: Graph,
    ids: Vec<u32>,
    targets: Matrix,
}

impl StepHarness {
    fn new(vocab: usize, sparse: bool) -> Self {
        let mut rng = Rng64::seed_from_u64(0xA11C + vocab as u64);
        let mut store = ParamStore::new();
        let table = store.add("emb", Init::Normal(0.05).sample(vocab, DIM, &mut rng));
        if sparse {
            store.mark_sparse(table);
        }
        let head = store.add("head", Init::Normal(0.3).sample(DIM, 1, &mut rng));
        let group = vec![table, head];
        let opt = AdaGrad::new(group.clone(), 0.05);
        let ids: Vec<u32> = (0..BATCH).map(|_| rng.index(vocab) as u32).collect();
        let targets = Matrix::from_fn(BATCH, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        StepHarness { store, table, head, group, opt, g: Graph::new(), ids, targets }
    }

    fn step(&mut self) -> f32 {
        self.store.zero_grads(&self.group);
        self.g.clear();
        let e = self.g.gather(&self.store, self.table, &self.ids);
        let h = self.g.param(&self.store, self.head);
        let pred = self.g.matmul(e, h);
        let loss = self.g.mse_loss(pred, &self.targets);
        let value = self.g.value(loss).get(0, 0);
        self.g.backward(loss, &mut self.store);
        clip_grad_norm(&mut self.store, &self.group, 5.0);
        self.opt.step(&mut self.store);
        value
    }
}

/// Steady-state allocations per step, after warmup (stderr only — the
/// timing records carry no allocator channel).
fn report_allocs(vocab: usize, sparse: bool) {
    let mut h = StepHarness::new(vocab, sparse);
    for _ in 0..4 {
        h.step();
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNT_ENABLED.store(true, Ordering::SeqCst);
    const STEPS: usize = 5;
    for _ in 0..STEPS {
        h.step();
    }
    COUNT_ENABLED.store(false, Ordering::SeqCst);
    let per_step = ALLOCS.load(Ordering::SeqCst) / STEPS;
    let kind = if sparse { "sparse" } else { "dense" };
    eprintln!("allocs_per_step vocab={vocab} {kind}: {per_step}");
}

fn bench_train_step(c: &mut Criterion) {
    pool::with_threads(1, || {
        let mut group = c.benchmark_group("sparse_train_step");
        for &vocab in &[10_000usize, 100_000, 1_000_000] {
            group.sample_size(if vocab >= 1_000_000 { 10 } else { 20 });
            for sparse in [true, false] {
                report_allocs(vocab, sparse);
                let label = if sparse { "sparse" } else { "dense" };
                group.bench_with_input(BenchmarkId::new(label, vocab), &vocab, |b, _| {
                    let mut h = StepHarness::new(vocab, sparse);
                    for _ in 0..3 {
                        h.step(); // fill arena + optimizer state before timing
                    }
                    b.iter(|| h.step())
                });
            }
        }
        group.finish();
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_train_step
}
criterion_main!(benches);
