//! Figure 5 — the O(1) popularity-serving claim.
//!
//! Scoring one batch of new arrivals with the stored mean user vector
//! must be (near-)constant in the user-group size, while the naive
//! pairwise path grows linearly with it. Criterion output shows exactly
//! that: the `pairwise/N` series scales with N, `mean_vector/N` does not.

use atnn_core::{
    pairwise_popularity, Atnn, AtnnConfig, CtrTrainer, GroupedPopularityIndex, PopularityIndex,
    TrainOptions,
};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::Rng64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Setup {
    data: TmallDataset,
    model: Atnn,
    items: Vec<u32>,
}

fn setup() -> Setup {
    let data = TmallDataset::generate(TmallConfig {
        num_users: 3_200,
        num_items: 1_000,
        num_interactions: 10_000,
        ..TmallConfig::tiny()
    });
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    let items: Vec<u32> = (0..200).collect();
    Setup { data, model, items }
}

fn bench_serving(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("fig5_popularity_scoring_200_items");
    group.sample_size(10);
    for &n_users in &[200usize, 800, 3_200] {
        let user_group: Vec<u32> = (0..n_users as u32).collect();
        // O(N_users) reference: the Cartesian scoring the paper replaces.
        group.bench_with_input(BenchmarkId::new("pairwise", n_users), &n_users, |b, _| {
            b.iter(|| pairwise_popularity(&s.model, &s.data, &s.items, &user_group))
        });
        // O(1) path: the index is built once at "training time"; serving
        // touches only the stored mean vector.
        let index = PopularityIndex::build(&s.model, &s.data, &user_group);
        group.bench_with_input(BenchmarkId::new("mean_vector", n_users), &n_users, |b, _| {
            b.iter(|| index.score_new_arrivals(&s.model, &s.data, &s.items))
        });
    }
    group.finish();

    // The index build itself (amortized into training in production).
    let user_group: Vec<u32> = (0..3_200u32).collect();
    c.bench_function("fig5_index_build_3200_users", |b| {
        b.iter(|| PopularityIndex::build(&s.model, &s.data, &user_group))
    });

    // The §VI refinement: O(k) grouped scoring sits between O(1) and
    // O(N_users) — still flat in the user count.
    let mut rng = Rng64::seed_from_u64(1);
    let mut group = c.benchmark_group("fig5_grouped_scoring_200_items");
    group.sample_size(10);
    for &k in &[4usize, 16, 64] {
        let idx = GroupedPopularityIndex::build(&s.model, &s.data, &user_group, k, &mut rng);
        group.bench_with_input(BenchmarkId::new("clusters", k), &k, |b, _| {
            b.iter(|| idx.score_new_arrivals(&s.model, &s.data, &s.items))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
