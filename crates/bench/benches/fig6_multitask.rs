//! Figure 6 / Algorithm 2 — the multi-task extended ATNN: cost of one
//! alternating step and of cold-start inference for new restaurants.

use atnn_core::{AtnnConfig, MultiTaskAtnn, MultiTaskTrainOptions};
use atnn_data::eleme::{ElemeConfig, ElemeDataset};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_multitask(c: &mut Criterion) {
    let data = ElemeDataset::generate(ElemeConfig::tiny());
    let train: Vec<u32> = (0..500).collect();
    let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &train);
    let opts = MultiTaskTrainOptions::default();
    let batch: Vec<u32> = (0..128).collect();

    let mut group = c.benchmark_group("fig6_multitask");
    group.sample_size(20);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("train_step_128", |b| b.iter(|| model.train_step(&data, &batch, &opts)));
    group.bench_function("predict_cold_128", |b| b.iter(|| model.predict_cold(&data, &batch)));
    group.finish();
}

criterion_group!(benches, bench_multitask);
criterion_main!(benches);
