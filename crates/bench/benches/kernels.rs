//! Micro-benchmarks of the hot kernels under everything else: matmul
//! variants, embedding gather, and GBDT binning.

use atnn_autograd::{Graph, ParamStore};
use atnn_baselines::gbdt::binning::BinMapper;
use atnn_core::{Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::{pool, Init, Matrix, Rng64};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = Rng64::seed_from_u64(1);
        let a = Init::Normal(1.0).sample(n, n, &mut rng);
        let b = Init::Normal(1.0).sample(n, n, &mut rng);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| a.matmul_tn(&b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| a.matmul_nt(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_matmul_tiled_vs_naive(c: &mut Criterion) {
    // The paper-width regime: 512-wide towers, beyond L2. The packed
    // register-tiled kernel (what `matmul` dispatches to) vs the naive
    // i-k-j reference it is proven bit-identical to.
    let mut rng = Rng64::seed_from_u64(5);
    let a = Init::Normal(1.0).sample(256, 1024, &mut rng);
    let b = Init::Normal(1.0).sample(1024, 1024, &mut rng);
    let mut group = c.benchmark_group("matmul_1024_beyond_l2");
    group.sample_size(20);
    group.bench_function("tiled", |bench| bench.iter(|| a.matmul(&b).unwrap()));
    group.bench_function("naive", |bench| bench.iter(|| a.matmul_naive(&b)));
    group.finish();
}

fn bench_matmul_parallel(c: &mut Criterion) {
    // Serial vs row-sharded parallel dispatch at pool widths 1/2/4.
    // `with_threads` pins the advertised width, the same override
    // `ATNN_THREADS` feeds; the kernels are bit-identical either way, so
    // this measures scheduling overhead + whatever real parallelism the
    // host offers. On a single-CPU host widths >1 cannot beat width 1 —
    // the interesting number there is how small the overhead stays.
    let mut rng = Rng64::seed_from_u64(7);
    let mut group = c.benchmark_group("matmul_parallel");
    for &n in &[256usize, 512, 1024] {
        let a = Init::Normal(1.0).sample(n, n, &mut rng);
        let b = Init::Normal(1.0).sample(n, n, &mut rng);
        group.sample_size(if n >= 1024 { 10 } else { 20 });
        group.throughput(Throughput::Elements((n * n * n) as u64));
        for &threads in &[1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::new(format!("t{threads}"), n), &n, |bench, _| {
                bench.iter(|| pool::with_threads(threads, || a.matmul(&b)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    // End-to-end CTR training epoch (tiny Tmall draw) at pool widths 1
    // and 4: exercises the parallel gather, the forward/backward matmuls
    // through linear/mlp, and adversarial steps together.
    let data = TmallDataset::generate(TmallConfig::tiny());
    let mut group = c.benchmark_group("train_epoch_tiny");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_function(format!("t{threads}"), |bench| {
            bench.iter(|| {
                pool::with_threads(threads, || {
                    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
                    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
                    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs")
                })
            })
        });
    }
    group.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(2);
    let mut store = ParamStore::new();
    let table = store.add("emb", Init::Normal(0.05).sample(10_000, 16, &mut rng));
    let ids: Vec<u32> = (0..256).map(|_| rng.index(10_000) as u32).collect();
    c.bench_function("gather_256_of_10k", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let v = g.gather(&store, table, &ids);
            std::hint::black_box(g.value(v).sum())
        })
    });
}

fn bench_binning(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(3);
    let x = Matrix::from_fn(5_000, 50, |_, _| rng.normal());
    let mapper = BinMapper::fit(&x, 64);
    c.bench_function("bin_transform_5000x50", |b| b.iter(|| mapper.transform(&x)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_matmul_tiled_vs_naive, bench_matmul_parallel, bench_train_epoch,
        bench_gather, bench_binning
}
criterion_main!(benches);
