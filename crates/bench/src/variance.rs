//! Seed-variance study over the Table-I experiment.
//!
//! A single-seed table can overstate (or bury) a model difference; this
//! module reruns Table I across independent dataset draws + model
//! initializations and reports per-cell mean ± sample standard deviation.
//! `repro_variance` prints it; `EXPERIMENTS.md` cites it when deciding
//! which paper claims survive noise.

use crate::table1::{self, Table1};
use crate::Scale;

/// Mean ± std of one Table-I cell across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Mean over seeds.
    pub mean: f64,
    /// Sample standard deviation (0 for a single seed).
    pub std: f64,
}

impl CellStats {
    fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len().max(1) as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() > 1 {
            xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        CellStats { mean, std: var.sqrt() }
    }
}

/// Aggregated Table-I statistics.
#[derive(Debug, Clone)]
pub struct VarianceReport {
    /// Model names in the paper's order.
    pub models: Vec<String>,
    /// Per-model cold-start AUC statistics.
    pub profile_only: Vec<CellStats>,
    /// Per-model complete-feature AUC statistics.
    pub complete: Vec<CellStats>,
    /// Per-model degradation statistics.
    pub degradation: Vec<CellStats>,
    /// Individual runs (for downstream analysis).
    pub runs: Vec<Table1>,
}

impl VarianceReport {
    /// Whether "ATNN has the best cold-start AUC" held in *every* run.
    pub fn atnn_always_best_cold(&self) -> bool {
        self.runs.iter().all(|t| {
            let atnn = t.row("ATNN").auc_profile_only;
            t.rows.iter().all(|r| r.model == "ATNN" || r.auc_profile_only < atnn)
        })
    }
}

/// Runs Table I for `num_seeds` independent seeds and aggregates.
pub fn run(scale: Scale, num_seeds: usize) -> VarianceReport {
    assert!(num_seeds > 0, "need at least one seed");
    let runs: Vec<Table1> = (0..num_seeds as u64).map(|s| table1::run_seeded(scale, s)).collect();
    let models: Vec<String> = runs[0].rows.iter().map(|r| r.model.clone()).collect();
    let collect = |f: &dyn Fn(&table1::Row) -> f64| -> Vec<CellStats> {
        models
            .iter()
            .map(|m| {
                let samples: Vec<f64> = runs.iter().map(|t| f(t.row(m))).collect();
                CellStats::from_samples(&samples)
            })
            .collect()
    };
    VarianceReport {
        profile_only: collect(&|r| r.auc_profile_only),
        complete: collect(&|r| r.auc_complete),
        degradation: collect(&|r| r.degradation()),
        models,
        runs,
    }
}

/// Renders mean ± std per cell.
pub fn render(v: &VarianceReport) -> String {
    let fmt_cell = |c: &CellStats| format!("{:.4} ± {:.4}", c.mean, c.std);
    let fmt_pct = |c: &CellStats| format!("{:+.2}% ± {:.2}%", c.mean * 100.0, c.std * 100.0);
    let rows: Vec<Vec<String>> = v
        .models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            vec![
                m.clone(),
                fmt_cell(&v.profile_only[i]),
                fmt_cell(&v.complete[i]),
                fmt_pct(&v.degradation[i]),
            ]
        })
        .collect();
    crate::fmt::render_table(&["Model", "AUC profile-only", "AUC complete", "Degradation"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_stats_math() {
        let c = CellStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((c.mean - 2.0).abs() < 1e-12);
        assert!((c.std - 1.0).abs() < 1e-12);
        let single = CellStats::from_samples(&[5.0]);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn headline_claims_survive_three_seeds_at_tiny_scale() {
        let v = run(Scale::Tiny, 3);
        assert_eq!(v.runs.len(), 3);
        // Seeds genuinely differ.
        let aucs: Vec<f64> = v.runs.iter().map(|t| t.row("ATNN").auc_profile_only).collect();
        assert!(aucs.windows(2).any(|w| w[0] != w[1]), "seeds must vary: {aucs:?}");
        // ATNN is the best cold model in every single draw.
        assert!(v.atnn_always_best_cold(), "{:?}", v.profile_only);
        // And its mean degradation magnitude is clearly the smallest.
        let atnn_idx = v.models.iter().position(|m| m == "ATNN").unwrap();
        for (i, m) in v.models.iter().enumerate() {
            if i != atnn_idx && m != "TNN-FC" {
                assert!(
                    v.degradation[atnn_idx].mean.abs() < v.degradation[i].mean.abs(),
                    "ATNN vs {m}: {:?} vs {:?}",
                    v.degradation[atnn_idx],
                    v.degradation[i]
                );
            }
        }
    }

    #[test]
    fn render_shows_plus_minus() {
        let v = run(Scale::Tiny, 1);
        let s = render(&v);
        assert!(s.contains("±"));
        assert!(s.contains("ATNN"));
    }
}
