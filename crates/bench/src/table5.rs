//! Table V — food-delivery online A/B test: realized VpPV and GMV of the
//! restaurants each arm recruits.
//!
//! Both arms pick recruits from the same pool of new sign-ups; the
//! realized 30-day VpPV / GMV of the selected restaurants (the simulator's
//! ground-truth labels, which neither arm observes at decision time) are
//! the evaluation metrics.

use atnn_core::{AtnnConfig, MultiTaskAtnn, MultiTaskTrainOptions};
use atnn_data::eleme::{ElemeDataset, ElemeExpertPolicy};

use crate::pipeline::eleme_setup;
use crate::Scale;

/// One arm's realized outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Mean realized VpPV of the recruited restaurants.
    pub vppv: f64,
    /// Mean realized GMV of the recruited restaurants.
    pub gmv: f64,
}

/// The A/B outcome.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Human-expert arm.
    pub experts: Arm,
    /// ATNN arm.
    pub atnn: Arm,
}

impl Table5 {
    /// Relative VpPV improvement of ATNN over the experts.
    pub fn vppv_improvement(&self) -> f64 {
        (self.atnn.vppv - self.experts.vppv) / self.experts.vppv
    }

    /// Relative GMV improvement of ATNN over the experts.
    pub fn gmv_improvement(&self) -> f64 {
        (self.atnn.gmv - self.experts.gmv) / self.experts.gmv
    }
}

fn realize(data: &ElemeDataset, selected: &[u32]) -> Arm {
    let n = selected.len().max(1) as f64;
    Arm {
        vppv: selected.iter().map(|&r| data.vppv(r) as f64).sum::<f64>() / n,
        gmv: selected.iter().map(|&r| data.gmv(r) as f64).sum::<f64>() / n,
    }
}

fn top_k_by(pool: &[u32], scores: &[f32], k: usize) -> Vec<u32> {
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN").then(a.cmp(&b)));
    order[..k].iter().map(|&i| pool[i]).collect()
}

/// Runs the A/B test at the given scale.
pub fn run(scale: Scale) -> Table5 {
    let (data, split) = eleme_setup(scale);
    let opts = MultiTaskTrainOptions {
        epochs: match scale {
            Scale::Tiny => 8,
            _ => 12,
        },
        ..Default::default()
    };
    let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
    model.train(&data, &split.train, &opts);

    // Both arms recruit the top 15% from the held-out pool of new
    // sign-ups.
    let pool = &split.test;
    let k = (pool.len() * 15 / 100).max(10).min(pool.len());

    // ATNN scores: combined standardized VpPV + GMV prediction (the
    // business balances both, which is why the model is multi-task).
    let (vppv_pred, gmv_pred) = model.predict_cold(&data, pool);
    let standardize = |v: &[f32]| -> Vec<f32> {
        let n = v.len() as f32;
        let mean = v.iter().sum::<f32>() / n;
        let std = (v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n).sqrt().max(1e-6);
        v.iter().map(|&x| (x - mean) / std).collect()
    };
    let zv = standardize(&vppv_pred);
    let zg = standardize(&gmv_pred);
    let atnn_scores: Vec<f32> = zv.iter().zip(&zg).map(|(&a, &b)| a + b).collect();

    let expert_scores = ElemeExpertPolicy::default().score(&data, pool);

    Table5 {
        experts: realize(&data, &top_k_by(pool, &expert_scores, k)),
        atnn: realize(&data, &top_k_by(pool, &atnn_scores, k)),
    }
}

/// Renders the paper's layout.
pub fn render(t: &Table5) -> String {
    crate::fmt::render_table(
        &["Source", "VpPV", "GMV"],
        &[
            vec![
                "Human Experts".into(),
                format!("{:.4}", t.experts.vppv),
                crate::fmt::f2(t.experts.gmv),
            ],
            vec!["ATNN".into(), format!("{:.4}", t.atnn.vppv), crate::fmt::f2(t.atnn.gmv)],
            vec![
                "Improvement".into(),
                crate::fmt::pct(t.vppv_improvement()),
                crate::fmt::pct(t.gmv_improvement()),
            ],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table-V claim: ATNN recruits restaurants with higher realized
    /// VpPV and GMV than the experts (paper: +8.1% / +14.7%).
    #[test]
    fn atnn_recruits_better_restaurants_at_tiny_scale() {
        let t = run(Scale::Tiny);
        assert!(
            t.atnn.gmv > t.experts.gmv,
            "GMV: ATNN {:.2} vs experts {:.2}",
            t.atnn.gmv,
            t.experts.gmv
        );
        assert!(
            t.atnn.vppv > t.experts.vppv * 0.95,
            "VpPV: ATNN {:.4} vs experts {:.4}",
            t.atnn.vppv,
            t.experts.vppv
        );
        assert!(t.gmv_improvement() > 0.0);
    }

    #[test]
    fn render_has_three_rows() {
        let t = Table5 {
            experts: Arm { vppv: 0.2656, gmv: 191.23 },
            atnn: Arm { vppv: 0.2872, gmv: 219.33 },
        };
        let s = render(&t);
        assert!(s.contains("Human Experts"));
        assert!(s.contains("+8.13%"), "{s}");
        assert!(s.contains("+14.69%"), "{s}");
    }
}
