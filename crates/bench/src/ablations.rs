//! Ablation studies over the design choices DESIGN.md calls out (A1-A5).

use atnn_core::{
    evaluate_auc_generated, pairwise_popularity, AdversarialMode, AtnnConfig,
    GroupedPopularityIndex, PopularityIndex,
};
use atnn_tensor::Rng64;

use crate::pipeline::{train_atnn, ColdStartSetup};
use crate::Scale;

/// A labelled cold-start AUC measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Variant label (e.g. `"lambda=0.1"`).
    pub label: String,
    /// Cold-start (generated-path) AUC on held-out items.
    pub value: f64,
}

fn cold_auc(setup: &ColdStartSetup, config: AtnnConfig, scale: Scale) -> f64 {
    let model = train_atnn(setup, config, scale);
    evaluate_auc_generated(&model, &setup.data, &setup.split.test).expect("AUC defined")
}

/// The scaled preset with one knob turned — every ablation arm is a
/// single-field builder tweak.
fn scaled_with(
    tweak: impl FnOnce(atnn_core::AtnnConfigBuilder) -> atnn_core::AtnnConfigBuilder,
) -> AtnnConfig {
    tweak(AtnnConfig::scaled().to_builder()).build().expect("valid config")
}

/// A1 — shared embeddings on/off.
pub fn shared_embeddings(scale: Scale) -> Vec<Measurement> {
    let setup = ColdStartSetup::generate(scale);
    [true, false]
        .into_iter()
        .map(|shared| Measurement {
            label: format!("shared_embeddings={shared}"),
            value: cold_auc(&setup, scaled_with(|b| b.shared_embeddings(shared)), scale),
        })
        .collect()
}

/// A2 — λ sweep for the similarity loss.
pub fn lambda_sweep(scale: Scale) -> Vec<Measurement> {
    let setup = ColdStartSetup::generate(scale);
    [0.0f32, 0.01, 0.1, 1.0, 10.0]
        .into_iter()
        .map(|lambda| Measurement {
            label: format!("lambda={lambda}"),
            value: cold_auc(&setup, scaled_with(|b| b.lambda(lambda)), scale),
        })
        .collect()
}

/// A3 — cross-network depth sweep (depth 0 = no crossing).
pub fn cross_depth(scale: Scale) -> Vec<Measurement> {
    let setup = ColdStartSetup::generate(scale);
    (0usize..=3)
        .map(|depth| Measurement {
            label: format!("cross_depth={depth}"),
            value: cold_auc(
                &setup,
                scaled_with(|b| b.cross_depth(depth).use_cross(depth > 0)),
                scale,
            ),
        })
        .collect()
}

/// A4 — adversarial mode comparison.
pub fn adversarial_mode(scale: Scale) -> Vec<Measurement> {
    let setup = ColdStartSetup::generate(scale);
    [
        ("similarity", AdversarialMode::Similarity),
        ("learned-discriminator", AdversarialMode::LearnedDiscriminator),
    ]
    .into_iter()
    .map(|(name, mode)| Measurement {
        label: format!("adv={name}"),
        value: cold_auc(&setup, scaled_with(|b| b.adversarial(mode)), scale),
    })
    .collect()
}

/// A5 — ranking fidelity of the O(1) mean-user-vector scorer against the
/// O(N_users) pairwise reference. Returns `(spearman, ndcg@10%)`.
pub fn mean_vector_fidelity(scale: Scale) -> (f64, f64) {
    let setup = ColdStartSetup::generate(scale);
    let model = train_atnn(&setup, AtnnConfig::scaled(), scale);
    let group: Vec<u32> = (0..(setup.data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &setup.data, &group);
    let fast = index.score_new_arrivals(&model, &setup.data, &setup.new_arrivals);
    let slow = pairwise_popularity(&model, &setup.data, &setup.new_arrivals, &group);
    let rho = atnn_metrics::spearman(&fast, &slow).expect("spearman defined");
    let gains: Vec<f64> = slow.iter().map(|&v| v as f64).collect();
    let k = (setup.new_arrivals.len() / 10).max(1);
    let ndcg = atnn_metrics::ndcg_at(&fast, &gains, k).expect("ndcg defined");
    (rho, ndcg)
}

/// A6 — preference-based user grouping (paper §VI future work): mean
/// absolute deviation of the O(k) grouped scorer from the O(N_users)
/// pairwise popularity, as the number of preference clusters grows.
pub fn user_grouping(scale: Scale) -> Vec<Measurement> {
    let setup = ColdStartSetup::generate(scale);
    let model = train_atnn(&setup, AtnnConfig::scaled(), scale);
    let group: Vec<u32> = (0..(setup.data.num_users() / 2) as u32).collect();
    let reference = pairwise_popularity(&model, &setup.data, &setup.new_arrivals, &group);
    let mut rng = Rng64::seed_from_u64(606);
    [1usize, 4, 16, 64]
        .into_iter()
        .map(|k| {
            let idx = GroupedPopularityIndex::build(&model, &setup.data, &group, k, &mut rng);
            let scores = idx.score_new_arrivals(&model, &setup.data, &setup.new_arrivals);
            let mad =
                scores.iter().zip(&reference).map(|(&a, &b)| (a - b).abs() as f64).sum::<f64>()
                    / reference.len() as f64;
            Measurement { label: format!("k={k} (MAD vs pairwise)"), value: mad }
        })
        .collect()
}

/// A7 — hashed ID embeddings (memorization vs generalization). The
/// paper's input sample includes raw `userID`/`itemID`; this ablation
/// measures what they buy: AUC on held-out *warm pairs* (unseen
/// interactions of seen items — where per-id memorization can help) vs
/// cold-start AUC on unseen items (where it cannot).
pub fn id_embeddings(scale: Scale) -> Vec<Measurement> {
    use atnn_core::{evaluate_auc_full, Atnn, CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallDataset;

    let mut out = Vec::with_capacity(4);
    for with_ids in [false, true] {
        let mut cfg = crate::pipeline::tmall_config(scale);
        cfg.include_ids = with_ids;
        let data = TmallDataset::generate(cfg);
        let n_items = data.num_items() as u32;
        let threshold = n_items - n_items / 5;
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = atnn_data::dataset::Split::by_group(&item_keys, |item| item >= threshold);
        // Carve a warm-pair validation slice out of the warm interactions.
        let holdout = split.train.len() / 10;
        let (warm_eval, train) = split.train.split_at(holdout);

        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder()
            .epochs(crate::pipeline::epochs(scale))
            .build()
            .expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, Some(train)).expect("training runs");

        let tag = if with_ids { "on" } else { "off" };
        out.push(Measurement {
            label: format!("ids={tag} warm-pairs"),
            value: evaluate_auc_full(&model, &data, warm_eval).expect("AUC defined"),
        });
        out.push(Measurement {
            label: format!("ids={tag} cold"),
            value: evaluate_auc_generated(&model, &data, &split.test).expect("AUC defined"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each ablation is exercised end to end at tiny scale; directional
    // claims that are robust even at tiny scale are asserted, the rest are
    // recorded by the repro binary.

    #[test]
    fn lambda_zero_is_worst_or_near_worst() {
        let m = lambda_sweep(Scale::Tiny);
        assert_eq!(m.len(), 5);
        let at_zero = m[0].value;
        let best = m.iter().skip(1).map(|x| x.value).fold(f64::MIN, f64::max);
        assert!(
            best >= at_zero - 0.01,
            "some positive lambda should match or beat lambda=0: {m:?}"
        );
    }

    #[test]
    fn cross_depth_zero_is_beaten_by_some_positive_depth() {
        let m = cross_depth(Scale::Tiny);
        assert_eq!(m.len(), 4);
        let at_zero = m[0].value;
        let best_crossed = m.iter().skip(1).map(|x| x.value).fold(f64::MIN, f64::max);
        assert!(best_crossed > at_zero - 0.01, "crossing should not hurt: {m:?}");
    }

    #[test]
    fn both_adversarial_modes_produce_sane_auc() {
        for m in adversarial_mode(Scale::Tiny) {
            assert!((0.5..1.0).contains(&m.value), "{m:?}");
        }
    }

    #[test]
    fn shared_embeddings_runs_both_variants() {
        let m = shared_embeddings(Scale::Tiny);
        assert_eq!(m.len(), 2);
        for x in &m {
            assert!(x.value > 0.5, "{x:?}");
        }
    }

    #[test]
    fn id_embeddings_run_and_cold_auc_is_unharmed() {
        let m = id_embeddings(Scale::Tiny);
        assert_eq!(m.len(), 4);
        let get = |label: &str| m.iter().find(|x| x.label == label).unwrap().value;
        // Cold-start scoring goes through the generator, which never sees
        // ids: enabling them must not collapse it.
        assert!((get("ids=on cold") - get("ids=off cold")).abs() < 0.08, "{m:?}");
        for x in &m {
            assert!(x.value > 0.5, "{x:?}");
        }
    }

    #[test]
    fn grouping_error_shrinks_with_k() {
        let m = user_grouping(Scale::Tiny);
        assert_eq!(m.len(), 4);
        assert!(m[3].value < m[0].value, "k=64 must track pairwise better than k=1: {m:?}");
    }

    #[test]
    fn mean_vector_is_faithful_to_pairwise() {
        let (rho, ndcg) = mean_vector_fidelity(Scale::Tiny);
        assert!(rho > 0.9, "spearman {rho}");
        assert!(ndcg > 0.9, "ndcg {ndcg}");
    }
}
