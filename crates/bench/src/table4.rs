//! Table IV — food-delivery offline experiment: MAE of VpPV and GMV
//! predictions for new restaurants, TNN-DCN vs multi-task ATNN.

use atnn_core::{evaluate_mae_cold, AtnnConfig, MultiTaskAtnn, MultiTaskTrainOptions};

use crate::pipeline::eleme_setup;
use crate::Scale;

/// The two-model comparison.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// TNN-DCN MAE `(vppv, gmv)` — encoder path with imputed statistics.
    pub tnn_dcn: (f64, f64),
    /// ATNN MAE `(vppv, gmv)` — generator path.
    pub atnn: (f64, f64),
}

impl Table4 {
    /// Relative VpPV improvement (positive = ATNN better).
    pub fn vppv_improvement(&self) -> f64 {
        (self.tnn_dcn.0 - self.atnn.0) / self.tnn_dcn.0
    }

    /// Relative GMV improvement (positive = ATNN better).
    pub fn gmv_improvement(&self) -> f64 {
        (self.tnn_dcn.1 - self.atnn.1) / self.tnn_dcn.1
    }
}

fn train_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 12,
        Scale::Paper => 12,
    }
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Table4 {
    let (data, split) = eleme_setup(scale);
    let opts = MultiTaskTrainOptions { epochs: train_epochs(scale), ..Default::default() };

    let mut atnn = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
    atnn.train(&data, &split.train, &opts);
    let atnn_mae = evaluate_mae_cold(&atnn, &data, &split.test);

    let mut tnn = MultiTaskAtnn::new(AtnnConfig::tnn_dcn(), &data, &split.train);
    tnn.train(&data, &split.train, &opts);
    let means = data.mean_restaurant_stats(&split.train);
    let (vppv_pred, gmv_pred) = tnn.predict_cold_imputed(&data, &split.test, &means);
    let vppv_true: Vec<f32> = split.test.iter().map(|&r| data.vppv(r)).collect();
    let gmv_true: Vec<f32> = split.test.iter().map(|&r| data.gmv(r)).collect();
    let tnn_mae = (
        atnn_metrics::mae(&vppv_pred, &vppv_true).expect("vppv mae"),
        atnn_metrics::mae(&gmv_pred, &gmv_true).expect("gmv mae"),
    );

    Table4 { tnn_dcn: tnn_mae, atnn: atnn_mae }
}

/// Renders the paper's layout.
pub fn render(t: &Table4) -> String {
    crate::fmt::render_table(
        &["Model", "VpPV (MAE)", "GMV (MAE)"],
        &[
            vec!["TNN-DCN".into(), format!("{:.4}", t.tnn_dcn.0), format!("{:.3}", t.tnn_dcn.1)],
            vec!["ATNN".into(), format!("{:.4}", t.atnn.0), format!("{:.3}", t.atnn.1)],
            vec![
                "Improvement".into(),
                crate::fmt::pct(t.vppv_improvement()),
                crate::fmt::pct(t.gmv_improvement()),
            ],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table-IV claim: the adversarial generator lowers both MAEs
    /// relative to TNN-DCN on cold restaurants.
    #[test]
    fn atnn_improves_both_maes_at_tiny_scale() {
        let t = run(Scale::Tiny);
        assert!(
            t.atnn.0 < t.tnn_dcn.0,
            "VpPV MAE: ATNN {:.4} vs TNN-DCN {:.4}",
            t.atnn.0,
            t.tnn_dcn.0
        );
        assert!(
            t.atnn.1 < t.tnn_dcn.1,
            "GMV MAE: ATNN {:.3} vs TNN-DCN {:.3}",
            t.atnn.1,
            t.tnn_dcn.1
        );
        assert!(t.vppv_improvement() > 0.0 && t.gmv_improvement() > 0.0);
    }

    #[test]
    fn render_has_improvement_row() {
        let t = Table4 { tnn_dcn: (0.077, 1.445), atnn: (0.069, 1.206) };
        let s = render(&t);
        assert!(s.contains("TNN-DCN") && s.contains("ATNN"));
        assert!(s.contains("+10.39%"), "{s}"); // the paper's 10.4%
        assert!(s.contains("+16.54%"), "{s}"); // the paper's 16.5%
    }
}
