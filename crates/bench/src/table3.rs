//! Table III — online A/B test: ATNN selection vs human experts.
//!
//! Both arms pick the most promising new arrivals from the same pool; the
//! market simulator realizes transactions; the paper's statistic is the
//! average time to the first five successful transactions (lower wins).

use atnn_core::{AtnnConfig, PopularityIndex};
use atnn_data::market::{run_arm, ArmResult, ExpertPolicy, MarketConfig};

use crate::pipeline::{train_atnn, ColdStartSetup};
use crate::Scale;

/// The A/B outcome.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Expert arm.
    pub expert: ArmResult,
    /// ATNN arm.
    pub atnn: ArmResult,
}

impl Table3 {
    /// Relative improvement of ATNN over the experts (positive = ATNN
    /// reaches five sales faster), matching the paper's third column.
    pub fn improvement(&self) -> f64 {
        (self.expert.avg_days_to_k_sales - self.atnn.avg_days_to_k_sales)
            / self.expert.avg_days_to_k_sales
    }
}

/// Runs the A/B test at the given scale.
pub fn run(scale: Scale) -> Table3 {
    run_seeded(scale, 0)
}

/// Runs the A/B test with the dataset draw and model initialization
/// re-seeded (`seed_offset = 0` reproduces [`run`]), mirroring
/// [`crate::table1::run_seeded`] for the seed-variance study.
pub fn run_seeded(scale: Scale, seed_offset: u64) -> Table3 {
    let setup = ColdStartSetup::generate_seeded(scale, seed_offset);
    let model = train_atnn(&setup, AtnnConfig::scaled().with_seed(1 + seed_offset), scale);
    let group: Vec<u32> = (0..(setup.data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &setup.data, &group);

    let pool = &setup.new_arrivals;
    let atnn_scores = index.score_new_arrivals(&model, &setup.data, pool);
    let expert_scores = ExpertPolicy::default().score(&setup.data, pool);

    // The paper selects 300k of tens of millions (~1-3%); at simulator
    // scale we select the top 10% so each arm has enough items for a
    // stable average.
    let top_k = (pool.len() / 10).max(10).min(pool.len());
    let market = MarketConfig::default();
    Table3 {
        expert: run_arm(&setup.data, pool, &expert_scores, top_k, 5, &market),
        atnn: run_arm(&setup.data, pool, &atnn_scores, top_k, 5, &market),
    }
}

/// Renders the paper's layout.
pub fn render(t: &Table3) -> String {
    crate::fmt::render_table(
        &["Arm", "Avg days to 5 sales", "Hit rate"],
        &[
            vec![
                "Expert selection".into(),
                format!("{:.2} days", t.expert.avg_days_to_k_sales),
                crate::fmt::f2(t.expert.hit_rate),
            ],
            vec![
                "ATNN selection".into(),
                format!("{:.2} days", t.atnn.avg_days_to_k_sales),
                crate::fmt::f2(t.atnn.hit_rate),
            ],
            vec!["Improvement".into(), crate::fmt::pct(t.improvement()), String::new()],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table-III claim: ATNN beats the experts on time-to-5-sales.
    /// (The paper reports +7.16%.) A single tiny-scale draw is too noisy
    /// for the margin (one pool of ~160 arrivals), so the claim is
    /// asserted on the mean improvement over four seeded replicates —
    /// still fully deterministic.
    #[test]
    fn atnn_beats_experts_at_tiny_scale() {
        let runs: Vec<Table3> = (0..4).map(|off| run_seeded(Scale::Tiny, off)).collect();
        let mean_improvement =
            runs.iter().map(Table3::improvement).sum::<f64>() / runs.len() as f64;
        assert!(
            mean_improvement > 0.0,
            "ATNN must beat experts on average: {mean_improvement:+.4} over {:?}",
            runs.iter().map(|t| t.improvement()).collect::<Vec<_>>()
        );
        let mean_hit =
            |arm: fn(&Table3) -> f64| runs.iter().map(arm).sum::<f64>() / runs.len() as f64;
        assert!(
            mean_hit(|t| t.atnn.hit_rate) >= mean_hit(|t| t.expert.hit_rate) * 0.9,
            "hit rates comparable or better"
        );
        for t in &runs {
            // Both arms selected the same number of items from the same pool.
            assert_eq!(t.atnn.selected.len(), t.expert.selected.len());
        }
    }

    #[test]
    fn render_mentions_both_arms() {
        let t = run(Scale::Tiny);
        let s = render(&t);
        assert!(s.contains("Expert selection") && s.contains("ATNN selection"));
        assert!(s.contains("Improvement"));
    }
}
