//! Runs the A1-A5 ablations of DESIGN.md.
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_ablations
//!         [--scale tiny|small|paper] [--ablation <name>]`
//! where `<name>` is one of `shared-embeddings`, `lambda`, `cross-depth`,
//! `adv-mode`, `mean-vector-fidelity`, `user-grouping`, `id-embeddings`,
//! or `all` (default).

use atnn_bench::{ablations, fmt, Scale};

fn print_measurements(title: &str, value_header: &str, ms: &[ablations::Measurement]) {
    println!("\n{title}");
    let rows: Vec<Vec<String>> =
        ms.iter().map(|m| vec![m.label.clone(), fmt::f4(m.value)]).collect();
    print!("{}", fmt::render_table(&["Variant", value_header], &rows));
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--ablation")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();

    eprintln!("running ablations ({which}) at {scale:?} scale...");
    if which == "all" || which == "shared-embeddings" {
        print_measurements(
            "A1 — shared embeddings",
            "Cold-start AUC",
            &ablations::shared_embeddings(scale),
        );
    }
    if which == "all" || which == "lambda" {
        print_measurements("A2 — lambda sweep", "Cold-start AUC", &ablations::lambda_sweep(scale));
    }
    if which == "all" || which == "cross-depth" {
        print_measurements("A3 — cross depth", "Cold-start AUC", &ablations::cross_depth(scale));
    }
    if which == "all" || which == "adv-mode" {
        print_measurements(
            "A4 — adversarial mode",
            "Cold-start AUC",
            &ablations::adversarial_mode(scale),
        );
    }
    if which == "all" || which == "mean-vector-fidelity" {
        let (rho, ndcg) = ablations::mean_vector_fidelity(scale);
        println!("\nA5 — mean-user-vector fidelity vs pairwise ranking");
        println!("  Spearman rho : {rho:.4}");
        println!("  NDCG@10%     : {ndcg:.4}");
    }
    if which == "all" || which == "user-grouping" {
        let ms = ablations::user_grouping(scale);
        println!("\nA6 — preference-based user grouping (paper §VI future work)");
        let rows: Vec<Vec<String>> =
            ms.iter().map(|m| vec![m.label.clone(), format!("{:.5}", m.value)]).collect();
        print!("{}", fmt::render_table(&["Variant", "Score deviation"], &rows));
    }
    if which == "all" || which == "id-embeddings" {
        print_measurements(
            "A7 — hashed userID/itemID embeddings (warm-pair memorization vs cold start)",
            "AUC",
            &ablations::id_embeddings(scale),
        );
    }
}
