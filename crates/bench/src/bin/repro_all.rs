//! Regenerates every paper table in sequence (the `EXPERIMENTS.md` run).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_all [--scale tiny|small|paper]`

use atnn_bench::{table1, table2, table3, table4, table5, Scale};

fn main() {
    let scale = Scale::from_args();
    let started = std::time::Instant::now();

    eprintln!("[1/5] Table I...");
    println!("Table I — item generation ability (scale: {scale:?})\n");
    print!("{}", table1::render(&table1::run(scale)));

    eprintln!("[2/5] Table II...");
    println!("\nTable II — commercial value validation (scale: {scale:?})\n");
    print!("{}", table2::render(&table2::run(scale)));

    eprintln!("[3/5] Table III...");
    println!("\nTable III — online A/B, time to 5 sales (scale: {scale:?})\n");
    print!("{}", table3::render(&table3::run(scale)));

    eprintln!("[4/5] Table IV...");
    println!("\nTable IV — food delivery offline MAE (scale: {scale:?})\n");
    print!("{}", table4::render(&table4::run(scale)));

    eprintln!("[5/5] Table V...");
    println!("\nTable V — food delivery online A/B (scale: {scale:?})\n");
    print!("{}", table5::render(&table5::run(scale)));

    println!("\ntotal wall time: {:.1}s", started.elapsed().as_secs_f64());
}
