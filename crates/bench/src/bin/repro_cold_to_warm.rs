//! Extension experiment: the cold-to-warm serving transition — when do
//! accumulated launch statistics let the encoder path overtake the
//! generator? (See `atnn_bench::cold_to_warm`.)
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_cold_to_warm
//!         [--scale tiny|small|paper]`

use atnn_bench::{cold_to_warm, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running the cold-to-warm transition at {scale:?} scale...");
    let t = cold_to_warm::run(scale);
    println!("Cold-to-warm transition (held-out new arrivals, scale {scale:?})\n");
    print!("{}", cold_to_warm::render(&t));
    match t.crossover_day() {
        Some(d) => println!("\nencoder path overtakes the generator after {d} day(s) of telemetry"),
        None => println!("\nthe generator stays ahead for the whole 30-day window"),
    }
}
