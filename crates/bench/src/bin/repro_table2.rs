//! Regenerates paper Table II (commercial-value validation: quintile lift
//! over IPV / AtF / GMV at 7/14/30 days).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_table2 [--scale tiny|small|paper]`

use atnn_bench::{table2, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Table II at {scale:?} scale...");
    let t = table2::run(scale);
    println!("Table II — Offline commercial value validation of new-arrival popularity prediction");
    println!("(scale: {scale:?})\n");
    print!("{}", table2::render(&t));
}
