//! Load generator for the atnn-serve inference service.
//!
//! Trains one model, then runs closed-loop mixed traffic (forced-cold,
//! forced-warm, policy-routed, top-k) against a fresh in-process server at
//! several offered-load levels, and dumps per-endpoint latency quantiles
//! plus shed rates to `BENCH_serve.json`. The final level deliberately
//! shrinks the batcher queue to drive the server into overload so the shed
//! path shows up in the record, not just in unit tests.
//!
//! Run with: `cargo run --release -p atnn-bench --bin serve_loadgen
//! [-- --scale tiny|small|paper] [--duration-ms N] [--out PATH]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atnn_bench::Scale;
use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::protocol::StatsReport;
use atnn_serve::{serve, ModelManager, ModelSnapshot, Response, ServeClient, ServeConfig};

/// One offered-load level.
struct Level {
    name: &'static str,
    clients: usize,
    /// Items per scoring request.
    request_items: usize,
    /// Batcher queue bound for this level (small = forced overload).
    queue_capacity: usize,
}

/// What one level measured.
struct LevelResult {
    level: Level,
    elapsed: Duration,
    requests_sent: u64,
    client_sheds: u64,
    stats: StatsReport,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let duration = Duration::from_millis(
        flag_value(&args, "--duration-ms").and_then(|v| v.parse().ok()).unwrap_or(2_000),
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let data_cfg = match scale {
        Scale::Tiny => TmallConfig::tiny(),
        Scale::Small => TmallConfig::small(),
        Scale::Paper => TmallConfig::paper_scale(),
    };
    eprintln!("training model ({scale:?} scale)...");
    let data = TmallDataset::generate(data_cfg);
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    let users: Vec<u32> = (0..data.num_users() as u32).collect();
    let index = PopularityIndex::build(&model, &data, &users);
    let num_items = data.num_items();
    let manager = Arc::new(ModelManager::new(ModelSnapshot { version: 1, data, model, index }));

    // Requests carry enough items that the forward pass, not the TCP
    // round-trip, dominates the measured latency — that is what makes the
    // cold path's cheapness visible in the quantiles.
    let levels = [
        Level { name: "light", clients: 2, request_items: 256, queue_capacity: 4096 },
        Level { name: "heavy", clients: 8, request_items: 256, queue_capacity: 4096 },
        // Queue bound below the offered in-flight item count: the batcher
        // must shed, and the shed rate must show up in the stats.
        Level { name: "overload", clients: 8, request_items: 256, queue_capacity: 384 },
    ];

    let mut results = Vec::new();
    for level in levels {
        eprintln!(
            "level {}: {} clients x {} items, queue {}...",
            level.name, level.clients, level.request_items, level.queue_capacity
        );
        results.push(run_level(level, &manager, num_items, duration));
    }

    let json = render_json(scale, &results);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");

    // The paper's reason for the O(1) cold path is that it is cheap; the
    // served latencies have to agree. Checked at the light level, where a
    // request's latency is its own forward pass rather than queue wait.
    let light = &results[0].stats;
    let cold_p50 = light.endpoint("score_new_arrival").map(|e| e.p50_ns).unwrap_or(0);
    let warm_p50 = light.endpoint("score_warm_item").map(|e| e.p50_ns).unwrap_or(0);
    eprintln!("light-level p50: cold {}us vs warm {}us", cold_p50 / 1_000, warm_p50 / 1_000);
    assert!(
        cold_p50 < warm_p50,
        "cold-path p50 ({cold_p50}ns) must undercut warm-path p50 ({warm_p50}ns)"
    );
    let overload = &results[2];
    assert!(
        overload.client_sheds > 0,
        "the overload level must actually shed (queue bound too generous?)"
    );
}

/// Runs one closed-loop level against a fresh server (fresh telemetry and
/// router; the trained model is shared through the manager).
fn run_level(
    level: Level,
    manager: &Arc<ModelManager>,
    num_items: usize,
    duration: Duration,
) -> LevelResult {
    let cfg = ServeConfig { queue_capacity: level.queue_capacity, ..ServeConfig::default() };
    let warm_threshold = cfg.warm_threshold;
    let mut handle = serve(cfg, Arc::clone(manager)).expect("bind ephemeral port");
    let addr = handle.local_addr();

    // Warm the first half of the catalogue so routed traffic is mixed.
    let warm_pool: Vec<u32> = (0..(num_items / 2) as u32).collect();
    let mut setup = ServeClient::connect(addr).expect("setup connect");
    for chunk in warm_pool.chunks(512) {
        for _ in 0..warm_threshold {
            setup.record_interactions(chunk).expect("warm catalogue");
        }
    }

    let requests_sent = AtomicU64::new(0);
    let client_sheds = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..level.clients {
            let (requests_sent, client_sheds) = (&requests_sent, &client_sheds);
            let n = level.request_items;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connect");
                // Per-worker deterministic item cursor; cold ids come from
                // the unwarmed upper half, warm ids from the lower half.
                let mut cursor = worker as u32 * 7919;
                let half = (num_items / 2) as u32;
                let phase_len = duration / 3;
                let send = |response: Result<Response, _>| {
                    requests_sent.fetch_add(1, Ordering::Relaxed);
                    match response.expect("request failed") {
                        Response::Overloaded => {
                            client_sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Error(msg) => panic!("server error: {msg}"),
                        _ => {}
                    }
                };
                // Three homogeneous phases — cold-only, warm-only, then
                // routed mixed traffic. Homogeneous phases keep each
                // endpoint's queue wait proportional to its own path's
                // service time, so the cold/warm latency gap survives
                // into the per-endpoint quantiles.
                while started.elapsed() < phase_len {
                    let cold: Vec<u32> =
                        (0..n as u32).map(|i| half + (cursor + i) % half).collect();
                    cursor = cursor.wrapping_add(n as u32);
                    send(client.score_new_arrival(&cold));
                }
                while started.elapsed() < 2 * phase_len {
                    let warm: Vec<u32> = (0..n as u32).map(|i| (cursor + i) % half).collect();
                    cursor = cursor.wrapping_add(n as u32);
                    send(client.score_warm_item(&warm));
                }
                while started.elapsed() < duration {
                    let mixed: Vec<u32> =
                        (0..n as u32).map(|i| (cursor + i) % (2 * half)).collect();
                    cursor = cursor.wrapping_add(n as u32);
                    send(client.score(&mixed));
                    send(client.topk(&mixed, 8));
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let stats = setup.stats().expect("final stats");
    handle.shutdown();
    LevelResult {
        level,
        elapsed,
        requests_sent: requests_sent.load(Ordering::Relaxed),
        client_sheds: client_sheds.load(Ordering::Relaxed),
        stats,
    }
}

fn render_json(scale: Scale, results: &[LevelResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"levels\": [\n");
    for (li, r) in results.iter().enumerate() {
        let secs = r.elapsed.as_secs_f64();
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.level.name));
        out.push_str(&format!("      \"clients\": {},\n", r.level.clients));
        out.push_str(&format!("      \"request_items\": {},\n", r.level.request_items));
        out.push_str(&format!("      \"queue_capacity\": {},\n", r.level.queue_capacity));
        out.push_str(&format!("      \"duration_secs\": {secs:.3},\n"));
        out.push_str(&format!("      \"requests_sent\": {},\n", r.requests_sent));
        out.push_str(&format!("      \"throughput_rps\": {:.1},\n", r.requests_sent as f64 / secs));
        out.push_str(&format!(
            "      \"shed_rate\": {:.4},\n",
            r.client_sheds as f64 / (r.requests_sent as f64).max(1.0)
        ));
        out.push_str(&format!(
            "      \"batches\": {}, \"batched_items\": {}, \"mean_batch_size\": {:.2},\n",
            r.stats.batches,
            r.stats.batched_items,
            r.stats.mean_batch_size()
        ));
        out.push_str("      \"endpoints\": [\n");
        let scoring: Vec<_> = r
            .stats
            .endpoints
            .iter()
            .filter(|e| e.requests > 0 && e.name != "record_interactions" && e.name != "stats")
            .collect();
        for (ei, e) in scoring.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"requests\": {}, \"errors\": {}, \"shed\": {}, \
                 \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
                e.name,
                e.requests,
                e.errors,
                e.shed,
                e.p50_ns as f64 / 1_000.0,
                e.p95_ns as f64 / 1_000.0,
                e.p99_ns as f64 / 1_000.0,
                if ei + 1 < scoring.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if li + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}
