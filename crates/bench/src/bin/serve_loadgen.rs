//! Load generator for the atnn-serve inference service.
//!
//! Trains one model, then runs closed-loop mixed traffic (forced-cold,
//! forced-warm, policy-routed, top-k, catalogue-wide ANN top-k) against a
//! fresh in-process server at
//! several offered-load levels, and dumps per-endpoint latency quantiles
//! plus shed rates to `BENCH_serve.json`. Each level fixes a point on the
//! `connections` axis: the small levels mirror the pre-event-loop
//! baseline (a handful of fat requests), the `fleet`/`swarm` levels drive
//! hundreds to thousands of concurrent sockets with small requests — the
//! shape the epoll front end exists for. The generator itself is
//! nonblocking: one epoll loop multiplexes every connection of a level,
//! each connection keeping exactly one request in flight (closed loop).
//! The final level deliberately shrinks the batcher queue to drive the
//! server into overload so the shed path shows up in the record.
//!
//! Run with: `cargo run --release -p atnn-bench --bin serve_loadgen
//! [-- --scale tiny|small|paper] [--duration-ms N] [--out PATH]
//! [--topk-frac F] [--publish-every SECS]`
//!
//! `--topk-frac` (default 0.2) is the fraction of mixed-phase requests
//! that become catalogue-wide `TopKAll` retrievals through the server's
//! ANN index instead of candidate-list scoring.
//!
//! `--publish-every` (default 0.5, ≤ 0 disables) drives the `publish`
//! level: fleet-shaped traffic while a publisher thread fires a 1%-delta
//! republish through `ModelManager::publish_delta` on that cadence. The
//! level's record splits client-observed p99 into requests whose
//! lifetime overlapped a publish vs steady-state requests — the
//! serve-while-publishing tail.
//!
//! `--smoke` runs only the 512-connection fleet level for a short burst
//! and exits non-zero unless throughput clears twice the pre-event-loop
//! baseline — the CI regression gate.

use std::io::Write;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atnn_bench::Scale;
use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::nio::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use atnn_serve::protocol::{FrameRead, FrameReader, StatsReport};
use atnn_serve::{serve, ModelManager, ModelSnapshot, Request, Response, ServeClient, ServeConfig};

/// Light-level throughput of the blocking thread-per-connection server
/// this event-driven plane replaced (PR 5's `BENCH_serve.json`). The
/// smoke gate and the EXPERIMENTS.md table are both anchored to it.
const BASELINE_LIGHT_RPS: f64 = 1473.3;

/// One offered-load level.
struct Level {
    name: &'static str,
    /// Concurrent client connections, each with one request in flight.
    connections: usize,
    /// Items per scoring request.
    request_items: usize,
    /// Batcher queue bound per shard (small = forced overload).
    queue_capacity: usize,
    /// Item-catalogue shards behind the front end.
    shards: usize,
    /// Server-side epoll event-loop threads.
    event_threads: usize,
}

/// Publish-overlap latency split measured by the `publish` level.
struct PublishStats {
    /// Delta publishes fired during the level.
    publishes: u64,
    /// Requests whose lifetime overlapped a publish, and their p99.
    during_n: usize,
    during_p99_us: f64,
    /// Steady-state requests (no overlapping publish), and their p99.
    steady_n: usize,
    steady_p99_us: f64,
}

/// What one level measured.
struct LevelResult {
    level: Level,
    elapsed: Duration,
    requests_sent: u64,
    client_sheds: u64,
    stats: StatsReport,
    /// Present only on the `publish` level.
    publish: Option<PublishStats>,
}

impl LevelResult {
    fn throughput_rps(&self) -> f64 {
        self.requests_sent as f64 / self.elapsed.as_secs_f64()
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let duration = Duration::from_millis(
        flag_value(&args, "--duration-ms").and_then(|v| v.parse().ok()).unwrap_or(if smoke {
            1_500
        } else {
            2_000
        }),
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let topk_frac: f64 =
        flag_value(&args, "--topk-frac").and_then(|v| v.parse().ok()).unwrap_or(0.2);
    assert!((0.0..=1.0).contains(&topk_frac), "--topk-frac must be in [0, 1]");
    let publish_every: f64 =
        flag_value(&args, "--publish-every").and_then(|v| v.parse().ok()).unwrap_or(0.5);

    let data_cfg = match scale {
        Scale::Tiny => TmallConfig::tiny(),
        Scale::Small => TmallConfig::small(),
        Scale::Paper => TmallConfig::paper_scale(),
    };
    eprintln!("training model ({scale:?} scale)...");
    let data = TmallDataset::generate(data_cfg);
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    let users: Vec<u32> = (0..data.num_users() as u32).collect();
    let index = PopularityIndex::build(&model, &data, &users);
    let num_items = data.num_items();
    let manager = Arc::new(ModelManager::new(ModelSnapshot::new(1, data, model, index)));

    let fleet = || Level {
        name: "fleet",
        connections: 512,
        request_items: 8,
        queue_capacity: 8192,
        shards: 2,
        event_threads: 2,
    };

    if smoke {
        let result = run_level(fleet(), &manager, num_items, duration, topk_frac, None);
        let rps = result.throughput_rps();
        let floor = 2.0 * BASELINE_LIGHT_RPS;
        eprintln!(
            "smoke: fleet level {rps:.1} req/s over {} connections (floor {floor:.1})",
            result.level.connections
        );
        assert!(
            rps >= floor,
            "fleet throughput {rps:.1} req/s under the 2x baseline floor {floor:.1}"
        );
        return;
    }

    // The small levels carry enough items per request that the forward
    // pass, not the TCP round-trip, dominates the measured latency — that
    // is what makes the cold path's cheapness visible in the quantiles.
    // The fleet/swarm levels invert the shape: many sockets, small
    // requests, throughput bounded by the I/O plane.
    let levels = [
        Level {
            name: "light",
            connections: 2,
            request_items: 256,
            queue_capacity: 4096,
            shards: 1,
            event_threads: 1,
        },
        // Fat requests stay unsharded: splitting a 256-item batch across
        // shard threads halves the GEMM batch size and adds context
        // switches, a net loss on a single core (see EXPERIMENTS.md).
        Level {
            name: "heavy",
            connections: 8,
            request_items: 256,
            queue_capacity: 4096,
            shards: 1,
            event_threads: 1,
        },
        fleet(),
        Level {
            name: "swarm",
            connections: 2048,
            request_items: 4,
            queue_capacity: 8192,
            shards: 2,
            event_threads: 2,
        },
        // Queue bound below the offered in-flight item count: the batcher
        // must shed, and the shed rate must show up in the stats.
        Level {
            name: "overload",
            connections: 8,
            request_items: 256,
            queue_capacity: 384,
            shards: 1,
            event_threads: 1,
        },
    ];

    let mut results = Vec::new();
    for level in levels {
        eprintln!(
            "level {}: {} connections x {} items, queue {}, {} shards, {} event threads...",
            level.name,
            level.connections,
            level.request_items,
            level.queue_capacity,
            level.shards,
            level.event_threads
        );
        results.push(run_level(level, &manager, num_items, duration, topk_frac, None));
    }

    // Fleet-shaped traffic with delta publishes firing on a cadence: the
    // serve-while-publishing level. Uses the same connection shape as
    // `fleet` so its steady-state quantiles are directly comparable.
    if publish_every > 0.0 {
        let interval = Duration::from_secs_f64(publish_every);
        eprintln!(
            "level publish: fleet shape, delta republish every {:.0}ms...",
            interval.as_secs_f64() * 1_000.0
        );
        let mut level = fleet();
        level.name = "publish";
        results.push(run_level(level, &manager, num_items, duration, topk_frac, Some(interval)));
        let p = results.last().unwrap().publish.as_ref().expect("publish level measures the split");
        eprintln!(
            "publish level: {} publishes; p99 during {:.1}us ({} reqs) vs steady {:.1}us ({} reqs)",
            p.publishes, p.during_p99_us, p.during_n, p.steady_p99_us, p.steady_n
        );
        assert!(p.publishes > 0, "the publish level must actually publish");
        assert!(
            p.during_n > 0 && p.steady_n > 0,
            "both latency populations must be sampled (during {} / steady {})",
            p.during_n,
            p.steady_n
        );
    }

    let json = render_json(scale, &results);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");

    // Both serving paths now read embeddings precomputed at publish (the
    // full-tower cost moved to snapshot build), so warm requests must
    // serve at lookup-plus-dot cost — within 2x of the cold path at the
    // light level, where latency is service time rather than queue wait.
    // Before the cache, warm p50 ran ~10x cold; this gate pins the
    // collapse.
    let light = &results[0].stats;
    let cold_p50 = light.endpoint("score_new_arrival").map(|e| e.p50_ns).unwrap_or(0);
    let warm_p50 = light.endpoint("score_warm_item").map(|e| e.p50_ns).unwrap_or(0);
    eprintln!("light-level p50: cold {}us vs warm {}us", cold_p50 / 1_000, warm_p50 / 1_000);
    assert!(cold_p50 > 0 && warm_p50 > 0, "light-level latency histograms must populate");
    assert!(
        warm_p50 <= 2 * cold_p50,
        "warm-path p50 ({warm_p50}ns) must stay within 2x of cold p50 ({cold_p50}ns): \
         the precomputed-embedding cache is not being served"
    );
    let overload = results.iter().find(|r| r.level.name == "overload").expect("overload level ran");
    assert!(
        overload.client_sheds > 0,
        "the overload level must actually shed (queue bound too generous?)"
    );
}

/// 0.99 quantile of an unsorted sample, in microseconds.
fn p99_us(lat_us: &mut [u64]) -> f64 {
    if lat_us.is_empty() {
        return 0.0;
    }
    lat_us.sort_unstable();
    lat_us[((lat_us.len() - 1) as f64 * 0.99).round() as usize] as f64
}

/// Republishes the *current* model as a 1%-strided delta every `interval`
/// until `stop`; returns the publish count. Re-embedding the same model
/// leaves every row bit-identical (so in-flight scores never flake), but
/// the full delta pipeline — batched re-embed, COW chunk clones, IVF
/// re-assign scan, row re-quantization — still runs at its real cost.
/// `epoch` is bumped to odd on entry to each publish and back to even on
/// exit, so clients can tell whether a request's lifetime overlapped one.
fn publisher_loop(
    manager: Arc<ModelManager>,
    interval: Duration,
    epoch: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> u64 {
    let num_items = manager.load().num_items();
    let count = (num_items / 100).max(1);
    let step = (num_items / count).max(1);
    let changed: Vec<u32> = (0..num_items as u32).step_by(step).take(count).collect();
    let mut publishes = 0;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        if stop.load(Ordering::Acquire) {
            break;
        }
        let prev = manager.load();
        epoch.fetch_add(1, Ordering::AcqRel);
        manager
            .publish_delta(prev.version + 1, Arc::clone(&prev.model), prev.index.clone(), &changed)
            .expect("mid-load delta publish");
        epoch.fetch_add(1, Ordering::AcqRel);
        publishes += 1;
    }
    publishes
}

/// Runs one closed-loop level against a fresh server (fresh telemetry and
/// router; the trained model is shared through the manager). With
/// `publish_every` set, a publisher thread fires delta republishes on that
/// cadence and the result carries the during-vs-steady p99 split.
fn run_level(
    level: Level,
    manager: &Arc<ModelManager>,
    num_items: usize,
    duration: Duration,
    topk_frac: f64,
    publish_every: Option<Duration>,
) -> LevelResult {
    let cfg = ServeConfig {
        queue_capacity: level.queue_capacity,
        shards: level.shards,
        event_threads: level.event_threads,
        ..ServeConfig::default()
    };
    let warm_threshold = cfg.warm_threshold;
    let mut handle = serve(cfg, Arc::clone(manager)).expect("bind ephemeral port");
    let addr = handle.local_addr();

    // Warm the first half of the catalogue so routed traffic is mixed.
    let warm_pool: Vec<u32> = (0..(num_items / 2) as u32).collect();
    let mut setup = ServeClient::connect(addr).expect("setup connect");
    for chunk in warm_pool.chunks(512) {
        for _ in 0..warm_threshold {
            setup.record_interactions(chunk).expect("warm catalogue");
        }
    }

    let epoch = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = publish_every.map(|interval| {
        let (manager, epoch, stop) = (Arc::clone(manager), Arc::clone(&epoch), Arc::clone(&stop));
        std::thread::spawn(move || publisher_loop(manager, interval, epoch, stop))
    });

    let mut gen = LoadGen::connect(addr, &level, num_items, topk_frac, Arc::clone(&epoch));
    let started = Instant::now();
    gen.run(started, duration);
    let elapsed = started.elapsed();

    stop.store(true, Ordering::Release);
    let publish = publisher.map(|handle| {
        let publishes = handle.join().expect("publisher thread");
        PublishStats {
            publishes,
            during_n: gen.during_us.len(),
            during_p99_us: p99_us(&mut gen.during_us),
            steady_n: gen.steady_us.len(),
            steady_p99_us: p99_us(&mut gen.steady_us),
        }
    });

    let stats = setup.stats().expect("final stats");
    handle.shutdown();
    LevelResult {
        level,
        elapsed,
        requests_sent: gen.requests_sent,
        client_sheds: gen.client_sheds,
        stats,
        publish,
    }
}

/// Traffic phases, switched on wall clock thirds. Homogeneous phases keep
/// each endpoint's queue wait proportional to its own path's service
/// time, so the cold/warm latency gap survives into the quantiles.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Cold,
    Warm,
    Mixed,
}

/// One nonblocking closed-loop connection: encodes its next request into
/// `out`, drains replies through a [`FrameReader`].
struct LoadConn {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    sent: usize,
    mask: u32,
    cursor: u32,
    /// Flips between `score` and `topk` in the mixed phase.
    flip: bool,
    /// Mixed-phase request counter; drives the deterministic `TopKAll`
    /// interleave.
    mix_seq: u32,
    inflight: bool,
    /// When the in-flight request was queued.
    sent_at: Instant,
    /// Publish-epoch snapshot taken at launch; compared against the live
    /// epoch at reply time to classify the request's latency sample.
    launch_epoch: u64,
}

impl LoadConn {
    /// Encodes `req` as a length-prefixed frame into the out buffer.
    fn queue(&mut self, req: &Request) {
        debug_assert!(self.out.is_empty() && !self.inflight);
        let payload = req.encode();
        self.out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&payload);
        self.inflight = true;
    }

    /// Writes until the buffer empties or the socket blocks; returns
    /// whether bytes are still pending.
    fn pump_write(&mut self) -> bool {
        while self.sent < self.out.len() {
            match self.stream.write(&self.out[self.sent..]) {
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) => panic!("loadgen write: {e}"),
            }
        }
        self.out.clear();
        self.sent = 0;
        false
    }
}

/// The nonblocking fan-out driver for one level: every connection on one
/// epoll, each closed-loop (exactly one request in flight).
struct LoadGen {
    epoll: Epoll,
    conns: Vec<LoadConn>,
    request_items: usize,
    /// Catalogue midpoint: ids below are warmed, ids at or above are cold.
    half: u32,
    /// Mixed-phase requests per hundred that become `TopKAll` retrievals.
    topk_all_percent: u32,
    requests_sent: u64,
    client_sheds: u64,
    /// Publish epoch shared with the publisher thread (odd while a
    /// publish is in progress; always 0 when no publisher runs).
    epoch: Arc<AtomicU64>,
    /// Client-observed latencies, split by publish overlap.
    during_us: Vec<u64>,
    steady_us: Vec<u64>,
}

impl LoadGen {
    fn connect(
        addr: std::net::SocketAddr,
        level: &Level,
        num_items: usize,
        topk_frac: f64,
        epoch: Arc<AtomicU64>,
    ) -> Self {
        let epoll = Epoll::new().expect("epoll_create1");
        let mut conns = Vec::with_capacity(level.connections);
        for i in 0..level.connections {
            let stream = TcpStream::connect(addr).expect("loadgen connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            epoll.add(stream.as_raw_fd(), EPOLLIN, i as u64).expect("epoll add");
            conns.push(LoadConn {
                stream,
                reader: FrameReader::new(),
                out: Vec::new(),
                sent: 0,
                mask: EPOLLIN,
                // Spread the deterministic item cursors across workers.
                cursor: i as u32 * 7919,
                flip: i % 2 == 0,
                // Stagger so the TopKAll interleave spreads across conns.
                mix_seq: i as u32 * 37,
                inflight: false,
                sent_at: Instant::now(),
                launch_epoch: 0,
            });
        }
        LoadGen {
            epoll,
            conns,
            request_items: level.request_items,
            half: (num_items / 2) as u32,
            topk_all_percent: (topk_frac * 100.0).round() as u32,
            requests_sent: 0,
            client_sheds: 0,
            epoch,
            during_us: Vec::new(),
            steady_us: Vec::new(),
        }
    }

    fn next_request(&mut self, idx: usize, phase: Phase) -> Request {
        let n = self.request_items as u32;
        let half = self.half;
        let conn = &mut self.conns[idx];
        let cursor = conn.cursor;
        conn.cursor = cursor.wrapping_add(n);
        match phase {
            // Cold ids come from the unwarmed upper half of the catalogue.
            Phase::Cold => Request::ScoreNewArrival {
                items: (0..n).map(|i| half + (cursor + i) % half).collect(),
            },
            Phase::Warm => {
                Request::ScoreWarmItem { items: (0..n).map(|i| (cursor + i) % half).collect() }
            }
            Phase::Mixed => {
                let seq = conn.mix_seq;
                conn.mix_seq = seq.wrapping_add(1);
                // Every topk_all_percent-th slot of 100 retrieves over the
                // whole catalogue through the ANN index; the rest score or
                // rank an explicit candidate list.
                if seq.wrapping_mul(2654435761) % 100 < self.topk_all_percent {
                    return Request::TopKAll { k: 8 };
                }
                let items: Vec<u32> = (0..n).map(|i| (cursor + i) % (2 * half)).collect();
                conn.flip = !conn.flip;
                if conn.flip {
                    Request::Score { items }
                } else {
                    Request::TopK { items, k: 8 }
                }
            }
        }
    }

    /// Queues a fresh request on `idx` and starts writing it out.
    fn launch(&mut self, idx: usize, phase: Phase) {
        let req = self.next_request(idx, phase);
        let launch_epoch = self.epoch.load(Ordering::Acquire);
        let conn = &mut self.conns[idx];
        conn.queue(&req);
        conn.sent_at = Instant::now();
        conn.launch_epoch = launch_epoch;
        self.requests_sent += 1;
        let blocked = conn.pump_write();
        self.reconcile_mask(idx, blocked);
    }

    /// Keeps each connection's epoll interest at `EPOLLIN` plus
    /// `EPOLLOUT` only while a partial write is pending.
    fn reconcile_mask(&mut self, idx: usize, write_blocked: bool) {
        let conn = &mut self.conns[idx];
        let want = if write_blocked { EPOLLIN | EPOLLOUT } else { EPOLLIN };
        if conn.mask != want {
            conn.mask = want;
            self.epoll.modify(conn.stream.as_raw_fd(), want, idx as u64).expect("epoll modify");
        }
    }

    fn run(&mut self, started: Instant, duration: Duration) {
        let phase_len = duration / 3;
        let phase_of = |elapsed: Duration| {
            if elapsed < phase_len {
                Phase::Cold
            } else if elapsed < 2 * phase_len {
                Phase::Warm
            } else {
                Phase::Mixed
            }
        };

        for idx in 0..self.conns.len() {
            self.launch(idx, Phase::Cold);
        }
        let mut inflight = self.conns.len();

        let mut events = vec![EpollEvent::zeroed(); 512];
        while inflight > 0 {
            let n = self.epoll.wait(&mut events, 50).expect("epoll wait");
            for ev in &events[..n] {
                // Copy out of the (packed on x86-64) record before use.
                let (bits, token) = (ev.events, ev.data);
                let idx = token as usize;
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    panic!("loadgen connection {idx} failed mid-run");
                }
                if bits & EPOLLOUT != 0 {
                    let blocked = self.conns[idx].pump_write();
                    self.reconcile_mask(idx, blocked);
                }
                if bits & EPOLLIN != 0 {
                    inflight -= self.drain_replies(idx);
                    let elapsed = started.elapsed();
                    if !self.conns[idx].inflight && elapsed < duration {
                        self.launch(idx, phase_of(elapsed));
                        inflight += 1;
                    }
                }
            }
        }
    }

    /// Reads every complete reply buffered on `idx`; returns how many
    /// in-flight requests it retired (0 or 1 in closed-loop operation).
    fn drain_replies(&mut self, idx: usize) -> usize {
        let mut retired = 0;
        loop {
            let conn = &mut self.conns[idx];
            match conn.reader.read_frame(&mut conn.stream) {
                Ok(FrameRead::Frame(payload)) => {
                    let latency_us = conn.sent_at.elapsed().as_micros() as u64;
                    match Response::decode(payload).expect("decode response") {
                        Response::Overloaded => self.client_sheds += 1,
                        Response::Error(msg) => panic!("server error: {msg}"),
                        _ => {}
                    }
                    // Overlapped a publish iff the epoch moved since launch
                    // or is currently odd (a publish is mid-flight now).
                    let now = self.epoch.load(Ordering::Acquire);
                    if now != conn.launch_epoch || now % 2 == 1 {
                        self.during_us.push(latency_us);
                    } else {
                        self.steady_us.push(latency_us);
                    }
                    conn.inflight = false;
                    retired += 1;
                }
                Ok(FrameRead::Idle) => return retired,
                Ok(FrameRead::Eof) => panic!("server closed connection {idx} mid-run"),
                Err(e) => panic!("loadgen read: {e}"),
            }
        }
    }
}

fn render_json(scale: Scale, results: &[LevelResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!("  \"baseline_light_rps\": {BASELINE_LIGHT_RPS:.1},\n"));
    out.push_str("  \"levels\": [\n");
    for (li, r) in results.iter().enumerate() {
        let secs = r.elapsed.as_secs_f64();
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.level.name));
        out.push_str(&format!("      \"connections\": {},\n", r.level.connections));
        out.push_str(&format!("      \"request_items\": {},\n", r.level.request_items));
        out.push_str(&format!("      \"queue_capacity\": {},\n", r.level.queue_capacity));
        out.push_str(&format!("      \"shards\": {},\n", r.level.shards));
        out.push_str(&format!("      \"event_threads\": {},\n", r.level.event_threads));
        out.push_str(&format!("      \"duration_secs\": {secs:.3},\n"));
        out.push_str(&format!("      \"requests_sent\": {},\n", r.requests_sent));
        out.push_str(&format!("      \"throughput_rps\": {:.1},\n", r.throughput_rps()));
        out.push_str(&format!(
            "      \"shed_rate\": {:.4},\n",
            r.client_sheds as f64 / (r.requests_sent as f64).max(1.0)
        ));
        out.push_str(&format!(
            "      \"batches\": {}, \"batched_items\": {}, \"mean_batch_size\": {:.2},\n",
            r.stats.batches,
            r.stats.batched_items,
            r.stats.mean_batch_size()
        ));
        if let Some(p) = &r.publish {
            out.push_str(&format!(
                "      \"publish\": {{\"publishes\": {}, \"during_requests\": {}, \
                 \"during_p99_us\": {:.1}, \"steady_requests\": {}, \"steady_p99_us\": {:.1}}},\n",
                p.publishes, p.during_n, p.during_p99_us, p.steady_n, p.steady_p99_us
            ));
        }
        out.push_str("      \"endpoints\": [\n");
        let scoring: Vec<_> = r
            .stats
            .endpoints
            .iter()
            .filter(|e| e.requests > 0 && e.name != "record_interactions" && e.name != "stats")
            .collect();
        for (ei, e) in scoring.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"requests\": {}, \"errors\": {}, \"shed\": {}, \
                 \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
                e.name,
                e.requests,
                e.errors,
                e.shed,
                e.p50_ns as f64 / 1_000.0,
                e.p95_ns as f64 / 1_000.0,
                e.p99_ns as f64 / 1_000.0,
                if ei + 1 < scoring.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if li + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}
