//! Regenerates paper Table I (item generation ability / cold-start AUC).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_table1
//!         [--scale tiny|small|paper] [--with-concat]`
//!
//! `--with-concat` adds the Fig-2 concat-DNN baseline as a fifth row.

use atnn_bench::{table1, Scale};

fn main() {
    let scale = Scale::from_args();
    let with_concat = std::env::args().any(|a| a == "--with-concat");
    eprintln!("running Table I at {scale:?} scale...");
    let t = if with_concat { table1::run_with_concat(scale) } else { table1::run(scale) };
    println!("Table I — Results of offline experiments on item generation ability of ATNN");
    println!("(scale: {scale:?})\n");
    print!("{}", table1::render(&t));
}
