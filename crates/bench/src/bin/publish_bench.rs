//! Delta-vs-full snapshot publish cost, the hot path of frequent model
//! redeploys.
//!
//! ```text
//! publish_bench [--smoke] [--out PATH]
//! ```
//!
//! For each catalogue scale (100k and 1M items) and each serving
//! precision (f32 and int8), the harness builds a v1 snapshot from one
//! model, then republishes a *second* model two ways:
//!
//! - **full**: `ModelSnapshot::new_shared` — whole-catalogue re-embed,
//!   k-means rebuild, full (re-)quantization. The baseline.
//! - **delta**: `ModelSnapshot::delta_from` at 0.1% / 1% / 10% changed
//!   rows — batched re-embed of the changed ids only, copy-on-write
//!   table patch, frozen-centroid IVF re-assignment, in-place row
//!   re-quantization.
//!
//! Changed ids are strided across the catalogue — the *worst* case for
//! the chunked COW tables, since maximally-spread ids touch the most
//! chunks. Results land in `BENCH_publish.json`; the full run gates the
//! headline number (1% delta ≥ 10× faster than full at 1M items, both
//! precisions).
//!
//! `--smoke` is the CI stage: 100k rows only, asserting the 1% delta
//! beats full publish by ≥ 5× in both precisions *and* that the delta is
//! exact — changed f32 rows bit-equal the full rebuild's, unchanged rows
//! bit-equal the previous snapshot's, and int8 deltas are code-identical
//! whether a set is patched in one shot or as two sub-deltas. Smoke does
//! not touch the JSON.

use std::sync::Arc;
use std::time::Instant;

use atnn_core::{Atnn, AtnnConfig, PopularityIndex};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::{ModelSnapshot, Precision};

const FRACTIONS: [f64; 3] = [0.001, 0.01, 0.1];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

struct DeltaRow {
    fraction: f64,
    changed: usize,
    seconds: f64,
    speedup: f64,
    moved: usize,
    rebuilt: bool,
}

struct PrecisionRun {
    precision: &'static str,
    full_seconds: f64,
    deltas: Vec<DeltaRow>,
}

struct ScaleRun {
    rows: usize,
    runs: Vec<PrecisionRun>,
}

/// Every `count`-th item across the catalogue: the maximally-spread
/// changed set (worst case for chunked copy-on-write).
fn strided_ids(n: usize, count: usize) -> Vec<u32> {
    let step = (n / count).max(1);
    (0..n as u32).step_by(step).take(count).collect()
}

/// One catalogue + two models over it. Publish cost does not depend on
/// whether the weights are trained, so both models are fresh inits from
/// different seeds — which still genuinely changes every re-embedded row.
fn fixture(rows: usize) -> (Arc<TmallDataset>, Arc<Atnn>, Arc<Atnn>, PopularityIndex) {
    let cfg = TmallConfig {
        num_users: 1_000,
        num_items: rows,
        num_interactions: 10_000,
        ..TmallConfig::tiny()
    };
    let data = Arc::new(TmallDataset::generate(cfg));
    let m0 = Atnn::new(AtnnConfig::scaled().with_seed(1), &data);
    let m1 = Atnn::new(AtnnConfig::scaled().with_seed(2), &data);
    let index = PopularityIndex::build(&m0, &data, &(0..1_000).collect::<Vec<_>>());
    (data, Arc::new(m0), Arc::new(m1), index)
}

fn run_scale(rows: usize, precisions: &[(Precision, &'static str)]) -> ScaleRun {
    let (data, m0, m1, index) = fixture(rows);
    let mut runs = Vec::new();
    for &(precision, name) in precisions {
        eprintln!("  [{name}] building v1 snapshot over {rows} items...");
        let prev = ModelSnapshot::new_shared(
            1,
            Arc::clone(&data),
            Arc::clone(&m0),
            index.clone(),
            precision,
        );

        eprintln!("  [{name}] full republish baseline...");
        let started = Instant::now();
        let _full = ModelSnapshot::new_shared(
            2,
            Arc::clone(&data),
            Arc::clone(&m1),
            index.clone(),
            precision,
        );
        let full_seconds = started.elapsed().as_secs_f64();
        eprintln!("  [{name}] full: {full_seconds:.2}s");

        let mut deltas = Vec::new();
        for fraction in FRACTIONS {
            let count = ((rows as f64 * fraction) as usize).max(1);
            let changed = strided_ids(rows, count);
            let (_, report) =
                ModelSnapshot::delta_from(&prev, 2, Arc::clone(&m1), index.clone(), &changed)
                    .expect("valid delta");
            let speedup = full_seconds / report.build_seconds.max(1e-9);
            eprintln!(
                "  [{name}] delta {:.1}% ({} rows): {:.4}s  ({speedup:.1}x, moved {}, rebuilt {})",
                fraction * 100.0,
                report.changed,
                report.build_seconds,
                report.moved_lists,
                report.index_rebuilt,
            );
            deltas.push(DeltaRow {
                fraction,
                changed: report.changed,
                seconds: report.build_seconds,
                speedup,
                moved: report.moved_lists,
                rebuilt: report.index_rebuilt,
            });
        }
        runs.push(PrecisionRun { precision: name, full_seconds, deltas });
    }
    ScaleRun { rows, runs }
}

/// Smoke-only exactness checks at 100k rows, 1% changed.
fn assert_parity(rows: usize) {
    let (data, m0, m1, index) = fixture(rows);
    let changed = strided_ids(rows, rows / 100);

    // f32: changed rows bit-equal the genuine full rebuild, unchanged
    // rows bit-equal the previous snapshot.
    let prev = ModelSnapshot::new_shared(
        1,
        Arc::clone(&data),
        Arc::clone(&m0),
        index.clone(),
        Precision::F32,
    );
    let full = ModelSnapshot::new_shared(
        2,
        Arc::clone(&data),
        Arc::clone(&m1),
        index.clone(),
        Precision::F32,
    );
    let (delta, _) = ModelSnapshot::delta_from(&prev, 2, Arc::clone(&m1), index.clone(), &changed)
        .expect("valid delta");
    let in_changed: std::collections::HashSet<u32> = changed.iter().copied().collect();
    for (d, f, p) in [
        (delta.cold_vecs(), full.cold_vecs(), prev.cold_vecs()),
        (delta.warm_vecs(), full.warm_vecs(), prev.warm_vecs()),
    ] {
        let (d, f, p) = (d.unwrap(), f.unwrap(), p.unwrap());
        for i in 0..rows {
            let oracle = if in_changed.contains(&(i as u32)) { f.row(i) } else { p.row(i) };
            assert_eq!(d.row(i), oracle, "f32 delta row {i} diverged");
        }
    }
    eprintln!("  parity: f32 delta bit-identical to the frozen-structure rebuild");

    // int8: one-shot vs two-step code identity (the single-code-path
    // oracle; a literal full rebuild re-derives the anchor, so the
    // contract is frozen-anchor code identity).
    let prev_q = ModelSnapshot::new_shared(
        1,
        Arc::clone(&data),
        Arc::clone(&m0),
        index.clone(),
        Precision::Int8,
    );
    let (one_shot, _) =
        ModelSnapshot::delta_from(&prev_q, 2, Arc::clone(&m1), index.clone(), &changed)
            .expect("valid delta");
    let (s1, s2) = changed.split_at(changed.len() / 2);
    let (step1, _) = ModelSnapshot::delta_from(&prev_q, 2, Arc::clone(&m1), index.clone(), s1)
        .expect("valid delta");
    let (two_step, _) =
        ModelSnapshot::delta_from(&step1, 3, Arc::clone(&m1), index, s2).expect("valid delta");
    let (oc, ow) = one_shot.quant_tables().expect("int8 snapshot");
    let (tc, tw) = two_step.quant_tables().expect("int8 snapshot");
    assert_eq!(tc.to_quantized(), oc.to_quantized(), "int8 cold codes diverged");
    assert_eq!(tw.to_quantized(), ow.to_quantized(), "int8 warm codes diverged");
    assert_eq!(two_step.encoded_ann(), one_shot.encoded_ann(), "int8 IVF bytes diverged");
    eprintln!("  parity: int8 delta code-identical one-shot vs composed");
}

fn render_json(scales: &[ScaleRun]) -> String {
    let mut out = String::from("{\n  \"fractions\": [0.001, 0.01, 0.1],\n  \"scales\": [\n");
    for (i, s) in scales.iter().enumerate() {
        out.push_str(&format!("    {{\"rows\": {}, \"runs\": [\n", s.rows));
        for (j, r) in s.runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"precision\": \"{}\", \"full_build_seconds\": {:.4}, \"deltas\": [\n",
                r.precision, r.full_seconds
            ));
            for (k, d) in r.deltas.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"fraction\": {}, \"changed\": {}, \"seconds\": {:.5}, \
                     \"speedup\": {:.1}, \"moved\": {}, \"index_rebuilt\": {}}}{}\n",
                    d.fraction,
                    d.changed,
                    d.seconds,
                    d.speedup,
                    d.moved,
                    d.rebuilt,
                    if k + 1 < r.deltas.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!("      ]}}{}\n", if j + 1 < s.runs.len() { "," } else { "" }));
        }
        out.push_str(&format!("    ]}}{}\n", if i + 1 < scales.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

fn one_pct_speedup(scale: &ScaleRun, precision: &str) -> f64 {
    scale
        .runs
        .iter()
        .find(|r| r.precision == precision)
        .and_then(|r| r.deltas.iter().find(|d| d.fraction == 0.01))
        .map(|d| d.speedup)
        .unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_publish.json".to_string());
    let precisions = [(Precision::F32, "f32"), (Precision::Int8, "int8")];

    if smoke {
        eprintln!("publish_bench --smoke: 100k rows");
        assert_parity(100_000);
        let scale = run_scale(100_000, &precisions);
        for p in ["f32", "int8"] {
            let speedup = one_pct_speedup(&scale, p);
            assert!(
                speedup >= 5.0,
                "smoke gate: {p} 1% delta publish at 100k rows only {speedup:.1}x faster than full (need >= 5x)"
            );
            eprintln!("  gate: {p} 1% delta {speedup:.1}x >= 5x");
        }
        eprintln!("publish smoke OK");
        return;
    }

    let mut scales = Vec::new();
    for rows in [100_000, 1_000_000] {
        eprintln!("scale: {rows} items");
        scales.push(run_scale(rows, &precisions));
    }
    let headline = scales.iter().find(|s| s.rows == 1_000_000).expect("1M scale ran");
    for p in ["f32", "int8"] {
        let speedup = one_pct_speedup(headline, p);
        assert!(
            speedup >= 10.0,
            "gate: {p} 1% delta publish at 1M rows only {speedup:.1}x faster than full (need >= 10x)"
        );
        eprintln!("gate: {p} 1% delta at 1M {speedup:.1}x >= 10x");
    }
    std::fs::write(&out_path, render_json(&scales)).expect("write bench json");
    eprintln!("wrote {out_path}");
}
