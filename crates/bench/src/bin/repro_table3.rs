//! Regenerates paper Table III (online A/B: ATNN vs human experts, average
//! days to first five sales).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_table3 [--scale tiny|small|paper]`

use atnn_bench::{table3, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Table III at {scale:?} scale...");
    let t = table3::run(scale);
    println!("Table III — Online A/B test (simulated market)");
    println!("(scale: {scale:?})\n");
    print!("{}", table3::render(&t));
}
