//! Regenerates paper Table V (food-delivery online A/B: realized VpPV/GMV
//! of recruited restaurants).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_table5 [--scale tiny|small|paper]`

use atnn_bench::{table5, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Table V at {scale:?} scale...");
    let t = table5::run(scale);
    println!("Table V — Online experiments for food delivery (simulated A/B)");
    println!("(scale: {scale:?})\n");
    print!("{}", table5::render(&t));
}
