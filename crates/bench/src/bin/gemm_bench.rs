//! GEMM throughput harness with a per-backend axis.
//!
//! Measures GFLOP/s and ns/op for [`Matrix::matmul_naive`] (the scalar
//! i-k-j reference kernel) and the production register-tiled kernel under
//! each compute backend — `scalar`, `avx2`, and `fastmath` (see
//! `atnn_tensor::backend`) — across square sizes 64–1024 and the actual
//! ATNN layer shapes, writing the results to `BENCH_gemm.json` (the source
//! of the README perf tables).
//!
//! Runs serially (`pool::with_threads(1)`) so the comparison isolates the
//! single-core microkernel win from the row-sharding layer benchmarked in
//! `BENCH_kernels.json`.
//!
//! Flags:
//! - `--smoke`: one quick 256² comparison; exits non-zero unless the tiled
//!   kernel at least matches the naive kernel, and (on FMA hosts) the
//!   fast-math kernel is not slower than the avx2 kernel beyond noise
//!   margin (the check.sh regression gates).
//! - `--out <path>`: output path (default `BENCH_gemm.json`).

use std::time::Instant;

use atnn_tensor::{cpu_caps, pool, with_backend, BackendKind, Matrix};

/// `(label, m, k, n)` cases: squares spanning the cache hierarchy plus the
/// paper-config ATNN tower layers (batch 512, deep stack 512-256-128,
/// projection to vec_dim 128) and the scaled test config's first layer.
const CASES: &[(&str, usize, usize, usize)] = &[
    ("square/64", 64, 64, 64),
    ("square/128", 128, 128, 128),
    ("square/256", 256, 256, 256),
    ("square/512", 512, 512, 512),
    ("square/1024", 1024, 1024, 1024),
    ("atnn/deep_fc0_512x512x512", 512, 512, 512),
    ("atnn/deep_fc1_512x512x256", 512, 512, 256),
    ("atnn/deep_fc2_512x256x128", 512, 256, 128),
    ("atnn/project_512x256x128", 512, 256, 128),
    ("atnn/scaled_fc0_64x64x64", 64, 64, 64),
];

/// The tiled kernel's ns/op under every backend, plus the naive reference.
struct Measurement {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    naive_ns: f64,
    scalar_ns: f64,
    avx2_ns: f64,
    fastmath_ns: f64,
    flops: f64,
}

impl Measurement {
    fn gflops(&self, ns: f64) -> f64 {
        self.flops / ns
    }
    /// Tiled-avx2 (the default backend) win over the naive reference.
    fn avx2_vs_naive(&self) -> f64 {
        self.naive_ns / self.avx2_ns
    }
    /// Fast-math win over the bit-identical avx2 kernel.
    fn fastmath_vs_avx2(&self) -> f64 {
        self.avx2_ns / self.fastmath_ns
    }
}

fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let mut z = seed
            ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        ((z >> 40) & 0xFF_FFFF) as f32 / (1u64 << 23) as f32 - 1.0
    })
}

/// Median wall time in ns of `f()` over enough iterations to fill
/// `min_sample_ns`, sampled `samples` times.
fn time_ns(samples: usize, min_sample_ns: u64, mut f: impl FnMut()) -> f64 {
    // Calibrate the per-sample iteration count on one warmup run.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (min_sample_ns / once).clamp(1, 1_000_000);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn measure(name: &str, m: usize, k: usize, n: usize, samples: usize) -> Measurement {
    let a = test_matrix(m, k, 0xA11CE);
    let b = test_matrix(k, n, 0xB0B);
    let mut out = Matrix::zeros(m, n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let (naive_ns, scalar_ns, avx2_ns, fastmath_ns) = pool::with_threads(1, || {
        let naive = time_ns(samples, 20_000_000, || {
            std::hint::black_box(a.matmul_naive(std::hint::black_box(&b)));
        });
        let mut tiled_under = |kind: BackendKind| {
            with_backend(kind, || {
                time_ns(samples, 20_000_000, || {
                    a.matmul_into(std::hint::black_box(&b), &mut out).unwrap();
                    std::hint::black_box(&out);
                })
            })
        };
        let scalar = tiled_under(BackendKind::Scalar);
        let avx2 = tiled_under(BackendKind::Avx2);
        let fastmath = tiled_under(BackendKind::FastMath);
        (naive, scalar, avx2, fastmath)
    });
    Measurement {
        name: name.to_string(),
        m,
        k,
        n,
        naive_ns,
        scalar_ns,
        avx2_ns,
        fastmath_ns,
        flops,
    }
}

fn to_json(results: &[Measurement]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {},\n",
                    "   \"naive_ns\": {:.1}, \"scalar_ns\": {:.1}, ",
                    "\"avx2_ns\": {:.1}, \"fastmath_ns\": {:.1},\n",
                    "   \"naive_gflops\": {:.3}, \"scalar_gflops\": {:.3}, ",
                    "\"avx2_gflops\": {:.3}, \"fastmath_gflops\": {:.3},\n",
                    "   \"avx2_vs_naive\": {:.2}, \"fastmath_vs_avx2\": {:.3}}}"
                ),
                r.name,
                r.m,
                r.k,
                r.n,
                r.naive_ns,
                r.scalar_ns,
                r.avx2_ns,
                r.fastmath_ns,
                r.gflops(r.naive_ns),
                r.gflops(r.scalar_ns),
                r.gflops(r.avx2_ns),
                r.gflops(r.fastmath_ns),
                r.avx2_vs_naive(),
                r.fastmath_vs_avx2()
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    if smoke {
        // One fast comparison at 256²: a tiled kernel slower than the
        // naive reference is a regression regardless of absolute numbers,
        // and (on FMA hosts) a fast-math kernel materially slower than
        // avx2 means the FMA microkernel stopped being selected. The 10%
        // margin absorbs CI timer noise; the full run records the real gap.
        let r = measure("square/256", 256, 256, 256, 3);
        println!(
            "gemm-smoke 256²: naive {:.2} | scalar {:.2} | avx2 {:.2} | fastmath {:.2} GFLOP/s",
            r.gflops(r.naive_ns),
            r.gflops(r.scalar_ns),
            r.gflops(r.avx2_ns),
            r.gflops(r.fastmath_ns)
        );
        if r.avx2_ns > r.naive_ns {
            eprintln!("gemm-smoke FAILED: tiled kernel slower than naive reference");
            std::process::exit(1);
        }
        let caps = cpu_caps();
        if caps.avx2 && caps.fma && r.fastmath_ns > r.avx2_ns * 1.10 {
            eprintln!(
                "gemm-smoke FAILED: fast-math kernel slower than avx2 ({:.1} vs {:.1} ns)",
                r.fastmath_ns, r.avx2_ns
            );
            std::process::exit(1);
        }
        return;
    }

    let mut results = Vec::new();
    for &(name, m, k, n) in CASES {
        let r = measure(name, m, k, n, 7);
        println!(
            "{:28} {:4}x{:4}x{:4}  naive {:7.2}  scalar {:7.2}  avx2 {:7.2}  fastmath {:7.2} \
             GFLOP/s  fm/avx2 {:5.3}x",
            r.name,
            r.m,
            r.k,
            r.n,
            r.gflops(r.naive_ns),
            r.gflops(r.scalar_ns),
            r.gflops(r.avx2_ns),
            r.gflops(r.fastmath_ns),
            r.fastmath_vs_avx2()
        );
        results.push(r);
    }
    std::fs::write(&out_path, to_json(&results)).expect("write bench json");
    println!("wrote {out_path}");
}
