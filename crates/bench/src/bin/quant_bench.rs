//! Memory and accuracy harness for the int8 serving tables and the
//! tensor-train training codec.
//!
//! ```text
//! quant_bench [--smoke] [--out PATH]
//! ```
//!
//! Three sections, written into `BENCH_quant.json`:
//!
//! 1. **Vocab sweep** — streaming [`QuantizedMatrix`] builds at dim 64
//!    from 100k to 10M rows: served bytes vs f32 bytes (the ≥ 3.5×
//!    acceptance gate), full-scan int8 dot latency, build time, and peak
//!    RSS (`VmHWM`) proving the f32 source never needs to be resident.
//! 2. **TT codec sweep** — parameter counts and gather/step latency of
//!    [`TtRowCodec`] embedding slots at training vocabulary sizes.
//! 3. **Accuracy parity** — a trained Tmall model at `small()` scale
//!    (4 000 items) served f32 vs int8 from the *same* artifact: serving
//!    AUC over all interactions (gate: |Δ| ≤ 0.001) and same-probe IVF
//!    recall@10 against the f32 oracle at the default probe width over
//!    per-user queries (gate: ≥ 0.99). Same-probe means both indexes
//!    decode the same persisted centroids, so the comparison isolates
//!    int8 re-ranking error from coarse-quantizer probe misses.
//!
//! `--smoke` is the CI gate: a reduced sweep size plus a tiny-scale
//! parity run, asserting the compression ratio and recall floors without
//! touching the JSON.

use std::time::Instant;

use atnn_autograd::RowCodec;
use atnn_core::{Atnn, AtnnConfig, CtrTrainer, ModelArtifact, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_nn::TtRowCodec;
use atnn_serve::{ModelSnapshot, Precision};
use atnn_tensor::{Matrix, QuantizedMatrix, Rng64};

const DIM: usize = 64;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn peak_rss_mb() -> f64 {
    atnn_obs::peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0)).unwrap_or(0.0)
}

// ---------------------------------------------------------------- sweep

struct SweepRow {
    rows: usize,
    storage_bytes: usize,
    f32_bytes: usize,
    ratio: f64,
    build_seconds: f64,
    scan_ms: f64,
    peak_rss_mb: f64,
}

/// Streams `rows` synthetic embeddings (shared anchor component + row
/// noise, the shape trained tables take) straight into a
/// [`QuantizedMatrix`] — the f32 source exists one row at a time, so
/// peak RSS tracks the *quantized* footprint, not `rows × dim × 4`.
fn run_sweep_size(rows: usize, seed: u64) -> SweepRow {
    let mut rng = Rng64::seed_from_u64(seed);
    let anchor: Vec<f32> = (0..DIM).map(|_| 2.0 * rng.normal()).collect();
    let mut q = QuantizedMatrix::with_anchor(anchor.clone());

    eprintln!("sweep: streaming {rows} rows x {DIM} into int8...");
    let started = Instant::now();
    let mut scratch = vec![0.0f32; DIM];
    for _ in 0..rows {
        for (s, a) in scratch.iter_mut().zip(&anchor) {
            *s = a + 0.3 * rng.normal();
        }
        q.push_row(&scratch);
    }
    let build_seconds = started.elapsed().as_secs_f64();

    let query: Vec<f32> = (0..DIM).map(|_| rng.normal()).collect();
    let prepared = q.prepare(&query);
    let started = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..rows {
        acc += q.dot_prepared(i, &prepared) as f64;
    }
    let scan_ms = started.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(acc);

    let storage_bytes = q.storage_bytes();
    let f32_bytes = q.f32_bytes();
    let ratio = f32_bytes as f64 / storage_bytes as f64;
    let rss = peak_rss_mb();
    eprintln!(
        "  {rows} rows: {:.1} MiB int8 vs {:.1} MiB f32 ({ratio:.2}x), build {build_seconds:.2}s, \
         scan {scan_ms:.1}ms, peak RSS {rss:.0} MiB",
        storage_bytes as f64 / (1024.0 * 1024.0),
        f32_bytes as f64 / (1024.0 * 1024.0),
    );
    SweepRow { rows, storage_bytes, f32_bytes, ratio, build_seconds, scan_ms, peak_rss_mb: rss }
}

// ------------------------------------------------------------------- tt

struct TtRow {
    rows: usize,
    rank: usize,
    dense_params: usize,
    tt_params: usize,
    compression: f64,
    gather_us_per_batch: f64,
    step_us: f64,
}

/// Gather/step latency and compression of a TT-compressed embedding slot
/// at training vocabulary sizes (batch = 512 rows, the trainer's width).
fn run_tt_size(rows: usize, rank: usize, seed: u64) -> TtRow {
    const BATCH: usize = 512;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut tt = TtRowCodec::new(rows, DIM, rank, 0.05, &mut rng);
    let dense_params = rows * DIM;
    let tt_params = tt.param_count();
    let compression = dense_params as f64 / tt_params as f64;

    let ids: Vec<u32> = (0..BATCH as u32).map(|k| (k * 2_654_435_761) % rows as u32).collect();
    let mut out = Matrix::zeros(BATCH, DIM);
    let reps = 20;
    let started = Instant::now();
    for _ in 0..reps {
        tt.gather_into(&ids, &mut out);
    }
    let gather_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let grads = Matrix::from_fn(BATCH, DIM, |i, j| ((i + j) % 7) as f32 * 0.01 - 0.02);
    tt.scatter_grads(&ids, &grads);
    let started = Instant::now();
    for _ in 0..reps {
        tt.sgd_step(1e-3);
    }
    let step_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;

    eprintln!(
        "tt: {rows} rows rank {rank}: {tt_params} params ({compression:.0}x smaller), gather \
         {gather_us:.0}us/{BATCH} rows, step {step_us:.0}us"
    );
    TtRow {
        rows,
        rank,
        dense_params,
        tt_params,
        compression,
        gather_us_per_batch: gather_us,
        step_us,
    }
}

// --------------------------------------------------------------- parity

struct Parity {
    num_items: usize,
    interactions: usize,
    queries: usize,
    auc_f32: f64,
    auc_int8: f64,
    auc_delta: f64,
    recall_at_10: f64,
    nprobe: usize,
    ratio: f64,
}

/// Trains one model, serves it twice — f32 and int8 — from the same
/// artifact (shared IVF centroids), and measures what quantization does
/// to the production metrics.
fn parity_run(cfg: TmallConfig, epochs: usize, n_queries: usize) -> Parity {
    eprintln!(
        "parity: training {} items / {} interactions for {epochs} epochs...",
        cfg.num_items, cfg.num_interactions
    );
    let data = TmallDataset::generate(cfg.clone());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    let users: Vec<u32> = (0..data.num_users() as u32).collect();
    let index = PopularityIndex::build(&model, &data, &users);
    let artifact = ModelArtifact::capture(&model, &cfg, &index, 1);

    let f32_snap = ModelSnapshot::new(1, data, model, index);
    // The int8 snapshot decodes the f32 snapshot's persisted centroids,
    // so both probe identical inverted lists — same-probe comparison.
    let shared = artifact.with_ann(f32_snap.encoded_ann().into());
    let q_snap = ModelSnapshot::from_artifact_with_precision(&shared, Precision::Int8)
        .expect("artifact instantiates");
    assert_eq!(q_snap.precision(), Precision::Int8);
    let ratio = q_snap.snapshot_f32_bytes() as f64 / q_snap.snapshot_bytes() as f64;

    // Serving AUC: every interaction scored through the cold path of each
    // snapshot against its clicked label.
    let items: Vec<u32> = f32_snap.data.interactions.iter().map(|it| it.item).collect();
    let labels: Vec<bool> = f32_snap.data.interactions.iter().map(|it| it.clicked).collect();
    let scores_f = f32_snap.score_cold(&items);
    let scores_q = q_snap.score_cold(&items);
    let auc_f32 = atnn_metrics::auc(&scores_f, &labels).expect("both classes present");
    let auc_int8 = atnn_metrics::auc(&scores_q, &labels).expect("both classes present");
    let auc_delta = (auc_f32 - auc_int8).abs();

    // Same-probe recall@10 at the default probe width, one query per
    // sampled user vector (the retrieval traffic shape).
    let nprobe = f32_snap.ann().default_nprobe();
    let qids: Vec<u32> =
        (0..n_queries as u32).map(|i| i % f32_snap.data.num_users() as u32).collect();
    let user_vecs = f32_snap.model.user_vectors(&f32_snap.data.encode_users(&qids));
    let mut hit = 0usize;
    let mut total = 0usize;
    for r in 0..user_vecs.rows() {
        use atnn_ann::Retriever;
        let qv = user_vecs.row(r);
        let exact = f32_snap.ann().topk(qv, 10, nprobe);
        let quant = q_snap.ann().topk(qv, 10, nprobe);
        total += exact.len();
        for (id, _) in &exact {
            if quant.iter().any(|(q, _)| q == id) {
                hit += 1;
            }
        }
    }
    let recall_at_10 = hit as f64 / total.max(1) as f64;

    eprintln!(
        "parity: AUC f32 {auc_f32:.4} vs int8 {auc_int8:.4} (delta {auc_delta:.5}), same-probe \
         recall@10 {recall_at_10:.4} at nprobe {nprobe}, tables {ratio:.2}x smaller"
    );
    Parity {
        num_items: cfg.num_items,
        interactions: cfg.num_interactions,
        queries: n_queries,
        auc_f32,
        auc_int8,
        auc_delta,
        recall_at_10,
        nprobe,
        ratio,
    }
}

// ----------------------------------------------------------------- json

fn render_json(sweep: &[SweepRow], tt: &[TtRow], parity: &Parity) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"int8_bytes\": {}, \"f32_bytes\": {}, \"ratio\": {:.3}, \
             \"build_seconds\": {:.3}, \"scan_ms\": {:.2}, \"peak_rss_mb\": {:.1}}}{}\n",
            r.rows,
            r.storage_bytes,
            r.f32_bytes,
            r.ratio,
            r.build_seconds,
            r.scan_ms,
            r.peak_rss_mb,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"tt\": [\n");
    for (i, r) in tt.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"rank\": {}, \"dense_params\": {}, \"tt_params\": {}, \
             \"compression\": {:.1}, \"gather_us_per_512\": {:.1}, \"step_us\": {:.1}}}{}\n",
            r.rows,
            r.rank,
            r.dense_params,
            r.tt_params,
            r.compression,
            r.gather_us_per_batch,
            r.step_us,
            if i + 1 < tt.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"parity\": {\n");
    out.push_str(&format!(
        "    \"num_items\": {},\n    \"interactions\": {},\n    \"queries\": {},\n",
        parity.num_items, parity.interactions, parity.queries
    ));
    out.push_str(&format!(
        "    \"auc_f32\": {:.5},\n    \"auc_int8\": {:.5},\n    \"auc_delta\": {:.5},\n",
        parity.auc_f32, parity.auc_int8, parity.auc_delta
    ));
    out.push_str(&format!(
        "    \"same_probe_recall_at_10\": {:.4},\n    \"nprobe\": {},\n    \"ratio\": {:.3}\n",
        parity.recall_at_10, parity.nprobe, parity.ratio
    ));
    out.push_str("  }\n}\n");
    out
}

/// The CI gate: compression ratio and parity floors at reduced sizes.
fn smoke() {
    let row = run_sweep_size(50_000, 7);
    assert!(
        row.ratio >= 3.5,
        "smoke: int8 tables only {:.2}x smaller at dim {DIM} (need >= 3.5x)",
        row.ratio
    );

    let cfg = TmallConfig { num_users: 120, num_items: 800, ..TmallConfig::tiny() };
    let parity = parity_run(cfg, 2, 100);
    assert!(
        parity.recall_at_10 >= 0.99,
        "smoke: same-probe recall@10 {:.4} under the 0.99 floor",
        parity.recall_at_10
    );
    assert!(
        parity.auc_delta <= 0.002,
        "smoke: quantized serving moved AUC by {:.5} (floor 0.002 at tiny scale)",
        parity.auc_delta
    );
    eprintln!(
        "smoke: ratio {:.2}x, recall {:.4}, auc delta {:.5} — all gates clear",
        row.ratio, parity.recall_at_10, parity.auc_delta
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_quant.json".to_string());

    let sweep: Vec<SweepRow> = [100_000usize, 1_000_000, 10_000_000]
        .into_iter()
        .enumerate()
        .map(|(i, n)| run_sweep_size(n, 42 + i as u64))
        .collect();
    for r in &sweep {
        assert!(
            r.ratio >= 3.5,
            "acceptance: {} rows compressed only {:.2}x (need >= 3.5x at dim {DIM})",
            r.rows,
            r.ratio
        );
    }

    let tt = vec![run_tt_size(100_000, 16, 3), run_tt_size(1_000_000, 16, 4)];

    let parity = parity_run(TmallConfig::small(), 2, 500);
    assert!(
        parity.auc_delta <= 0.001,
        "acceptance: quantized serving moved AUC by {:.5} (limit 0.001)",
        parity.auc_delta
    );
    assert!(
        parity.recall_at_10 >= 0.99,
        "acceptance: same-probe recall@10 {:.4} under the 0.99 floor",
        parity.recall_at_10
    );

    std::fs::write(&out_path, render_json(&sweep, &tt, &parity)).expect("write bench json");
    eprintln!("wrote {out_path}");
    eprintln!(
        "acceptance: >= 3.5x at every sweep size, AUC delta {:.5} <= 0.001, recall@10 {:.4} >= \
         0.99",
        parity.auc_delta, parity.recall_at_10
    );
}
