//! Seed-variance study over Table I: per-cell mean ± std across
//! independent dataset draws and model initializations.
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_variance
//!         [--scale tiny|small|paper] [--seeds N]`

use atnn_bench::{variance, Scale};

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5usize);

    eprintln!("running Table I over {seeds} seeds at {scale:?} scale...");
    let v = variance::run(scale, seeds);
    println!("Table I across {seeds} seeds (mean ± sample std), scale {scale:?}\n");
    print!("{}", variance::render(&v));
    println!("\nATNN best cold-start model in every draw: {}", v.atnn_always_best_cold());
}
