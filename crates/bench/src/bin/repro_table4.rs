//! Regenerates paper Table IV (food-delivery offline MAE: TNN-DCN vs
//! multi-task ATNN).
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_table4 [--scale tiny|small|paper]`

use atnn_bench::{table4, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Table IV at {scale:?} scale...");
    let t = table4::run(scale);
    println!("Table IV — Offline experiments for food delivery (MAE, lower is better)");
    println!("(scale: {scale:?})\n");
    print!("{}", table4::render(&t));
}
