//! Recall-vs-latency harness for the `atnn-ann` IVF-flat index.
//!
//! Builds synthetic item-tower embeddings (a mixture of Gaussians — the
//! clustered shape a trained tower actually emits, and the shape IVF's
//! coarse quantizer exploits), then sweeps `nprobe` at several catalogue
//! sizes and records recall@k against the brute-force oracle plus
//! per-query latency into `BENCH_ann.json`.
//!
//! ```text
//! ann_bench [--smoke] [--full] [--out PATH]
//! ```
//!
//! Default sizes are 100k and 1M items; `--full` adds the paper-scale
//! 10M-item catalogue (≈1.3 GiB of embeddings — minutes, not seconds).
//!
//! `--smoke` is the CI gate: one small index, asserting recall@10 ≥ 0.95
//! at the default probe width and *bit-exact* parity with the oracle at
//! full probe, then exits without touching the JSON.

use std::time::Instant;

use atnn_ann::{BruteForce, IvfFlatIndex, IvfParams, Retriever};
use atnn_tensor::{Matrix, Rng64};

const DIM: usize = 32;
const K: usize = 10;
const QUERIES: usize = 100;
const NPROBE_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Samples `n` embeddings from a mixture of `centers` Gaussians: items
/// cluster the way a trained item tower clusters its catalogue, so the
/// coarse quantizer has real structure to find.
fn mixture_pool(n: usize, dim: usize, centers: usize, seed: u64) -> (Matrix, Vec<Vec<f32>>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let means: Vec<Vec<f32>> =
        (0..centers).map(|_| (0..dim).map(|_| rng.normal()).collect()).collect();
    let mut pool = Matrix::zeros(n, dim);
    for r in 0..n {
        let mean = &means[rng.index(centers)];
        let row = pool.row_mut(r);
        for (d, m) in row.iter_mut().zip(mean) {
            *d = m + 0.25 * rng.normal();
        }
    }
    (pool, means)
}

/// Queries drawn from the same mixture (plus noise): retrieval traffic
/// lands near the clusters, not uniformly over the sphere.
fn queries(means: &[Vec<f32>], count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mean = &means[rng.index(means.len())];
            mean.iter().map(|&m| m + 0.25 * rng.normal()).collect()
        })
        .collect()
}

/// Fraction of the oracle's top-k the index recovered, averaged over all
/// queries. Approximation only drops candidates (scores are exact), so
/// intersection over k is the whole story.
fn recall_at_k(ivf: &[Vec<(u32, f32)>], oracle: &[Vec<(u32, f32)>], k: usize) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (approx, exact) in ivf.iter().zip(oracle) {
        total += exact.len().min(k);
        for (id, _) in exact.iter().take(k) {
            if approx.iter().take(k).any(|(a, _)| a == id) {
                hit += 1;
            }
        }
    }
    hit as f64 / total.max(1) as f64
}

/// Runs `retriever` over every query, returning the answers and the mean
/// per-query latency in microseconds.
fn timed_run(
    retriever: &dyn Retriever,
    queries: &[Vec<f32>],
    k: usize,
    nprobe: usize,
) -> (Vec<Vec<(u32, f32)>>, f64) {
    let started = Instant::now();
    let answers: Vec<_> = queries.iter().map(|q| retriever.topk(q, k, nprobe)).collect();
    let us = started.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
    (answers, us)
}

struct SweepPoint {
    nprobe: usize,
    recall: f64,
    us_per_query: f64,
    speedup: f64,
}

struct SizeResult {
    n: usize,
    nlist: usize,
    build_seconds: f64,
    brute_us_per_query: f64,
    peak_rss_mb: f64,
    sweep: Vec<SweepPoint>,
}

fn run_size(n: usize, seed: u64) -> SizeResult {
    eprintln!("building {n}-item pool...");
    let (pool, means) = mixture_pool(n, DIM, 256, seed);
    let qs = queries(&means, QUERIES, seed ^ 0x5EED);
    let pool = std::sync::Arc::new(pool);

    let params = IvfParams::for_items(n);
    let started = Instant::now();
    let ivf = IvfFlatIndex::build(std::sync::Arc::clone(&pool), params);
    let build_seconds = started.elapsed().as_secs_f64();
    eprintln!("  IVF built: {} lists in {build_seconds:.2}s", ivf.nlist());

    let brute = BruteForce::new(std::sync::Arc::clone(&pool));
    let (oracle, brute_us) = timed_run(&brute, &qs, K, 0);
    eprintln!("  brute force: {brute_us:.1}us/query");

    let sweep = NPROBE_SWEEP
        .iter()
        .filter(|&&p| p <= ivf.nlist())
        .map(|&nprobe| {
            let (answers, us) = timed_run(&ivf, &qs, K, nprobe);
            let recall = recall_at_k(&answers, &oracle, K);
            let speedup = brute_us / us;
            eprintln!(
                "  nprobe {nprobe:>3}: recall@{K} {recall:.4}, {us:>8.1}us/query ({speedup:.1}x)"
            );
            SweepPoint { nprobe, recall, us_per_query: us, speedup }
        })
        .collect();

    // VmHWM is monotone across sizes in one process, so each size's figure
    // reflects the largest pool built so far — ascending order keeps the
    // per-size numbers honest.
    let peak_rss_mb =
        atnn_obs::peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0)).unwrap_or(0.0);
    eprintln!("  peak RSS: {peak_rss_mb:.0} MiB");

    SizeResult {
        n,
        nlist: ivf.nlist(),
        build_seconds,
        brute_us_per_query: brute_us,
        peak_rss_mb,
        sweep,
    }
}

fn render_json(results: &[SizeResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"dim\": {DIM},\n  \"k\": {K},\n  \"queries\": {QUERIES},\n"));
    out.push_str("  \"sizes\": [\n");
    for (si, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"n\": {},\n      \"nlist\": {},\n", r.n, r.nlist));
        out.push_str(&format!("      \"build_seconds\": {:.3},\n", r.build_seconds));
        out.push_str(&format!(
            "      \"brute_force_us_per_query\": {:.1},\n",
            r.brute_us_per_query
        ));
        out.push_str(&format!("      \"peak_rss_mb\": {:.1},\n", r.peak_rss_mb));
        out.push_str("      \"sweep\": [\n");
        for (pi, p) in r.sweep.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"nprobe\": {}, \"recall_at_{K}\": {:.4}, \"us_per_query\": {:.1}, \
                 \"speedup_vs_brute\": {:.1}}}{}\n",
                p.nprobe,
                p.recall,
                p.us_per_query,
                p.speedup,
                if pi + 1 < r.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if si + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CI gate: a small index must clear recall@10 ≥ 0.95 at the default
/// probe width, and a full probe must be bit-identical to the oracle.
fn smoke() {
    let n = 20_000;
    let (pool, means) = mixture_pool(n, 16, 64, 7);
    let qs = queries(&means, 50, 11);
    let pool = std::sync::Arc::new(pool);
    let params = IvfParams::for_items(n);
    let ivf = IvfFlatIndex::build(std::sync::Arc::clone(&pool), params);
    let brute = BruteForce::new(pool);

    let (oracle, _) = timed_run(&brute, &qs, K, 0);
    let (default_probe, _) = timed_run(&ivf, &qs, K, ivf.default_nprobe());
    let recall = recall_at_k(&default_probe, &oracle, K);
    eprintln!(
        "smoke: recall@{K} {recall:.4} at nprobe {} over {} lists",
        ivf.default_nprobe(),
        ivf.nlist()
    );
    assert!(recall >= 0.95, "smoke: recall@{K} {recall:.4} under the 0.95 floor");

    let (full_probe, _) = timed_run(&ivf, &qs, K, ivf.nlist());
    assert_eq!(full_probe, oracle, "smoke: full probe must be bit-identical to brute force");
    eprintln!("smoke: full probe bit-identical to the oracle over {} queries", qs.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_ann.json".to_string());

    let mut sizes = vec![100_000usize, 1_000_000];
    if full {
        sizes.push(10_000_000);
    }
    let results: Vec<SizeResult> =
        sizes.into_iter().enumerate().map(|(i, n)| run_size(n, 42 + i as u64)).collect();

    std::fs::write(&out_path, render_json(&results)).expect("write bench json");
    eprintln!("wrote {out_path}");

    // The acceptance bar: at 1M items some probe width must reach
    // recall@10 ≥ 0.95 while beating brute force by ≥ 10x.
    let million = results.iter().find(|r| r.n == 1_000_000).expect("1M size always runs");
    let cleared = million.sweep.iter().any(|p| p.recall >= 0.95 && p.speedup >= 10.0);
    assert!(
        cleared,
        "no nprobe at 1M items reached recall@10 >= 0.95 with a >= 10x speedup over brute force"
    );
    eprintln!("acceptance: 1M-item sweep has a >= 10x point at recall@10 >= 0.95");
}
