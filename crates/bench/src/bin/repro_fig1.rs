//! Figure 1 — the tripartite win-win mechanism, made operational.
//!
//! The paper's Fig. 1 is the motivation diagram: accurate new-arrival
//! prediction → buyers find what they like (clicks), sellers profit and
//! list more (supply), the platform grows (GMV). This binary runs that
//! feedback loop with three selection policies — trained ATNN, the human
//! expert, and random — and prints the compounding divergence.
//!
//! Usage: `cargo run -p atnn-bench --release --bin repro_fig1
//!         [--scale tiny|small|paper]`

use atnn_bench::pipeline::{train_atnn, ColdStartSetup};
use atnn_bench::{fmt, Scale};
use atnn_core::{AtnnConfig, PopularityIndex};
use atnn_data::market::{simulate_ecosystem, EcosystemConfig, EcosystemOutcome, ExpertPolicy};
use atnn_tensor::Rng64;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running the Fig. 1 ecosystem loop at {scale:?} scale...");
    let setup = ColdStartSetup::generate(scale);
    let model = train_atnn(&setup, AtnnConfig::scaled(), scale);
    let group: Vec<u32> = (0..(setup.data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &setup.data, &group);

    let cfg = EcosystemConfig::default();
    let atnn = simulate_ecosystem(&setup.data, &cfg, |pool| {
        index.score_new_arrivals(&model, &setup.data, pool)
    });
    let expert_policy = ExpertPolicy::default();
    let expert =
        simulate_ecosystem(&setup.data, &cfg, |pool| expert_policy.score(&setup.data, pool));
    let mut rng = Rng64::seed_from_u64(404);
    let random =
        simulate_ecosystem(&setup.data, &cfg, |pool| pool.iter().map(|_| rng.uniform()).collect());

    println!(
        "Figure 1 — tripartite win-win over {} feedback rounds (scale {scale:?})\n",
        cfg.rounds
    );
    let row = |name: &str, o: &EcosystemOutcome| {
        vec![
            name.to_string(),
            fmt::f2(o.total_gmv()),
            o.total_clicks().to_string(),
            format!("{} -> {}", cfg.initial_supply, o.final_supply()),
        ]
    };
    print!(
        "{}",
        fmt::render_table(
            &["Selector", "Platform GMV", "Buyer clicks", "Seller supply"],
            &[row("random", &random), row("expert", &expert), row("ATNN", &atnn)],
        )
    );
    println!(
        "\nper-round GMV (ATNN): {:?}",
        atnn.rounds.iter().map(|r| r.promoted_gmv.round()).collect::<Vec<_>>()
    );
}
