//! Table II — offline commercial-value validation.
//!
//! Rank all new arrivals by ATNN popularity (generator vector × stored
//! mean user vector), split into quintiles, launch every item in the
//! market simulator, and report mean IPV / AtF / GMV at 7, 14 and 30 days
//! per quintile (plus the overall average row).

use atnn_core::{AtnnConfig, PopularityIndex};
use atnn_data::market::{simulate_launch, MarketConfig};
use atnn_metrics::{quantile_lift, LiftTable};

use crate::pipeline::{train_atnn, ColdStartSetup};
use crate::Scale;

/// Column order of the outcome matrix (matching the paper's header).
pub const METRICS: [&str; 9] = [
    "7d IPV", "14d IPV", "30d IPV", "7d AtF", "14d AtF", "30d AtF", "7d GMV", "14d GMV", "30d GMV",
];

/// The quintile lift result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The 5-group lift table over the 9 metric columns.
    pub lift: LiftTable,
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Table2 {
    let setup = ColdStartSetup::generate(scale);
    let model = train_atnn(&setup, AtnnConfig::scaled(), scale);

    // Active user group: in the paper, the top 20M active users; here, the
    // first half of the user population (activity is uniform by
    // construction, so any fixed group works).
    let group: Vec<u32> = (0..(setup.data.num_users() / 2) as u32).collect();
    let index = PopularityIndex::build(&model, &setup.data, &group);
    let scores = index.score_new_arrivals(&model, &setup.data, &setup.new_arrivals);

    // Launch every new arrival and collect telemetry.
    let outcomes = simulate_launch(&setup.data, &setup.new_arrivals, &MarketConfig::default());
    let rows: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.ipv_at(7) as f64,
                o.ipv_at(14) as f64,
                o.ipv_at(30) as f64,
                o.atf_at(7) as f64,
                o.atf_at(14) as f64,
                o.atf_at(30) as f64,
                o.gmv_at(7),
                o.gmv_at(14),
                o.gmv_at(30),
            ]
        })
        .collect();

    let lift = quantile_lift(&scores, &rows, 5).expect("lift defined");
    Table2 { lift }
}

/// Renders the paper's layout (five quintile rows + the average row).
pub fn render(t: &Table2) -> String {
    let mut headers = vec!["Popularity (top %)"];
    headers.extend(METRICS);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let labels = ["0-20", "20-40", "40-60", "60-80", "80-100"];
    for (label, group) in labels.iter().zip(&t.lift.groups) {
        let mut row = vec![label.to_string()];
        row.extend(group.iter().map(|&v| crate::fmt::f2(v)));
        rows.push(row);
    }
    let mut avg = vec!["Average".to_string()];
    avg.extend(t.lift.overall.iter().map(|&v| crate::fmt::f2(v)));
    rows.push(avg);
    crate::fmt::render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table-II shape: business outcomes are ordered by predicted
    /// popularity. The paper itself shows one GMV inversion (40-60% row),
    /// so GMV is checked top-vs-bottom rather than strictly monotone.
    #[test]
    fn table2_shape_holds_at_tiny_scale() {
        let t = run(Scale::Tiny);
        assert_eq!(t.lift.groups.len(), 5);

        // IPV and AtF: top group dominates bottom group at every horizon.
        for (metric, name) in METRICS.iter().enumerate().take(6) {
            assert!(
                t.lift.top_bottom_ratio(metric) > 1.3,
                "{name}: top/bottom {:.2}",
                t.lift.top_bottom_ratio(metric)
            );
        }
        // 30d IPV and AtF: weakly monotone with 20% slack (sampling noise).
        assert!(t.lift.is_monotone(2, 0.2), "30d IPV ordering: {:?}", t.lift.groups);
        assert!(t.lift.is_monotone(5, 0.2), "30d AtF ordering: {:?}", t.lift.groups);
        // GMV: top beats bottom at 30d.
        assert!(
            t.lift.groups[0][8] > t.lift.groups[4][8],
            "30d GMV top {:.1} vs bottom {:.1}",
            t.lift.groups[0][8],
            t.lift.groups[4][8]
        );
        // Telemetry grows with horizon within each group.
        for g in &t.lift.groups {
            assert!(g[0] <= g[1] && g[1] <= g[2], "IPV horizons: {g:?}");
        }
    }

    #[test]
    fn render_has_six_data_rows() {
        let t = run(Scale::Tiny);
        let s = render(&t);
        assert_eq!(s.lines().count(), 2 + 6);
        assert!(s.contains("Average"));
        assert!(s.contains("0-20"));
    }
}
