//! Table I — offline item-generation-ability experiment.
//!
//! Four models (GBDT, TNN-FC, TNN-DCN, ATNN) are trained on warm items and
//! evaluated on *held-out new arrivals* twice: with complete item features
//! (statistics available — the ideal, non-cold-start ceiling) and with
//! item profiles only (cold start). Baselines impute missing statistics
//! with training means; ATNN scores cold items through its generator.

use atnn_core::{
    evaluate_auc_full, evaluate_auc_generated, evaluate_auc_imputed, gather_batch, Atnn,
    AtnnConfig, ConcatDnn,
};

use crate::pipeline::{epochs, gbdt_auc, train_atnn, train_gbdt, ColdStartSetup};
use crate::Scale;

/// One model's row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// AUC with only item profiles (cold-start scenario).
    pub auc_profile_only: f64,
    /// AUC with complete item features (ideal baseline).
    pub auc_complete: f64,
}

impl Row {
    /// Performance degradation due to missing item statistics
    /// (paper's third column): `(profile_only − complete) / complete`.
    pub fn degradation(&self) -> f64 {
        (self.auc_profile_only - self.auc_complete) / self.auc_complete
    }
}

/// The four-model result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in the paper's order: GBDT, TNN-FC, TNN-DCN, ATNN.
    pub rows: Vec<Row>,
}

impl Table1 {
    /// Row lookup by model name.
    pub fn row(&self, model: &str) -> &Row {
        self.rows.iter().find(|r| r.model == model).expect("model present")
    }
}

/// Runs the experiment at the given scale (fixed default seed).
pub fn run(scale: Scale) -> Table1 {
    run_seeded(scale, 0)
}

/// Runs the experiment with both the dataset draw and every model's
/// initialization re-seeded — the unit of the seed-variance study
/// (`repro_variance`). `seed_offset = 0` reproduces [`run`].
pub fn run_seeded(scale: Scale, seed_offset: u64) -> Table1 {
    let setup = ColdStartSetup::generate_seeded(scale, seed_offset);
    let means = setup.data.mean_item_stats(&setup.warm_items());
    let test = &setup.split.test;
    let mut rows = Vec::with_capacity(4);

    // GBDT: complete features at test time vs mean-imputed statistics.
    let gbdt = train_gbdt(&setup, scale);
    rows.push(Row {
        model: "GBDT".into(),
        auc_profile_only: gbdt_auc(&gbdt, &setup.data, test, Some(&means)),
        auc_complete: gbdt_auc(&gbdt, &setup.data, test, None),
    });

    // TNN-FC and TNN-DCN: encoder path, imputed statistics when cold.
    for (name, config) in [("TNN-FC", AtnnConfig::tnn_fc()), ("TNN-DCN", AtnnConfig::tnn_dcn())] {
        let model = train_atnn(&setup, config.with_seed(1 + seed_offset), scale);
        rows.push(Row {
            model: name.into(),
            auc_profile_only: evaluate_auc_imputed(&model, &setup.data, test, &means)
                .expect("AUC defined"),
            auc_complete: evaluate_auc_full(&model, &setup.data, test).expect("AUC defined"),
        });
    }

    // ATNN: generator path when cold; encoder path when complete.
    let atnn = train_atnn(&setup, AtnnConfig::scaled().with_seed(1 + seed_offset), scale);
    rows.push(Row {
        model: "ATNN".into(),
        auc_profile_only: evaluate_auc_generated(&atnn, &setup.data, test).expect("AUC defined"),
        auc_complete: evaluate_auc_full(&atnn, &setup.data, test).expect("AUC defined"),
    });

    Table1 { rows }
}

/// [`run`] plus a fifth row for the Fig-2 concat-DNN baseline (scored
/// cold with mean-imputed statistics — it has no generator and, by
/// design, no extractable item vector).
pub fn run_with_concat(scale: Scale) -> Table1 {
    let mut t = run_seeded(scale, 0);
    let setup = ColdStartSetup::generate(scale);
    let means = setup.data.mean_item_stats(&setup.warm_items());
    let mut model = ConcatDnn::new(&AtnnConfig::scaled(), &setup.data);
    let mut iter = atnn_data::dataset::BatchIter::new(
        setup.split.train.clone(),
        256,
        atnn_tensor::Rng64::seed_from_u64(97),
    );
    for _ in 0..epochs(scale) {
        while let Some(batch) = iter.next_batch() {
            let (profile, stats, users, labels) = gather_batch(&setup.data, batch);
            model.train_step(&profile, &stats, &users, &labels);
        }
        iter.next_epoch();
    }
    let auc_with = |impute: Option<&[f32]>| -> f64 {
        let mut scores = Vec::new();
        let mut labels_all = Vec::new();
        for chunk in setup.split.test.chunks(512) {
            let (profile, stats, users, y) = gather_batch(&setup.data, chunk);
            let stats = match impute {
                Some(means) => Atnn::imputed_stats_block(profile.len(), means),
                None => stats,
            };
            scores.extend(model.predict(&profile, &stats, &users));
            labels_all.extend(y.as_slice().iter().map(|&v| v > 0.5));
        }
        atnn_metrics::auc(&scores, &labels_all).expect("AUC defined")
    };
    t.rows.insert(
        0,
        Row {
            model: "ConcatDNN".into(),
            auc_profile_only: auc_with(Some(&means)),
            auc_complete: auc_with(None),
        },
    );
    t
}

/// Renders the paper's layout.
pub fn render(t: &Table1) -> String {
    crate::fmt::render_table(
        &["Model", "AUC profile-only", "AUC complete", "Degradation"],
        &t.rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    crate::fmt::f4(r.auc_profile_only),
                    crate::fmt::f4(r.auc_complete),
                    crate::fmt::pct(r.degradation()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table-I shape at tiny scale. This is the headline claim of
    /// the paper, asserted end to end:
    /// 1. ATNN is the best cold-start model;
    /// 2. ATNN's degradation is (near) zero and the smallest in magnitude;
    /// 3. TNN-DCN beats TNN-FC given complete features (DCN helps);
    /// 4. every baseline degrades when statistics go missing.
    #[test]
    fn table1_shape_holds_at_tiny_scale() {
        let t = run(Scale::Tiny);
        assert_eq!(t.rows.len(), 4);

        let atnn = t.row("ATNN");
        let dcn = t.row("TNN-DCN");
        let fc = t.row("TNN-FC");
        let gbdt = t.row("GBDT");

        // (1) best cold-start model.
        for other in [dcn, fc, gbdt] {
            assert!(
                atnn.auc_profile_only > other.auc_profile_only,
                "ATNN cold {:.4} must beat {} cold {:.4}",
                atnn.auc_profile_only,
                other.model,
                other.auc_profile_only
            );
        }
        // (2) near-zero, smallest-magnitude degradation. The bound is
        // loose at tiny scale (one seed, 160 cold items): measured over
        // seed offsets 0..6 the degradation spans -0.05..-0.12 (mean
        // -0.083), 2-4x smaller in magnitude than every baseline's. The
        // paper-scale run recorded in EXPERIMENTS.md lands far inside it.
        assert!(
            atnn.degradation().abs() < 0.13,
            "ATNN degradation should be ~0: {:.4}",
            atnn.degradation()
        );
        for other in [dcn, gbdt] {
            assert!(
                atnn.degradation().abs() < other.degradation().abs(),
                "ATNN |degr| {:.4} must be below {} |degr| {:.4}",
                atnn.degradation().abs(),
                other.model,
                other.degradation().abs()
            );
        }
        // (3) DCN is at least competitive with FC. NOTE (documented in
        // EXPERIMENTS.md): the paper reports a dramatic TNN-FC deficit
        // (0.6048 vs 0.7169); on this substrate equal-capacity FC towers
        // are within noise of DCN towers — consistent with the DCN paper's
        // own sub-1% gains — so only parity is asserted, and the DCN
        // contribution is measured by the cross-depth ablation (A3).
        assert!(
            dcn.auc_complete > fc.auc_complete - 0.02,
            "TNN-DCN {:.4} vs TNN-FC {:.4}",
            dcn.auc_complete,
            fc.auc_complete
        );
        // (4) statistics matter: baselines degrade.
        for baseline in [dcn, gbdt] {
            assert!(
                baseline.degradation() < -0.005,
                "{} should degrade without stats: {:.4}",
                baseline.model,
                baseline.degradation()
            );
        }
        // Sanity: all AUCs are meaningfully above chance.
        for row in &t.rows {
            assert!(row.auc_complete > 0.55, "{}: {:.4}", row.model, row.auc_complete);
        }
    }

    #[test]
    fn concat_dnn_row_is_sane_and_degrades() {
        let t = run_with_concat(Scale::Tiny);
        assert_eq!(t.rows.len(), 5);
        let concat = t.row("ConcatDNN");
        assert!(concat.auc_complete > 0.6, "trains to signal: {:.4}", concat.auc_complete);
        assert!(
            concat.degradation() < -0.01,
            "no generator => must degrade cold: {:.4}",
            concat.degradation()
        );
        // ATNN still wins cold against the concat baseline.
        assert!(t.row("ATNN").auc_profile_only > concat.auc_profile_only);
    }

    #[test]
    fn render_contains_all_models() {
        let t = Table1 {
            rows: vec![Row { model: "GBDT".into(), auc_profile_only: 0.61, auc_complete: 0.66 }],
        };
        let s = render(&t);
        assert!(s.contains("GBDT") && s.contains("-7.58%"));
    }
}
