//! Minimal fixed-width table printing for the repro binaries.

/// Renders `headers` + `rows` as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = w));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a signed percentage with 2 decimals (e.g. `-4.31%`).
pub fn pct(v: f64) -> String {
    format!("{:+.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["Model", "AUC"],
            &[vec!["GBDT".into(), "0.6149".into()], vec!["ATNN".into(), "0.7121".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Model") && lines[0].contains("AUC"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].trim_start().starts_with("GBDT"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.71209), "0.7121");
        assert_eq!(f2(10.466), "10.47");
        assert_eq!(pct(-0.0431), "-4.31%");
        assert_eq!(pct(0.0716), "+7.16%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
