//! Reproduction harness: one module per paper table, plus ablations.
//!
//! Each `tableN::run(scale)` regenerates the corresponding table of the
//! paper on the simulated substrate and returns a structured result; the
//! `repro_tableN` binaries print them in the paper's layout. Criterion
//! benches under `benches/` cover the figures (architecture throughput and
//! the Fig. 5 O(1)-serving claim).
//!
//! Absolute numbers differ from the paper (simulated data, scaled widths);
//! `EXPERIMENTS.md` records which *qualitative* relations must hold and
//! what was measured.

pub mod ablations;
pub mod cold_to_warm;
pub mod fmt;
pub mod pipeline;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod variance;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Sub-second; used by the harness's own tests.
    Tiny,
    /// Seconds; default for interactive runs.
    Small,
    /// The recorded full-scale run (minutes, release mode).
    Paper,
}

impl Scale {
    /// Parses `tiny|small|paper` (used by every binary's `--scale` flag).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads `--scale <value>` from argv, defaulting to [`Scale::Small`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| Scale::parse(v))
            .unwrap_or(Scale::Small)
    }
}
