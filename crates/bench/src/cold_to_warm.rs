//! Extension experiment: the **cold-to-warm transition** of a deployed
//! ATNN (paper §IV-D).
//!
//! In production the generator scores an item only until real behaviour
//! accumulates; the paper's real-time data engine then has statistics and
//! the encoder path can take over. This experiment quantifies *when* that
//! handover pays off: for each observation window `d`, new arrivals are
//! scored by (a) the generator (constant in `d`) and (b) the encoder fed
//! statistics built from the first `d` days of launch telemetry, and both
//! are measured on held-out click AUC.
//!
//! Expected shape: the encoder starts *below* the generator (little
//! telemetry ≈ imputation) and overtakes it once the empirical CTR
//! stabilizes — the crossover day is the serving policy's switch point.

use atnn_core::{evaluate_auc_generated, gather_batch, AtnnConfig};
use atnn_data::market::{simulate_launch, MarketConfig, MarketOutcome};
use atnn_data::tmall::TmallDataset;

use crate::pipeline::{train_atnn, ColdStartSetup};
use crate::Scale;

/// AUC of both scoring paths at one observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Days of telemetry available.
    pub days: usize,
    /// Encoder-path AUC with telemetry-built statistics.
    pub encoder_auc: f64,
    /// Generator-path AUC (constant across windows; repeated for the
    /// table).
    pub generator_auc: f64,
}

/// The transition curve.
#[derive(Debug, Clone)]
pub struct ColdToWarm {
    /// One row per observation window.
    pub windows: Vec<WindowResult>,
}

impl ColdToWarm {
    /// First window at which the encoder path matches or beats the
    /// generator, if any.
    pub fn crossover_day(&self) -> Option<usize> {
        self.windows.iter().find(|w| w.encoder_auc >= w.generator_auc).map(|w| w.days)
    }
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> ColdToWarm {
    let setup = ColdStartSetup::generate(scale);
    let model = train_atnn(&setup, AtnnConfig::scaled(), scale);
    let generator_auc =
        evaluate_auc_generated(&model, &setup.data, &setup.split.test).expect("AUC defined");

    // Launch every new arrival once; windows share the telemetry.
    let outcomes = simulate_launch(&setup.data, &setup.new_arrivals, &MarketConfig::default());
    let first_new = setup.new_arrivals[0];

    let windows = [0usize, 1, 3, 7, 14, 30]
        .into_iter()
        .map(|days| WindowResult {
            days,
            encoder_auc: encoder_auc_at(
                &model,
                &setup.data,
                &setup.split.test,
                first_new,
                &outcomes,
                days,
            ),
            generator_auc,
        })
        .collect();
    ColdToWarm { windows }
}

fn encoder_auc_at(
    model: &atnn_core::Atnn,
    data: &TmallDataset,
    test_rows: &[u32],
    first_new: u32,
    outcomes: &[MarketOutcome],
    days: usize,
) -> f64 {
    let mut scores = Vec::with_capacity(test_rows.len());
    let mut labels = Vec::with_capacity(test_rows.len());
    for chunk in test_rows.chunks(512) {
        let (profile, _stats, users, y) = gather_batch(data, chunk);
        // Replace historical statistics with telemetry-built ones.
        let rows: Vec<Vec<f32>> = chunk
            .iter()
            .map(|&r| {
                let item = data.interactions[r as usize].item;
                let outcome = &outcomes[(item - first_new) as usize];
                data.stats_from_telemetry(item, &outcome.days, days)
            })
            .collect();
        let stats = TmallDataset::stats_block_from_rows(rows);
        scores.extend(model.predict_ctr_full(&profile, &stats, &users));
        labels.extend(y.as_slice().iter().map(|&v| v > 0.5));
    }
    atnn_metrics::auc(&scores, &labels).expect("AUC defined")
}

/// Renders the transition table.
pub fn render(t: &ColdToWarm) -> String {
    let rows: Vec<Vec<String>> = t
        .windows
        .iter()
        .map(|w| {
            vec![
                format!("{} days", w.days),
                crate::fmt::f4(w.encoder_auc),
                crate::fmt::f4(w.generator_auc),
                if w.encoder_auc >= w.generator_auc { "encoder" } else { "generator" }.to_string(),
            ]
        })
        .collect();
    crate::fmt::render_table(
        &["Telemetry window", "Encoder AUC", "Generator AUC", "Serve with"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_curve_has_the_expected_shape() {
        let t = run(Scale::Tiny);
        assert_eq!(t.windows.len(), 6);
        let by_day: Vec<f64> = t.windows.iter().map(|w| w.encoder_auc).collect();
        let generator = t.windows[0].generator_auc;

        // With zero telemetry the encoder is clearly worse than the
        // generator (that IS the cold-start problem).
        assert!(
            by_day[0] < generator - 0.02,
            "day 0: encoder {:.4} vs generator {generator:.4}",
            by_day[0]
        );
        // More telemetry helps: 30-day encoder beats 0-day encoder by a
        // wide margin.
        assert!(
            by_day[5] > by_day[0] + 0.05,
            "telemetry must help: {:.4} -> {:.4}",
            by_day[0],
            by_day[5]
        );
        // And by 30 days the encoder path has caught up with (or passed)
        // the generator.
        assert!(
            by_day[5] > generator - 0.02,
            "30-day encoder {:.4} should reach generator {generator:.4}",
            by_day[5]
        );
    }

    #[test]
    fn render_contains_all_windows() {
        let t = ColdToWarm {
            windows: vec![
                WindowResult { days: 0, encoder_auc: 0.6, generator_auc: 0.75 },
                WindowResult { days: 30, encoder_auc: 0.8, generator_auc: 0.75 },
            ],
        };
        let s = render(&t);
        assert!(s.contains("0 days") && s.contains("30 days"));
        assert!(s.contains("generator") && s.contains("encoder"));
    }
}
