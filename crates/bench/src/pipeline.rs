//! Shared experiment plumbing: datasets, cold-start splits, and model
//! training pipelines reused by every table.

use atnn_baselines::{tabular, Gbdt, GbdtConfig, Learner, Objective};
use atnn_core::{Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_data::dataset::Split;
use atnn_data::eleme::{ElemeConfig, ElemeDataset};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::Matrix;

use crate::Scale;

/// Tmall dataset config for a scale.
pub fn tmall_config(scale: Scale) -> TmallConfig {
    match scale {
        Scale::Tiny => TmallConfig::tiny(),
        Scale::Small => TmallConfig::small(),
        Scale::Paper => TmallConfig::paper_scale(),
    }
}

/// Ele.me dataset config for a scale. Tiny is enlarged relative to the
/// unit-test preset: the A/B arms select top-15% subsets, which need a
/// few hundred pool members for stable means.
pub fn eleme_config(scale: Scale) -> ElemeConfig {
    match scale {
        Scale::Tiny => ElemeConfig { num_restaurants: 1_600, ..ElemeConfig::tiny() },
        Scale::Small => ElemeConfig::small(),
        Scale::Paper => ElemeConfig::paper_scale(),
    }
}

/// Training epochs per scale. Tiny runs see few batches per epoch, so
/// they need more passes to reach the qualitative regime.
pub fn epochs(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 3,
        Scale::Paper => 3,
    }
}

/// A cold-start experiment context: the dataset, which items are "new
/// arrivals" (held out of training entirely), and the interaction split
/// induced by that item split (80/20 by item, as in the paper).
pub struct ColdStartSetup {
    /// The simulated Tmall log.
    pub data: TmallDataset,
    /// Item ids never seen in training.
    pub new_arrivals: Vec<u32>,
    /// Interaction-row split (train = warm items, test = new arrivals).
    pub split: Split,
}

impl ColdStartSetup {
    /// Generates the dataset and holds out 20% of items as new arrivals.
    pub fn generate(scale: Scale) -> Self {
        Self::generate_seeded(scale, 0)
    }

    /// Like [`Self::generate`] but with a re-seeded dataset draw
    /// (`seed_offset = 0` reproduces the default).
    pub fn generate_seeded(scale: Scale, seed_offset: u64) -> Self {
        let base = tmall_config(scale);
        let seed = base.seed.wrapping_add(seed_offset.wrapping_mul(0x9E37_79B9));
        let data = TmallDataset::generate(base.with_seed(seed));
        let n_items = data.num_items() as u32;
        let threshold = n_items - n_items / 5;
        let new_arrivals: Vec<u32> = (threshold..n_items).collect();
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= threshold);
        ColdStartSetup { data, new_arrivals, split }
    }

    /// Item ids available during training (warm items).
    pub fn warm_items(&self) -> Vec<u32> {
        let first_cold = self.new_arrivals.first().copied().unwrap_or(0);
        (0..first_cold).collect()
    }
}

/// Trains an [`Atnn`] (or TNN variant, per `config`) on the warm split.
pub fn train_atnn(setup: &ColdStartSetup, config: AtnnConfig, scale: Scale) -> Atnn {
    let mut model = Atnn::new(config, &setup.data);
    let opts = TrainOptions::builder().epochs(epochs(scale)).build().expect("valid options");
    CtrTrainer::new(opts)
        .train(&mut model, &setup.data, Some(&setup.split.train))
        .expect("warm split is non-degenerate");
    model
}

/// Dense tabular design matrix for the GBDT baseline over interaction
/// rows: `[item profile cats+nums | item stats | user cats+nums]`.
/// `stats_override` replaces every row's statistics (cold-start
/// imputation).
pub fn gbdt_features(
    data: &TmallDataset,
    rows: &[u32],
    stats_override: Option<&[f32]>,
) -> (Matrix, Vec<f32>) {
    let items: Vec<u32> = rows.iter().map(|&r| data.interactions[r as usize].item).collect();
    let users: Vec<u32> = rows.iter().map(|&r| data.interactions[r as usize].user).collect();
    let profile = data.encode_item_profiles(&items);
    let stats = data.encode_item_stats(&items);
    let user = data.encode_users(&users);

    let stats_numeric = match stats_override {
        Some(means) => Matrix::from_fn(rows.len(), means.len(), |_, j| means[j]),
        None => stats.numeric,
    };
    let x = tabular::hstack(
        &tabular::hstack(&tabular::flatten(&profile.categorical, &profile.numeric), &stats_numeric),
        &tabular::flatten(&user.categorical, &user.numeric),
    );
    let y: Vec<f32> =
        rows.iter().map(|&r| data.interactions[r as usize].clicked as u8 as f32).collect();
    (x, y)
}

/// Trains any dense-input [`Learner`] on the warm split's tabular
/// features — the one generic entry point every baseline row goes
/// through.
pub fn train_baseline<L: Learner<Input = Matrix>>(setup: &ColdStartSetup, cfg: L::Config) -> L {
    let (x, y) = gbdt_features(&setup.data, &setup.split.train, None);
    L::fit(cfg, &x, &y).expect("warm split is non-degenerate")
}

/// AUC of any dense-input [`Learner`] over interaction rows (optionally
/// with imputed stats).
pub fn baseline_auc<L: Learner<Input = Matrix>>(
    model: &L,
    data: &TmallDataset,
    rows: &[u32],
    stats_override: Option<&[f32]>,
) -> f64 {
    let (x, y) = gbdt_features(data, rows, stats_override);
    let scores = model.predict(&x);
    let labels: Vec<bool> = y.iter().map(|&v| v > 0.5).collect();
    atnn_metrics::auc(&scores, &labels).expect("AUC defined")
}

/// Trains the GBDT baseline on the warm split (via [`train_baseline`]).
pub fn train_gbdt(setup: &ColdStartSetup, scale: Scale) -> Gbdt {
    let num_trees = match scale {
        Scale::Tiny => 20,
        Scale::Small => 60,
        Scale::Paper => 80,
    };
    let cfg = GbdtConfig { num_trees, objective: Objective::Logistic, ..GbdtConfig::default() };
    train_baseline::<Gbdt>(setup, cfg)
}

/// AUC of a GBDT over interaction rows (optionally with imputed stats).
pub fn gbdt_auc(
    model: &Gbdt,
    data: &TmallDataset,
    rows: &[u32],
    stats_override: Option<&[f32]>,
) -> f64 {
    baseline_auc(model, data, rows, stats_override)
}

/// An 80/20 restaurant split for the food-delivery experiments.
pub fn eleme_setup(scale: Scale) -> (ElemeDataset, Split) {
    let data = ElemeDataset::generate(eleme_config(scale));
    let mut rng = atnn_tensor::Rng64::seed_from_u64(1213);
    let split = Split::random(data.num_restaurants(), 0.2, &mut rng);
    (data, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_split_isolates_new_arrivals() {
        let setup = ColdStartSetup::generate(Scale::Tiny);
        let first_cold = setup.new_arrivals[0];
        for &r in &setup.split.train {
            assert!(setup.data.interactions[r as usize].item < first_cold);
        }
        for &r in &setup.split.test {
            assert!(setup.data.interactions[r as usize].item >= first_cold);
        }
        assert_eq!(
            setup.new_arrivals.len(),
            setup.data.num_items() / 5,
            "20% of items are held out"
        );
        assert_eq!(setup.warm_items().len() + setup.new_arrivals.len(), setup.data.num_items());
    }

    #[test]
    fn gbdt_features_have_expected_width() {
        let setup = ColdStartSetup::generate(Scale::Tiny);
        let rows: Vec<u32> = (0..50).collect();
        let (x, y) = gbdt_features(&setup.data, &rows, None);
        // 38 profile + 46 stats + 19 user = 103 columns.
        assert_eq!(x.shape(), (50, 103));
        assert_eq!(y.len(), 50);
        // With override, the stats columns are constant.
        let means = vec![0.5f32; 46];
        let (xi, _) = gbdt_features(&setup.data, &rows, Some(&means));
        assert_eq!(xi.get(0, 38), 0.5);
        assert_eq!(xi.get(49, 83), 0.5);
    }
}
