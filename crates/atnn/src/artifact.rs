//! The versioned on-disk serving artifact.
//!
//! A training job packages everything a serving replica needs into one
//! self-describing blob: the simulator configuration (the feature store the
//! model was fit against — regenerating it is deterministic in the seed),
//! the model configuration, the checkpoint weights, and the frozen
//! [`PopularityIndex`] (mean user vector + bias, the paper's §IV-D O(1)
//! cold-path state). The layout is little-endian:
//!
//! ```text
//! magic  b"ATNNART1"                      (8 bytes)
//! format version  u32                     (currently 3; 1 and 2 still
//!                                          decode)
//! payload checksum  u64                   (FNV-1a over everything below)
//! model version  u64                      (publisher's monotonically
//!                                          increasing tag; shown by the
//!                                          serve Health/Stats endpoints)
//! TmallConfig | AtnnConfig | weights blob | index
//! has_ann  u8                             (version ≥ 2 only)
//! ann blob  u64 length + bytes            (present iff has_ann == 1)
//! ```
//!
//! The checksum is verified before anything is parsed, so a truncated or
//! bit-flipped artifact is rejected up front with [`ArtifactError`] instead
//! of instantiating a model from garbage. The weights blob is the
//! [`atnn_nn::save_store`] checkpoint, which carries its own header and
//! checksum — defense in depth for the largest section.
//!
//! Version 2 appends an *optional* serialized ANN retrieval index (the
//! `atnn-ann` IVF blob, itself magic'd, versioned and checksummed). The
//! section is opaque at this layer — the serving snapshot validates it
//! against the embeddings it computes at load and silently rebuilds when
//! the blob is absent or stale, so legacy version-1 artifacts keep loading
//! unchanged.
//!
//! Version 3 appends an *optional* quantized-tables section: the int8
//! cold/warm serving tables ([`atnn_tensor::QuantizedMatrix`] `ATQ8`
//! blobs) the publisher quantized at publish time, behind their own
//! FNV-1a section checksum:
//!
//! ```text
//! has_quant  u8                           (version ≥ 3 only)
//! quant checksum  u64 + quant len  u64    (present iff has_quant == 1)
//! cold ATQ8 blob | warm ATQ8 blob
//! ```
//!
//! A replica that adopts the section serves bit-identically to the
//! publisher's quantized snapshot; one that ignores it (or loads a
//! version ≤ 2 artifact) falls back to the f32 weights, from which the
//! same tables can be re-quantized deterministically.

use std::fmt;
use std::path::Path;

use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_nn::{fnv1a64, NnError};
use atnn_tensor::QuantizedMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::config::{AdversarialMode, AtnnConfig};
use crate::model::Atnn;
use crate::popularity::PopularityIndex;

const MAGIC: &[u8; 8] = b"ATNNART1";
const VERSION: u32 = 3;
/// Oldest format version [`ModelArtifact::decode`] still accepts.
const MIN_VERSION: u32 = 1;

/// Errors from artifact (de)serialization and instantiation.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
    /// The buffer is not a valid artifact.
    Corrupt(&'static str),
    /// The payload bytes do not hash to the checksum in the header.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
    /// The embedded weights blob failed to load into the rebuilt model.
    Weights(NnError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            ArtifactError::Checksum { expected, actual } => {
                write!(
                    f,
                    "artifact checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
                )
            }
            ArtifactError::Weights(e) => write!(f, "artifact weights error: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<NnError> for ArtifactError {
    fn from(e: NnError) -> Self {
        ArtifactError::Weights(e)
    }
}

/// The int8 serving tables a publisher quantized at publish time,
/// persisted so every replica adopts the *same* codes instead of each
/// re-quantizing (deterministic either way; adoption also skips the
/// arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTables {
    /// Quantized generator (cold-path) item vectors, row id == item id.
    pub cold: QuantizedMatrix,
    /// Quantized full-encoder (warm-path) item vectors.
    pub warm: QuantizedMatrix,
}

/// Everything a serving replica needs, as one persistable value.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Publisher's version tag (monotone across publishes).
    pub model_version: u64,
    /// Configuration of the dataset / feature store the model was fit on.
    pub data_config: TmallConfig,
    /// Model architecture + hyper-parameters.
    pub model_config: AtnnConfig,
    /// Checkpoint blob from [`Atnn::save`].
    pub weights: Bytes,
    /// The frozen O(1) serving index.
    pub index: PopularityIndex,
    /// Optional serialized ANN retrieval index (opaque at this layer;
    /// format-version-2 artifacts only).
    pub ann: Option<Bytes>,
    /// Optional int8 serving tables (format-version-3 artifacts only).
    pub quant: Option<QuantTables>,
}

/// A [`ModelArtifact`] instantiated back into live objects.
#[derive(Debug)]
pub struct InstantiatedModel {
    /// The regenerated feature store.
    pub data: TmallDataset,
    /// The model with the artifact's weights restored.
    pub model: Atnn,
    /// The O(1) serving index.
    pub index: PopularityIndex,
    /// The artifact's model version tag.
    pub version: u64,
}

impl ModelArtifact {
    /// Captures a trained model + index into an artifact.
    pub fn capture(
        model: &Atnn,
        data_config: &TmallConfig,
        index: &PopularityIndex,
        model_version: u64,
    ) -> Self {
        ModelArtifact {
            model_version,
            data_config: data_config.clone(),
            model_config: model.config().clone(),
            weights: model.save(),
            index: index.clone(),
            ann: None,
            quant: None,
        }
    }

    /// Attaches a serialized ANN retrieval index to the artifact, so a
    /// serving replica can adopt it instead of rebuilding at load.
    pub fn with_ann(mut self, ann: Bytes) -> Self {
        self.ann = Some(ann);
        self
    }

    /// The persisted ANN index section, if any.
    pub fn ann(&self) -> Option<&[u8]> {
        self.ann.as_deref()
    }

    /// Attaches publish-time int8 serving tables. A loading replica that
    /// sees them serves quantized, bit-identical to the publisher.
    pub fn with_quant(mut self, cold: QuantizedMatrix, warm: QuantizedMatrix) -> Self {
        self.quant = Some(QuantTables { cold, warm });
        self
    }

    /// The persisted quantized serving tables, if any.
    pub fn quant(&self) -> Option<&QuantTables> {
        self.quant.as_ref()
    }

    /// Serializes the artifact (header + checksummed payload).
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        payload.put_u64_le(self.model_version);
        encode_tmall_config(&self.data_config, &mut payload);
        encode_atnn_config(&self.model_config, &mut payload);
        payload.put_u64_le(self.weights.len() as u64);
        payload.put_slice(&self.weights);
        payload.put_u32_le(self.index.mean_user_vec().len() as u32);
        for &v in self.index.mean_user_vec() {
            payload.put_f32_le(v);
        }
        payload.put_f32_le(self.index.bias());
        match &self.ann {
            Some(ann) => {
                payload.put_u8(1);
                payload.put_u64_le(ann.len() as u64);
                payload.put_slice(ann);
            }
            None => payload.put_u8(0),
        }
        match &self.quant {
            Some(q) => {
                payload.put_u8(1);
                let mut section = BytesMut::new();
                q.cold.encode_into(&mut section);
                q.warm.encode_into(&mut section);
                payload.put_u64_le(fnv1a64(&section));
                payload.put_u64_le(section.len() as u64);
                payload.put_slice(&section);
            }
            None => payload.put_u8(0),
        }

        let mut buf = BytesMut::with_capacity(8 + 4 + 8 + payload.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(fnv1a64(&payload));
        buf.put_slice(&payload);
        buf.freeze()
    }

    /// Parses and integrity-checks an encoded artifact.
    pub fn decode(mut buf: Bytes) -> Result<Self, ArtifactError> {
        if buf.remaining() < 8 + 4 + 8 {
            return Err(ArtifactError::Corrupt("header truncated"));
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ArtifactError::Corrupt("bad magic"));
        }
        let format_version = buf.get_u32_le();
        if !(MIN_VERSION..=VERSION).contains(&format_version) {
            return Err(ArtifactError::Corrupt("unsupported version"));
        }
        let expected = buf.get_u64_le();
        let actual = fnv1a64(&buf);
        if actual != expected {
            return Err(ArtifactError::Checksum { expected, actual });
        }

        let model_version = read_u64(&mut buf)?;
        let data_config = decode_tmall_config(&mut buf)?;
        let model_config = decode_atnn_config(&mut buf)?;
        let weights_len = read_u64(&mut buf)? as usize;
        if buf.remaining() < weights_len {
            return Err(ArtifactError::Corrupt("weights truncated"));
        }
        let weights = buf.slice(0..weights_len);
        buf.advance(weights_len);
        let dim = read_u32(&mut buf)? as usize;
        if dim == 0 || buf.remaining() < dim * 4 + 4 {
            return Err(ArtifactError::Corrupt("index truncated"));
        }
        let mut mean = Vec::with_capacity(dim);
        for _ in 0..dim {
            mean.push(buf.get_f32_le());
        }
        let bias = buf.get_f32_le();
        let ann = if format_version >= 2 {
            if buf.remaining() < 1 {
                return Err(ArtifactError::Corrupt("ann section truncated"));
            }
            match buf.get_u8() {
                0 => None,
                1 => {
                    let len = read_u64(&mut buf)? as usize;
                    if buf.remaining() < len {
                        return Err(ArtifactError::Corrupt("ann blob truncated"));
                    }
                    let ann = buf.slice(0..len);
                    buf.advance(len);
                    Some(ann)
                }
                _ => return Err(ArtifactError::Corrupt("bad ann flag")),
            }
        } else {
            None
        };
        let quant = if format_version >= 3 {
            if buf.remaining() < 1 {
                return Err(ArtifactError::Corrupt("quant section truncated"));
            }
            match buf.get_u8() {
                0 => None,
                1 => {
                    let section_sum = read_u64(&mut buf)?;
                    let len = read_u64(&mut buf)? as usize;
                    if buf.remaining() < len {
                        return Err(ArtifactError::Corrupt("quant section truncated"));
                    }
                    let mut section = buf.slice(0..len);
                    buf.advance(len);
                    if fnv1a64(&section) != section_sum {
                        return Err(ArtifactError::Corrupt("quant section checksum mismatch"));
                    }
                    let cold = QuantizedMatrix::decode(&mut section)
                        .map_err(|_| ArtifactError::Corrupt("bad quant cold table"))?;
                    let warm = QuantizedMatrix::decode(&mut section)
                        .map_err(|_| ArtifactError::Corrupt("bad quant warm table"))?;
                    if section.remaining() != 0 {
                        return Err(ArtifactError::Corrupt("quant section trailing bytes"));
                    }
                    Some(QuantTables { cold, warm })
                }
                _ => return Err(ArtifactError::Corrupt("bad quant flag")),
            }
        } else {
            None
        };
        if buf.remaining() != 0 {
            return Err(ArtifactError::Corrupt("trailing bytes"));
        }
        Ok(ModelArtifact {
            model_version,
            data_config,
            model_config,
            weights,
            index: PopularityIndex::from_parts(mean, bias),
            ann,
            quant,
        })
    }

    /// Writes the encoded artifact to `path` atomically: the bytes land in
    /// a sibling temp file first and are renamed into place, so a reader
    /// (or a crash) never observes a half-written artifact.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode().as_ref())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes an artifact file.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        Self::decode(Bytes::from(bytes))
    }

    /// Rebuilds the live objects: regenerates the dataset (deterministic in
    /// its seed), constructs the model from the stored configuration, and
    /// restores the checkpoint weights.
    pub fn instantiate(&self) -> Result<InstantiatedModel, ArtifactError> {
        let data = TmallDataset::generate(self.data_config.clone());
        let mut model = Atnn::new(self.model_config.clone(), &data);
        model.load(self.weights.clone())?;
        Ok(InstantiatedModel {
            data,
            model,
            index: self.index.clone(),
            version: self.model_version,
        })
    }
}

fn read_u32(buf: &mut Bytes) -> Result<u32, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Corrupt("field truncated"));
    }
    Ok(buf.get_u32_le())
}

fn read_u64(buf: &mut Bytes) -> Result<u64, ArtifactError> {
    if buf.remaining() < 8 {
        return Err(ArtifactError::Corrupt("field truncated"));
    }
    Ok(buf.get_u64_le())
}

fn read_f32(buf: &mut Bytes) -> Result<f32, ArtifactError> {
    Ok(f32::from_bits(read_u32(buf)?))
}

fn read_bool(buf: &mut Bytes) -> Result<bool, ArtifactError> {
    if buf.remaining() < 1 {
        return Err(ArtifactError::Corrupt("field truncated"));
    }
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ArtifactError::Corrupt("bad bool")),
    }
}

fn put_dims(dims: &[usize], buf: &mut BytesMut) {
    buf.put_u32_le(dims.len() as u32);
    for &d in dims {
        buf.put_u64_le(d as u64);
    }
}

fn read_dims(buf: &mut Bytes) -> Result<Vec<usize>, ArtifactError> {
    let n = read_u32(buf)? as usize;
    if n > 1024 {
        return Err(ArtifactError::Corrupt("implausible dims length"));
    }
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        dims.push(read_u64(buf)? as usize);
    }
    Ok(dims)
}

fn encode_tmall_config(cfg: &TmallConfig, buf: &mut BytesMut) {
    buf.put_u64_le(cfg.num_users as u64);
    buf.put_u64_le(cfg.num_items as u64);
    buf.put_u64_le(cfg.num_interactions as u64);
    buf.put_u64_le(cfg.latent_dim as u64);
    buf.put_f32_le(cfg.profile_noise);
    buf.put_f32_le(cfg.profile_flip_prob);
    buf.put_f32_le(cfg.stats_noise);
    buf.put_f32_le(cfg.affinity_weight);
    buf.put_f32_le(cfg.quality_weight);
    buf.put_f32_le(cfg.interaction_strength);
    buf.put_f32_le(cfg.bias);
    buf.put_u8(cfg.include_ids as u8);
    buf.put_u64_le(cfg.id_hash_buckets as u64);
    buf.put_u64_le(cfg.seed);
}

fn decode_tmall_config(buf: &mut Bytes) -> Result<TmallConfig, ArtifactError> {
    Ok(TmallConfig {
        num_users: read_u64(buf)? as usize,
        num_items: read_u64(buf)? as usize,
        num_interactions: read_u64(buf)? as usize,
        latent_dim: read_u64(buf)? as usize,
        profile_noise: read_f32(buf)?,
        profile_flip_prob: read_f32(buf)?,
        stats_noise: read_f32(buf)?,
        affinity_weight: read_f32(buf)?,
        quality_weight: read_f32(buf)?,
        interaction_strength: read_f32(buf)?,
        bias: read_f32(buf)?,
        include_ids: read_bool(buf)?,
        id_hash_buckets: read_u64(buf)? as usize,
        seed: read_u64(buf)?,
    })
}

fn encode_atnn_config(cfg: &AtnnConfig, buf: &mut BytesMut) {
    buf.put_u64_le(cfg.vec_dim as u64);
    put_dims(&cfg.deep_dims, buf);
    buf.put_u64_le(cfg.cross_depth as u64);
    buf.put_u8(cfg.use_cross as u8);
    buf.put_u8(match cfg.adversarial {
        AdversarialMode::None => 0,
        AdversarialMode::Similarity => 1,
        AdversarialMode::LearnedDiscriminator => 2,
    });
    buf.put_u8(cfg.shared_embeddings as u8);
    buf.put_f32_le(cfg.lambda);
    put_dims(&cfg.disc_dims, buf);
    buf.put_u64_le(cfg.max_embed_dim as u64);
    buf.put_f32_le(cfg.dropout);
    buf.put_f32_le(cfg.learning_rate);
    buf.put_f32_le(cfg.grad_clip);
    buf.put_u64_le(cfg.seed);
}

fn decode_atnn_config(buf: &mut Bytes) -> Result<AtnnConfig, ArtifactError> {
    let vec_dim = read_u64(buf)? as usize;
    let deep_dims = read_dims(buf)?;
    let cross_depth = read_u64(buf)? as usize;
    let use_cross = read_bool(buf)?;
    if buf.remaining() < 1 {
        return Err(ArtifactError::Corrupt("field truncated"));
    }
    let adversarial = match buf.get_u8() {
        0 => AdversarialMode::None,
        1 => AdversarialMode::Similarity,
        2 => AdversarialMode::LearnedDiscriminator,
        _ => return Err(ArtifactError::Corrupt("bad adversarial mode")),
    };
    Ok(AtnnConfig {
        vec_dim,
        deep_dims,
        cross_depth,
        use_cross,
        adversarial,
        shared_embeddings: read_bool(buf)?,
        lambda: read_f32(buf)?,
        disc_dims: read_dims(buf)?,
        max_embed_dim: read_u64(buf)? as usize,
        dropout: read_f32(buf)?,
        learning_rate: read_f32(buf)?,
        grad_clip: read_f32(buf)?,
        seed: read_u64(buf)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallConfig;

    fn trained() -> (Atnn, TmallDataset, TmallConfig) {
        let cfg = TmallConfig {
            num_users: 80,
            num_items: 160,
            num_interactions: 1_500,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(cfg.clone());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        CtrTrainer::new(TrainOptions { epochs: 1, ..Default::default() })
            .train(&mut model, &data, None)
            .unwrap();
        (model, data, cfg)
    }

    fn capture(model: &Atnn, data: &TmallDataset, cfg: &TmallConfig) -> ModelArtifact {
        let group: Vec<u32> = (0..40).collect();
        let index = PopularityIndex::build(model, data, &group);
        ModelArtifact::capture(model, cfg, &index, 3)
    }

    #[test]
    fn encode_decode_roundtrip_is_lossless() {
        let (model, data, cfg) = trained();
        let artifact = capture(&model, &data, &cfg);
        let back = ModelArtifact::decode(artifact.encode()).unwrap();
        assert_eq!(back.model_version, 3);
        assert_eq!(back.data_config, cfg);
        assert_eq!(back.model_config, *model.config());
        assert_eq!(back.weights, artifact.weights);
        assert_eq!(back.index, artifact.index);
    }

    #[test]
    fn instantiate_reproduces_predictions_bit_for_bit() {
        let (model, data, cfg) = trained();
        let artifact = capture(&model, &data, &cfg);
        let items: Vec<u32> = (0..30).collect();
        let expected = artifact.index.score_new_arrivals(&model, &data, &items);

        let live = ModelArtifact::decode(artifact.encode()).unwrap().instantiate().unwrap();
        let got = live.index.score_new_arrivals(&live.model, &live.data, &items);
        assert_eq!(got, expected, "artifact roundtrip must be bit-identical");
        assert_eq!(live.version, 3);
    }

    #[test]
    fn file_roundtrip_and_atomic_save() {
        let (model, data, cfg) = trained();
        let artifact = capture(&model, &data, &cfg);
        let path =
            std::env::temp_dir().join(format!("atnn_artifact_test_{}.atnn", std::process::id()));
        artifact.save_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "temp file must be renamed away");
        let back = ModelArtifact::load_from(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.index, artifact.index);
        assert_eq!(back.weights, artifact.weights);
    }

    #[test]
    fn ann_section_round_trips_and_legacy_v1_artifacts_still_decode() {
        let (model, data, cfg) = trained();
        let artifact = capture(&model, &data, &cfg);

        // The ann blob is opaque at this layer; any bytes must survive.
        let blob = Bytes::from_static(b"ATNNIVF1-opaque-test-bytes");
        let back = ModelArtifact::decode(artifact.clone().with_ann(blob.clone()).encode()).unwrap();
        assert_eq!(back.ann(), Some(blob.as_ref()));
        assert_eq!(back.index, artifact.index);
        assert_eq!(back.weights, artifact.weights);

        // A legacy version-1 artifact is the same payload minus the quant
        // and ann sections: drop the trailing has_quant and has_ann
        // flags, patch the format version down and recompute the
        // checksum.
        let v3 = artifact.encode();
        let mut v1 = v3.as_ref().to_vec();
        assert_eq!(v1.pop(), Some(0), "a v3 artifact without quant ends with has_quant = 0");
        assert_eq!(v1.pop(), Some(0), "...preceded by has_ann = 0 when ann is absent");
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let checksum = fnv1a64(&v1[20..]);
        v1[12..20].copy_from_slice(&checksum.to_le_bytes());
        let legacy = ModelArtifact::decode(Bytes::from(v1)).unwrap();
        assert!(legacy.ann().is_none(), "v1 artifacts carry no ann section");
        assert_eq!(legacy.index, artifact.index);
        assert_eq!(legacy.weights, artifact.weights);
        assert_eq!(legacy.model_version, artifact.model_version);
    }

    #[test]
    fn quant_section_round_trips_and_legacy_v2_artifacts_still_decode() {
        use atnn_tensor::{Matrix, QuantizedMatrix};
        let (model, data, cfg) = trained();
        let artifact = capture(&model, &data, &cfg);

        // Quantized tables survive an encode/decode round trip exactly.
        let cold = QuantizedMatrix::from_matrix(&Matrix::from_fn(6, 4, |i, j| {
            (i as f32 - 2.5) * 0.3 + j as f32 * 0.01
        }));
        let warm = QuantizedMatrix::from_matrix(&Matrix::from_fn(6, 4, |i, j| {
            (j as f32 - 1.5) * 0.2 - i as f32 * 0.05
        }));
        let quantized = artifact.clone().with_quant(cold.clone(), warm.clone());
        let back = ModelArtifact::decode(quantized.encode()).unwrap();
        let q = back.quant().expect("quant section survives");
        assert_eq!(q.cold, cold);
        assert_eq!(q.warm, warm);
        assert_eq!(back.weights, artifact.weights);

        // A corrupted quant section is rejected by its own checksum even
        // before the table blobs are parsed.
        let blob = quantized.encode();
        let mut flipped = blob.as_ref().to_vec();
        let n = flipped.len();
        flipped[n - 3] ^= 0x01;
        // Fix up the outer payload checksum so only the section sum trips.
        let checksum = fnv1a64(&flipped[20..]);
        flipped[12..20].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            ModelArtifact::decode(Bytes::from(flipped)),
            Err(ArtifactError::Corrupt("quant section checksum mismatch"))
        ));

        // A pre-quantization version-2 artifact (ann section, no quant
        // section) still decodes: drop the trailing has_quant flag, patch
        // the format version down and recompute the checksum.
        let ann_blob = Bytes::from_static(b"ATNNIVF1-opaque-test-bytes");
        let v3 = artifact.clone().with_ann(ann_blob.clone()).encode();
        let mut v2 = v3.as_ref().to_vec();
        assert_eq!(v2.pop(), Some(0), "a v3 artifact without quant ends with has_quant = 0");
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let checksum = fnv1a64(&v2[20..]);
        v2[12..20].copy_from_slice(&checksum.to_le_bytes());
        let legacy = ModelArtifact::decode(Bytes::from(v2)).unwrap();
        assert!(legacy.quant().is_none(), "v2 artifacts carry no quant section");
        assert_eq!(legacy.ann(), Some(ann_blob.as_ref()), "the ann section is preserved");
        assert_eq!(legacy.index, artifact.index);
        assert_eq!(legacy.weights, artifact.weights);
        assert_eq!(legacy.model_version, artifact.model_version);
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let (model, data, cfg) = trained();
        let blob = capture(&model, &data, &cfg).encode();
        // Bit flip in the payload: checksum catches it.
        let mut flipped = blob.as_ref().to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            ModelArtifact::decode(Bytes::from(flipped)),
            Err(ArtifactError::Checksum { .. })
        ));
        // Truncations at every region boundary.
        for cut in [0usize, 7, 11, 19, 40, blob.len() - 1] {
            assert!(ModelArtifact::decode(blob.slice(0..cut)).is_err(), "cut={cut}");
        }
        // Wrong magic.
        let mut bad = blob.as_ref().to_vec();
        bad[0] = b'X';
        assert!(matches!(
            ModelArtifact::decode(Bytes::from(bad)),
            Err(ArtifactError::Corrupt("bad magic"))
        ));
    }
}
