//! One tower of the two-tower architecture: Deep & Cross over an encoded
//! input, projected to the shared vector space.
//!
//! Per the paper, "Deep & Cross Network (DCN) is utilized in all generators
//! and encoders": the tower runs a cross stack and a deep MLP in parallel
//! over the same input, concatenates the two, and projects to `vec_dim`.
//! With `use_cross = false` the tower is the fully connected variant used
//! by the TNN-FC baseline.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_nn::{Activation, CrossNet, Linear, Mlp};
use atnn_tensor::{Init, Rng64};

/// A DCN (or FC) tower `input -> vec_dim`.
#[derive(Debug, Clone)]
pub struct Tower {
    cross: Option<CrossNet>,
    deep: Mlp,
    project: Linear,
    in_dim: usize,
    vec_dim: usize,
}

impl Tower {
    /// Builds a tower over inputs of width `in_dim`.
    ///
    /// `deep_dims` are the hidden widths of the deep half; the projection
    /// layer maps `[cross_out | deep_out]` (or just `deep_out`) to
    /// `vec_dim`.
    // The argument list mirrors the AtnnConfig fields one-to-one; a
    // builder here would just restate the config struct.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        in_dim: usize,
        deep_dims: &[usize],
        cross_depth: usize,
        use_cross: bool,
        vec_dim: usize,
    ) -> Self {
        let cross = (use_cross && cross_depth > 0)
            .then(|| CrossNet::new(store, rng, &format!("{name}.cross"), in_dim, cross_depth));
        let mut mlp_dims = vec![in_dim];
        mlp_dims.extend_from_slice(deep_dims);
        let deep = Mlp::new(store, rng, &format!("{name}.deep"), &mlp_dims, Activation::Relu);
        let combined = deep.out_dim() + cross.as_ref().map_or(0, |_| in_dim);
        let project = Linear::new(
            store,
            rng,
            &format!("{name}.project"),
            combined,
            vec_dim,
            Init::XavierUniform,
            true,
        );
        Tower { cross, deep, project, in_dim, vec_dim }
    }

    /// Forward pass: `[batch, in_dim] -> [batch, vec_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Tower input width");
        let deep_out = self.deep.forward(g, store, x);
        let combined = match &self.cross {
            Some(cross) => {
                let cross_out = cross.forward(g, store, x);
                g.concat_cols(cross_out, deep_out)
            }
            None => deep_out,
        };
        self.project.forward(g, store, combined)
    }

    /// All parameter handles of the tower.
    pub fn params(&self) -> Vec<ParamId> {
        let mut ids = Vec::new();
        if let Some(c) = &self.cross {
            ids.extend(c.params());
        }
        ids.extend(self.deep.params());
        ids.extend(self.project.params());
        ids
    }

    /// Output vector width.
    pub fn vec_dim(&self) -> usize {
        self.vec_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Whether the cross stack is present.
    pub fn has_cross(&self) -> bool {
        self.cross.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_tensor::Matrix;

    fn build(use_cross: bool, cross_depth: usize) -> (ParamStore, Tower) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let tower = Tower::new(&mut store, &mut rng, "t", 10, &[16, 8], cross_depth, use_cross, 4);
        (store, tower)
    }

    #[test]
    fn output_shape_is_vec_dim() {
        for (use_cross, depth) in [(true, 2), (false, 2), (true, 0)] {
            let (store, tower) = build(use_cross, depth);
            let mut g = Graph::new();
            let x = g.input(Matrix::from_fn(5, 10, |i, j| ((i + j) % 3) as f32 * 0.1));
            let v = tower.forward(&mut g, &store, x);
            assert_eq!(g.value(v).shape(), (5, 4));
            assert_eq!(tower.vec_dim(), 4);
            assert_eq!(tower.in_dim(), 10);
        }
    }

    #[test]
    fn cross_flag_controls_structure_and_params() {
        let (_, dcn) = build(true, 2);
        let (_, fc) = build(false, 2);
        assert!(dcn.has_cross());
        assert!(!fc.has_cross());
        assert!(dcn.params().len() > fc.params().len());
        let (_, zero_depth) = build(true, 0);
        assert!(!zero_depth.has_cross(), "depth 0 disables crossing");
    }

    #[test]
    fn tower_is_trainable_end_to_end() {
        // Regress the tower onto a linear function of its input — a task a
        // DCN tower must fit almost exactly.
        let (mut store, tower) = build(true, 2);
        let mut rng = Rng64::seed_from_u64(9);
        let x = Matrix::from_fn(16, 10, |_, _| rng.normal_with(0.0, 0.5));
        let y = Matrix::from_fn(16, 4, |i, j| 0.5 * x.get(i, j));
        let params = tower.params();
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            store.zero_grads(&params);
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let v = tower.forward(&mut g, &store, xv);
            let loss = g.mse_loss(v, &y);
            last = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            for &p in &params {
                let grad = store.grad(p).clone();
                store.value_mut(p).add_assign_scaled(&grad, -0.05).unwrap();
            }
        }
        assert!(last < 0.05, "tower failed to fit: {last}");
    }
}
