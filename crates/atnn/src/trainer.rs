//! Training loop and evaluation for the CTR task (paper §IV-A).

use atnn_data::dataset::BatchIter;
use atnn_data::schema::FeatureBlock;
use atnn_data::tmall::TmallDataset;
use atnn_obs::{Event, StderrSink};
use atnn_tensor::{pool, BackendKind, Matrix, Rng64};

use crate::config::ConfigError;
use crate::model::{Atnn, StepLosses};

/// Why a training run could not start or finish.
#[derive(Debug)]
pub enum TrainError {
    /// The training row set was empty.
    EmptyTrainingSet,
    /// `train_with_validation` was given an empty validation set.
    EmptyValidationSet,
    /// Negative downsampling removed every training row.
    DownsampledToEmpty,
    /// Restoring the best-epoch checkpoint after early stopping failed
    /// (the blob came from [`Atnn::save`] moments earlier, so this
    /// indicates memory corruption rather than user error).
    Restore(atnn_nn::NnError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::EmptyValidationSet => write!(f, "empty validation set"),
            TrainError::DownsampledToEmpty => {
                write!(f, "negative downsampling removed every training row")
            }
            TrainError::Restore(e) => write!(f, "restore best checkpoint: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<atnn_nn::NnError> for TrainError {
    fn from(e: atnn_nn::NnError) -> Self {
        TrainError::Restore(e)
    }
}

/// Options for [`CtrTrainer`].
///
/// `#[non_exhaustive]`: construct via [`TrainOptions::default`] or the
/// validating [`TrainOptions::builder`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TrainOptions {
    /// Passes over the training interactions.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
    /// Keep only this fraction of *negative* training rows (standard CTR
    /// imbalance handling; positives always survive). `None` trains on
    /// everything. Ranking metrics (AUC) are unaffected by the induced
    /// base-rate shift; calibrated probabilities need
    /// [`atnn_data::dataset::recalibrate_probability`].
    pub negative_keep_rate: Option<f32>,
    /// Compute backend the whole run (steps + pooled evaluation) executes
    /// under; `None` inherits the process default (`ATNN_BACKEND`, or
    /// avx2). `FastMath` trades bit-identity for FMA throughput — see the
    /// `atnn_tensor::backend` docs — so training and serving can pick
    /// differently.
    pub backend: Option<BackendKind>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 2,
            batch_size: 256,
            seed: 97,
            verbose: false,
            negative_keep_rate: None,
            backend: None,
        }
    }
}

impl TrainOptions {
    /// A validating builder seeded from [`TrainOptions::default`].
    pub fn builder() -> TrainOptionsBuilder {
        TrainOptionsBuilder { opts: TrainOptions::default() }
    }
}

/// Builder for [`TrainOptions`]; [`TrainOptionsBuilder::build`] rejects
/// zero `epochs`/`batch_size` and out-of-range `negative_keep_rate` at
/// construction instead of panicking (or looping forever) mid-train.
#[derive(Debug, Clone)]
pub struct TrainOptionsBuilder {
    opts: TrainOptions,
}

impl TrainOptionsBuilder {
    /// Sets the number of passes over the training interactions.
    pub fn epochs(mut self, v: usize) -> Self {
        self.opts.epochs = v;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, v: usize) -> Self {
        self.opts.batch_size = v;
        self
    }

    /// Sets the shuffle seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.opts.seed = v;
        self
    }

    /// Enables one human-readable progress line per epoch on stderr.
    pub fn verbose(mut self, v: bool) -> Self {
        self.opts.verbose = v;
        self
    }

    /// Sets the negative-downsampling keep rate (`None` keeps everything).
    pub fn negative_keep_rate(mut self, v: Option<f32>) -> Self {
        self.opts.negative_keep_rate = v;
        self
    }

    /// Sets the compute backend for the run (`None` inherits the process
    /// default). The name→kind parse (`"fastmath".parse()`) happens before
    /// this setter, so an invalid *name* is a typed
    /// [`atnn_tensor::UnknownBackend`] error at the config edge, never a
    /// panic mid-train.
    pub fn backend(mut self, v: Option<BackendKind>) -> Self {
        self.opts.backend = v;
        self
    }

    /// Validates and returns the options.
    pub fn build(self) -> Result<TrainOptions, ConfigError> {
        let o = &self.opts;
        if o.epochs == 0 {
            return Err(ConfigError::new("epochs", "must be positive"));
        }
        if o.batch_size == 0 {
            return Err(ConfigError::new("batch_size", "must be positive"));
        }
        if let Some(keep) = o.negative_keep_rate {
            if !(keep > 0.0 && keep <= 1.0) {
                return Err(ConfigError::new("negative_keep_rate", "must be in (0, 1]"));
            }
        }
        Ok(self.opts)
    }
}

/// Mean losses of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean `L_i` over batches.
    pub loss_i: f32,
    /// Mean `L_g` over batches.
    pub loss_g: f32,
    /// Mean `L_s` over batches.
    pub loss_s: f32,
    /// Validation AUC of the generated (cold-start) path, when a
    /// validation set was supplied.
    pub val_auc: Option<f64>,
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// One entry per epoch (possibly fewer than requested when early
    /// stopping fires).
    pub epochs: Vec<EpochStats>,
    /// Epoch whose weights the model ended up with (differs from the last
    /// epoch when early stopping restored a better checkpoint).
    pub best_epoch: usize,
}

/// Drives [`Atnn::train_step`] over a [`TmallDataset`] interaction log.
#[derive(Debug, Clone)]
pub struct CtrTrainer {
    opts: TrainOptions,
}

impl CtrTrainer {
    /// Creates a trainer.
    pub fn new(opts: TrainOptions) -> Self {
        CtrTrainer { opts }
    }

    /// Trains on `rows` (indices into `data.interactions`; `None` = all).
    ///
    /// # Errors
    /// [`TrainError::EmptyTrainingSet`] / [`TrainError::DownsampledToEmpty`]
    /// when no rows are left to train on.
    pub fn train(
        &self,
        model: &mut Atnn,
        data: &TmallDataset,
        rows: Option<&[u32]>,
    ) -> Result<TrainReport, TrainError> {
        self.run(model, data, rows, None, 0)
    }

    /// Trains with early stopping: after each epoch the cold-start
    /// (generated-path) AUC on `val_rows` is measured; when it fails to
    /// improve for `patience` consecutive epochs, training stops and the
    /// weights of the best epoch are restored.
    ///
    /// # Errors
    /// [`TrainError::EmptyValidationSet`] when `val_rows` is empty, the
    /// [`CtrTrainer::train`] errors for degenerate training sets, and
    /// [`TrainError::Restore`] if reloading the best checkpoint fails.
    pub fn train_with_validation(
        &self,
        model: &mut Atnn,
        data: &TmallDataset,
        train_rows: &[u32],
        val_rows: &[u32],
        patience: usize,
    ) -> Result<TrainReport, TrainError> {
        if val_rows.is_empty() {
            return Err(TrainError::EmptyValidationSet);
        }
        self.run(model, data, Some(train_rows), Some(val_rows), patience)
    }

    fn run(
        &self,
        model: &mut Atnn,
        data: &TmallDataset,
        rows: Option<&[u32]>,
        val_rows: Option<&[u32]>,
        patience: usize,
    ) -> Result<TrainReport, TrainError> {
        // The scope covers every kernel of the run — steps and pooled
        // evaluation alike (the pool forwards it to its workers).
        atnn_tensor::with_backend_opt(self.opts.backend, || {
            self.run_scoped(model, data, rows, val_rows, patience)
        })
    }

    fn run_scoped(
        &self,
        model: &mut Atnn,
        data: &TmallDataset,
        rows: Option<&[u32]>,
        val_rows: Option<&[u32]>,
        patience: usize,
    ) -> Result<TrainReport, TrainError> {
        let all: Vec<u32>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all = (0..data.interactions.len() as u32).collect();
                &all
            }
        };
        if rows.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let rows: Vec<u32> = match self.opts.negative_keep_rate {
            Some(keep) => {
                let labels: Vec<bool> =
                    rows.iter().map(|&r| data.interactions[r as usize].clicked).collect();
                let mut rng = Rng64::seed_from_u64(self.opts.seed ^ 0x0DD5);
                atnn_data::dataset::downsample_negatives(&labels, keep, &mut rng)
                    .into_iter()
                    .map(|i| rows[i as usize])
                    .collect()
            }
            None => rows.to_vec(),
        };
        if rows.is_empty() {
            return Err(TrainError::DownsampledToEmpty);
        }
        let mut iter = BatchIter::new(
            rows.clone(),
            self.opts.batch_size,
            Rng64::seed_from_u64(self.opts.seed),
        );
        let mut report =
            TrainReport { epochs: Vec::with_capacity(self.opts.epochs), best_epoch: 0 };
        let mut best_auc = f64::NEG_INFINITY;
        let mut best_weights: Option<bytes::Bytes> = None;
        let mut since_best = 0usize;
        for epoch in 0..self.opts.epochs {
            let mut acc = StepLosses::default();
            let mut batches = 0usize;
            while let Some(batch) = iter.next_batch() {
                let (profile, stats, users, labels) = gather_batch(data, batch);
                // Step timing is gated on the obs enabled flag: with no
                // active sink the cost is one atomic load per batch (the
                // alloc-budget test depends on this path staying silent).
                let t0 = atnn_obs::timing_enabled().then(std::time::Instant::now);
                let losses = model.train_step(&profile, &stats, &users, &labels);
                if let Some(t0) = t0 {
                    atnn_obs::emit(&Event::StepTiming {
                        section: "ctr.train_step".into(),
                        ns: t0.elapsed().as_nanos() as u64,
                        rows: batch.len() as u64,
                    });
                }
                acc.loss_i += losses.loss_i;
                acc.loss_g += losses.loss_g;
                acc.loss_s += losses.loss_s;
                batches += 1;
            }
            iter.next_epoch();
            let n = batches.max(1) as f32;
            let val_auc =
                val_rows.map(|rows| evaluate_auc_generated(model, data, rows).unwrap_or(0.5));
            let stats = EpochStats {
                epoch,
                loss_i: acc.loss_i / n,
                loss_g: acc.loss_g / n,
                loss_s: acc.loss_s / n,
                val_auc,
            };
            let epoch_event = Event::EpochEnd {
                model: "ctr".into(),
                epoch: epoch as u64,
                loss_i: stats.loss_i,
                loss_g: stats.loss_g,
                loss_s: stats.loss_s,
                val_auc,
            };
            if self.opts.verbose {
                eprintln!("{}", StderrSink::render(&epoch_event));
            }
            atnn_obs::emit(&epoch_event);
            // Kernel-selection snapshot (cumulative process-wide counts),
            // tagged with the backend this run executes under: makes
            // tiled/small/parallel dispatch attributable per backend in
            // the JSONL stream.
            let (tiled, small, edge_tiles, parallel) = atnn_tensor::gemm_dispatch_counts();
            atnn_obs::emit(&Event::KernelDispatch {
                tiled,
                small,
                edge_tiles,
                parallel,
                backend: atnn_tensor::current_backend_kind().name().into(),
            });
            report.epochs.push(stats);

            if let Some(auc) = val_auc {
                if auc > best_auc {
                    best_auc = auc;
                    report.best_epoch = epoch;
                    best_weights = Some(model.save());
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best > patience {
                        atnn_obs::emit(&Event::EarlyStop {
                            model: "ctr".into(),
                            stopped_epoch: epoch as u64,
                            best_epoch: report.best_epoch as u64,
                        });
                        break;
                    }
                }
            } else {
                report.best_epoch = epoch;
            }
        }
        if let Some(blob) = best_weights {
            model.load(blob)?;
        }
        Ok(report)
    }
}

/// Materializes the feature blocks and labels of a batch of interaction
/// rows. The three feature encodes are independent, so they fork across
/// the shared [`pool`] (each encode is itself deterministic, so the fork
/// cannot change any result).
pub fn gather_batch(
    data: &TmallDataset,
    rows: &[u32],
) -> (FeatureBlock, FeatureBlock, FeatureBlock, Matrix) {
    let items: Vec<u32> = rows.iter().map(|&r| data.interactions[r as usize].item).collect();
    let users: Vec<u32> = rows.iter().map(|&r| data.interactions[r as usize].user).collect();
    let labels = Matrix::from_fn(rows.len(), 1, |i, _| {
        data.interactions[rows[i] as usize].clicked as u8 as f32
    });
    let (profile, stats, user_block) = pool::join3(
        || data.encode_item_profiles(&items),
        || data.encode_item_stats(&items),
        || data.encode_users(&users),
    );
    (profile, stats, user_block, labels)
}

const EVAL_BATCH: usize = 512;

/// AUC of the full-feature encoder path over interaction `rows` (the
/// paper's "AUC for complete item features" column).
pub fn evaluate_auc_full(model: &Atnn, data: &TmallDataset, rows: &[u32]) -> Option<f64> {
    evaluate_auc_with(data, rows, |profile, stats, users| {
        model.predict_ctr_full(profile, stats, users)
    })
}

/// AUC of the generated (profile-only) path — ATNN's cold-start column.
pub fn evaluate_auc_generated(model: &Atnn, data: &TmallDataset, rows: &[u32]) -> Option<f64> {
    evaluate_auc_with(data, rows, |profile, _stats, users| {
        model.predict_ctr_generated(profile, users)
    })
}

/// AUC of the encoder path with statistics *imputed* by `means` — how a
/// statistics-hungry model degrades on cold items (the baselines'
/// "profile only" column).
pub fn evaluate_auc_imputed(
    model: &Atnn,
    data: &TmallDataset,
    rows: &[u32],
    means: &[f32],
) -> Option<f64> {
    evaluate_auc_with(data, rows, |profile, _stats, users| {
        let imputed = Atnn::imputed_stats_block(profile.len(), means);
        model.predict_ctr_full(profile, &imputed, users)
    })
}

fn evaluate_auc_with(
    data: &TmallDataset,
    rows: &[u32],
    predict: impl Fn(&FeatureBlock, &FeatureBlock, &FeatureBlock) -> Vec<f32> + Sync,
) -> Option<f64> {
    // Shard the rows over the pool in `EVAL_BATCH` chunks. The chunk
    // boundaries match the serial loop and results are re-concatenated in
    // input order, so the AUC input is bit-identical at any thread count.
    let per_chunk = pool::map_chunks(rows, EVAL_BATCH, pool::effective_threads(), |chunk| {
        let (profile, stats, users, y) = gather_batch(data, chunk);
        let scores = predict(&profile, &stats, &users);
        let labels: Vec<bool> = y.as_slice().iter().map(|&v| v > 0.5).collect();
        (scores, labels)
    });
    let mut scores = Vec::with_capacity(rows.len());
    let mut labels = Vec::with_capacity(rows.len());
    for (s, l) in per_chunk {
        scores.extend(s);
        labels.extend(l);
    }
    atnn_metrics::auc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtnnConfig;
    use atnn_data::dataset::Split;
    use atnn_data::tmall::TmallConfig;

    fn data() -> TmallDataset {
        TmallDataset::generate(TmallConfig {
            num_users: 150,
            num_items: 300,
            num_interactions: 4_000,
            ..TmallConfig::tiny()
        })
    }

    #[test]
    fn training_improves_full_path_auc_on_held_out_items() {
        let data = data();
        // Cold-start split: hold out item ids >= 240 entirely.
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= 240);
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let before = evaluate_auc_full(&model, &data, &split.test).unwrap();
        let report = CtrTrainer::new(TrainOptions { epochs: 2, ..Default::default() })
            .train(&mut model, &data, Some(&split.train))
            .unwrap();
        let after = evaluate_auc_full(&model, &data, &split.test).unwrap();
        assert!(after > before.max(0.55), "AUC {before} -> {after}");
        // Losses decline across epochs.
        assert!(report.epochs[1].loss_i <= report.epochs[0].loss_i + 0.01);
    }

    #[test]
    fn generated_path_beats_untrained_after_training() {
        let data = data();
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= 240);
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        CtrTrainer::new(TrainOptions { epochs: 2, ..Default::default() })
            .train(&mut model, &data, Some(&split.train))
            .unwrap();
        let gen_auc = evaluate_auc_generated(&model, &data, &split.test).unwrap();
        assert!(gen_auc > 0.55, "cold-start AUC {gen_auc}");
    }

    #[test]
    fn gather_batch_aligns_rows() {
        let data = data();
        let (profile, stats, users, labels) = gather_batch(&data, &[0, 5, 9]);
        assert_eq!(profile.len(), 3);
        assert_eq!(stats.len(), 3);
        assert_eq!(users.len(), 3);
        assert_eq!(labels.shape(), (3, 1));
        let i5 = &data.interactions[5];
        assert_eq!(labels.get(1, 0), i5.clicked as u8 as f32);
    }

    #[test]
    fn negative_downsampling_still_learns() {
        let data = data();
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= 240);
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions { epochs: 3, negative_keep_rate: Some(0.4), ..Default::default() };
        CtrTrainer::new(opts).train(&mut model, &data, Some(&split.train)).unwrap();
        let auc = evaluate_auc_full(&model, &data, &split.test).unwrap();
        assert!(auc > 0.62, "downsampled training must still rank: {auc:.4}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = data();
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= 240);
        // Split off a validation slice of the *training* interactions so
        // the test items stay untouched.
        let (val, train) = split.train.split_at(split.train.len() / 5);
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let report = CtrTrainer::new(TrainOptions { epochs: 4, ..Default::default() })
            .train_with_validation(&mut model, &data, train, val, 1)
            .unwrap();
        assert!(!report.epochs.is_empty());
        assert!(report.best_epoch < report.epochs.len());
        for e in &report.epochs {
            assert!(e.val_auc.is_some());
        }
        // The restored model scores exactly the best epoch's AUC.
        let restored_auc = evaluate_auc_generated(&model, &data, val).unwrap();
        let best_recorded = report.epochs[report.best_epoch].val_auc.unwrap();
        assert!(
            (restored_auc - best_recorded).abs() < 1e-9,
            "restored {restored_auc} vs best {best_recorded}"
        );
        // And it is the max over all epochs.
        for e in &report.epochs {
            assert!(e.val_auc.unwrap() <= best_recorded + 1e-9);
        }
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let data = data();
        let item_keys: Vec<u32> = data.interactions.iter().map(|i| i.item).collect();
        let split = Split::by_group(&item_keys, |item| item >= 240);
        let (val, train) = split.train.split_at(split.train.len() / 5);
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        // Patience 0: stop at the first non-improving epoch. With a large
        // epoch budget this must terminate well before exhausting it.
        let report = CtrTrainer::new(TrainOptions { epochs: 50, ..Default::default() })
            .train_with_validation(&mut model, &data, train, val, 0)
            .unwrap();
        assert!(
            report.epochs.len() < 50,
            "expected an early stop, ran all {} epochs",
            report.epochs.len()
        );
    }

    #[test]
    fn degenerate_row_sets_are_typed_errors_not_panics() {
        let data = data();
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let trainer = CtrTrainer::new(TrainOptions::default());
        assert!(matches!(
            trainer.train(&mut model, &data, Some(&[])),
            Err(TrainError::EmptyTrainingSet)
        ));
        assert!(matches!(
            trainer.train_with_validation(&mut model, &data, &[0, 1, 2], &[], 1),
            Err(TrainError::EmptyValidationSet)
        ));
    }

    #[test]
    fn train_options_builder_validates() {
        let opts = TrainOptions::builder()
            .epochs(5)
            .batch_size(64)
            .seed(3)
            .verbose(false)
            .negative_keep_rate(Some(0.5))
            .backend(Some(BackendKind::FastMath))
            .build()
            .unwrap();
        assert_eq!((opts.epochs, opts.batch_size, opts.seed), (5, 64, 3));
        assert_eq!(opts.negative_keep_rate, Some(0.5));
        assert_eq!(opts.backend, Some(BackendKind::FastMath));
        // An invalid backend *name* is a typed error at the parse edge.
        assert!("avx512".parse::<BackendKind>().is_err());

        for (build, field) in [
            (TrainOptions::builder().epochs(0).build(), "epochs"),
            (TrainOptions::builder().batch_size(0).build(), "batch_size"),
            (TrainOptions::builder().negative_keep_rate(Some(0.0)).build(), "negative_keep_rate"),
            (TrainOptions::builder().negative_keep_rate(Some(1.5)).build(), "negative_keep_rate"),
            (
                TrainOptions::builder().negative_keep_rate(Some(f32::NAN)).build(),
                "negative_keep_rate",
            ),
        ] {
            assert_eq!(build.unwrap_err().field, field);
        }
    }
}
