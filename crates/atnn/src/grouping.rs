//! Preference-based user grouping — the paper's §VI future-work item:
//! *"We can further group users by their preferences before making new
//! arrivals predictions. Different groups have diverse preferences for
//! different types of items."*
//!
//! Users are clustered in the learned user-vector space with k-means
//! (k-means++ seeding, Lloyd iterations); the serving index then stores
//! one mean vector **per cluster** plus cluster weights, and scores an
//! item as the weighted mean of its per-cluster scores. With `k = 1` this
//! degenerates exactly to [`crate::PopularityIndex`]; larger `k`
//! approximates the O(N_users) pairwise popularity increasingly well while
//! staying O(k) per item.

use atnn_data::tmall::TmallDataset;
use atnn_tensor::{dot, Matrix, Rng64};

use crate::model::Atnn;

/// K-means over row vectors.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `[k, dim]` centroid matrix.
    pub centroids: Matrix,
    /// Number of points assigned to each centroid.
    pub sizes: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

impl KMeans {
    /// Clusters the rows of `points` into `k` groups.
    ///
    /// # Panics
    /// Panics when `k == 0` or `k > points.rows()`.
    pub fn fit(points: &Matrix, k: usize, max_iters: usize, rng: &mut Rng64) -> Self {
        let n = points.rows();
        assert!(k > 0 && k <= n, "k must be in 1..=n");

        // k-means++ seeding: spread the initial centroids out.
        let mut centroids = Matrix::zeros(k, points.cols());
        let first = rng.index(n);
        centroids.row_mut(0).copy_from_slice(points.row(first));
        let mut d2 = vec![0.0f32; n];
        for c in 1..k {
            let mut total = 0.0f64;
            for (i, d) in d2.iter_mut().enumerate() {
                *d = (0..c)
                    .map(|j| sq_dist(points.row(i), centroids.row(j)))
                    .fold(f32::INFINITY, f32::min);
                total += *d as f64;
            }
            let chosen = if total <= 0.0 {
                rng.index(n)
            } else {
                // Sample proportional to squared distance.
                let mut target = rng.uniform() as f64 * total;
                let mut pick = n - 1;
                for (i, &d) in d2.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            centroids.row_mut(c).copy_from_slice(points.row(chosen));
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; n];
        let mut sizes = vec![0usize; k];
        let mut inertia = f64::INFINITY;
        for _ in 0..max_iters {
            let mut changed = false;
            let mut new_inertia = 0.0f64;
            for (i, a) in assignment.iter_mut().enumerate() {
                let (best, dist) = (0..k)
                    .map(|j| (j, sq_dist(points.row(i), centroids.row(j))))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"))
                    .expect("k > 0");
                if best != *a {
                    *a = best;
                    changed = true;
                }
                new_inertia += dist as f64;
            }
            inertia = new_inertia;

            let mut sums = Matrix::zeros(k, points.cols());
            sizes.iter_mut().for_each(|s| *s = 0);
            for (i, &a) in assignment.iter().enumerate() {
                sizes[a] += 1;
                for (s, &v) in sums.row_mut(a).iter_mut().zip(points.row(i)) {
                    *s += v;
                }
            }
            for (j, &size) in sizes.iter().enumerate() {
                if size > 0 {
                    let inv = 1.0 / size as f32;
                    for (c, &s) in centroids.row_mut(j).iter_mut().zip(sums.row(j)) {
                        *c = s * inv;
                    }
                }
                // Empty clusters keep their previous centroid.
            }
            if !changed {
                break;
            }
        }
        KMeans { centroids, sizes, inertia }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// A popularity index with one mean user vector *per preference cluster*.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedPopularityIndex {
    /// `[k, vec_dim]` cluster mean vectors.
    centroids: Matrix,
    /// Cluster weights (fraction of the user group in each cluster).
    weights: Vec<f32>,
    bias: f32,
}

impl GroupedPopularityIndex {
    /// Builds the index: encodes the user group, clusters the vectors into
    /// `k` preference groups, stores centroids and weights.
    pub fn build(
        model: &Atnn,
        data: &TmallDataset,
        user_group: &[u32],
        k: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(!user_group.is_empty(), "GroupedPopularityIndex: empty user group");
        let vectors = collect_user_vectors(model, data, user_group);
        let km = KMeans::fit(&vectors, k.min(user_group.len()), 50, rng);
        let total: f32 = km.sizes.iter().sum::<usize>() as f32;
        let weights = km.sizes.iter().map(|&s| s as f32 / total).collect();
        GroupedPopularityIndex { centroids: km.centroids, weights, bias: model.bias_value() }
    }

    /// O(k) popularity score: the cluster-weighted mean of
    /// `σ(⟨v_item, c_j⟩ + b)`.
    pub fn score_vector(&self, item_vec: &[f32]) -> f32 {
        self.weights
            .iter()
            .enumerate()
            .map(|(j, &w)| w * sigmoid(dot(item_vec, self.centroids.row(j)) + self.bias))
            .sum()
    }

    /// Scores new arrivals end to end through the generator.
    pub fn score_new_arrivals(&self, model: &Atnn, data: &TmallDataset, items: &[u32]) -> Vec<f32> {
        let mut scores = Vec::with_capacity(items.len());
        for chunk in items.chunks(512) {
            let profile = data.encode_item_profiles(chunk);
            let vecs = model.item_vectors_generated(&profile);
            scores.extend((0..vecs.rows()).map(|i| self.score_vector(vecs.row(i))));
        }
        scores
    }

    /// Per-cluster scores of one item — the "diverse preferences for
    /// different types of items" view (e.g. for segment-targeted launches).
    pub fn per_cluster_scores(&self, item_vec: &[f32]) -> Vec<f32> {
        (0..self.centroids.rows())
            .map(|j| sigmoid(dot(item_vec, self.centroids.row(j)) + self.bias))
            .collect()
    }

    /// Number of preference clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Cluster weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

fn collect_user_vectors(model: &Atnn, data: &TmallDataset, users: &[u32]) -> Matrix {
    let mut blocks: Vec<Matrix> = Vec::new();
    for chunk in users.chunks(512) {
        blocks.push(model.user_vectors(&data.encode_users(chunk)));
    }
    let mut out = blocks.remove(0);
    for b in blocks {
        out = out.concat_rows(&b).expect("same vec_dim");
    }
    out
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtnnConfig;
    use crate::popularity::{pairwise_popularity, PopularityIndex};
    use crate::trainer::{CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallConfig;

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let mut rng = Rng64::seed_from_u64(1);
        // Three blobs at (0,0), (10,0), (0,10).
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut points = Matrix::zeros(150, 2);
        for i in 0..150 {
            let (cx, cy) = centers[i % 3];
            points.set(i, 0, cx + rng.normal_with(0.0, 0.5));
            points.set(i, 1, cy + rng.normal_with(0.0, 0.5));
        }
        let km = KMeans::fit(&points, 3, 100, &mut rng);
        assert_eq!(km.k(), 3);
        assert_eq!(km.sizes.iter().sum::<usize>(), 150);
        // Every true center has a centroid within 1.0.
        for (cx, cy) in centers {
            let best = (0..3)
                .map(|j| sq_dist(km.centroids.row(j), &[cx, cy]))
                .fold(f32::INFINITY, f32::min);
            assert!(best < 1.0, "no centroid near ({cx},{cy}): {best}");
        }
        assert!(km.inertia < 150.0, "tight clusters: inertia {}", km.inertia);
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let mut rng = Rng64::seed_from_u64(2);
        let points = Matrix::from_fn(80, 3, |_, _| rng.normal());
        let i1 = KMeans::fit(&points, 1, 50, &mut rng).inertia;
        let i4 = KMeans::fit(&points, 4, 50, &mut rng).inertia;
        let i16 = KMeans::fit(&points, 16, 50, &mut rng).inertia;
        assert!(i4 < i1);
        assert!(i16 < i4);
    }

    #[test]
    fn k_equals_one_matches_plain_index() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..100).collect();
        let mut rng = Rng64::seed_from_u64(3);
        let grouped = GroupedPopularityIndex::build(&model, &data, &group, 1, &mut rng);
        let plain = PopularityIndex::build(&model, &data, &group);
        let items: Vec<u32> = (0..40).collect();
        let a = grouped.score_new_arrivals(&model, &data, &items);
        let b = plain.score_new_arrivals(&model, &data, &items);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn more_clusters_approximate_pairwise_better() {
        // The future-work claim, quantified: mean absolute error against
        // the O(N_users) pairwise popularity shrinks as k grows.
        let (model, data) = trained();
        let group: Vec<u32> = (0..data.num_users() as u32).collect();
        let items: Vec<u32> = (0..100).collect();
        let reference = pairwise_popularity(&model, &data, &items, &group);
        let mut rng = Rng64::seed_from_u64(4);
        let err_of = |k: usize, rng: &mut Rng64| {
            let idx = GroupedPopularityIndex::build(&model, &data, &group, k, rng);
            let scores = idx.score_new_arrivals(&model, &data, &items);
            scores.iter().zip(&reference).map(|(&a, &b)| (a - b).abs() as f64).sum::<f64>()
                / items.len() as f64
        };
        let e1 = err_of(1, &mut rng);
        let e8 = err_of(8, &mut rng);
        let e32 = err_of(32, &mut rng);
        assert!(e8 < e1, "k=8 ({e8:.5}) must beat k=1 ({e1:.5})");
        assert!(e32 < e1, "k=32 ({e32:.5}) must beat k=1 ({e1:.5})");
        assert!(e32 < 0.02, "k=32 should be near-exact: {e32:.5}");
    }

    #[test]
    fn per_cluster_scores_expose_segment_structure() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..150).collect();
        let mut rng = Rng64::seed_from_u64(5);
        let idx = GroupedPopularityIndex::build(&model, &data, &group, 4, &mut rng);
        assert_eq!(idx.k(), 4);
        assert!((idx.weights().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let vec = model.item_vectors_generated(&data.encode_item_profiles(&[0])).row(0).to_vec();
        let per = idx.per_cluster_scores(&vec);
        assert_eq!(per.len(), 4);
        // The weighted mean of per-cluster scores is the blended score.
        let blended: f32 = per.iter().zip(idx.weights()).map(|(&s, &w)| s * w).sum();
        assert!((blended - idx.score_vector(&vec)).abs() < 1e-6);
    }

    fn trained() -> (Atnn, TmallDataset) {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 200,
            num_items: 300,
            num_interactions: 3_000,
            ..TmallConfig::tiny()
        });
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        CtrTrainer::new(TrainOptions { epochs: 2, ..Default::default() })
            .train(&mut model, &data, None)
            .unwrap();
        (model, data)
    }
}
