//! Model configuration.

/// How the adversarial component is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialMode {
    /// No adversarial component: the model degenerates to a plain
    /// two-tower network (the paper's TNN-FC / TNN-DCN baselines).
    None,
    /// The paper's equations: `L_s = mean((1 − cos(g(X_ip), f_i(X_i)))²)`
    /// pulls generated vectors toward (detached) encoded vectors. This is
    /// the default used in every table reproduction.
    Similarity,
    /// A literal GAN: an MLP discriminator classifies encoded (real) vs
    /// generated (fake) vectors; the generator maximizes discriminator
    /// error. Implements the paper's prose description of the minimax
    /// game; exercised by the A4 ablation.
    LearnedDiscriminator,
}

/// Hyper-parameters of [`crate::Atnn`] (and the TNN baselines, which are
/// configurations of the same architecture).
#[derive(Debug, Clone, PartialEq)]
pub struct AtnnConfig {
    /// Width of the final item/user vectors (the paper uses 128).
    pub vec_dim: usize,
    /// Hidden widths of the deep part of each tower.
    pub deep_dims: Vec<usize>,
    /// Number of DCN cross layers (0 disables crossing even when
    /// `use_cross` is true).
    pub cross_depth: usize,
    /// Whether towers include the cross network (TNN-DCN/ATNN) or are
    /// fully connected only (TNN-FC).
    pub use_cross: bool,
    /// Adversarial component mode.
    pub adversarial: AdversarialMode,
    /// Whether the generator shares the item-profile embedding tables with
    /// the item encoder (the paper's multi-task shared-embedding strategy).
    pub shared_embeddings: bool,
    /// λ — weight of the similarity loss in the generator step (the paper
    /// sets 0.1).
    pub lambda: f32,
    /// Hidden widths of the learned discriminator (only used in
    /// [`AdversarialMode::LearnedDiscriminator`]).
    pub disc_dims: Vec<usize>,
    /// Cap on per-field embedding width (see [`embed_dim_for`]).
    pub max_embed_dim: usize,
    /// Dropout rate on tower hidden layers.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Gradient-clipping threshold (global L2 norm per group).
    pub grad_clip: f32,
    /// Weight initialization / dropout seed.
    pub seed: u64,
}

impl AtnnConfig {
    /// The paper's reported widths (DCN 512/256/128-ish stacks, 128-d
    /// vectors). Heavy on CPU; used for documentation fidelity and the
    /// full-scale repro binaries when you have minutes to spend.
    pub fn paper() -> Self {
        AtnnConfig {
            vec_dim: 128,
            deep_dims: vec![512, 256, 128],
            cross_depth: 3,
            use_cross: true,
            adversarial: AdversarialMode::Similarity,
            shared_embeddings: true,
            lambda: 0.1,
            disc_dims: vec![64, 32],
            max_embed_dim: 16,
            dropout: 0.0,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            seed: 1,
        }
    }

    /// Widths divided ~8x for fast CPU training. Every qualitative claim
    /// reproduced in `EXPERIMENTS.md` holds at this scale; width is
    /// orthogonal to the claims (DESIGN.md §2.5).
    pub fn scaled() -> Self {
        AtnnConfig {
            vec_dim: 16,
            deep_dims: vec![64, 32],
            cross_depth: 2,
            disc_dims: vec![32, 16],
            max_embed_dim: 8,
            learning_rate: 2e-3,
            ..Self::paper()
        }
    }

    /// TNN-DCN baseline: the same two towers, no adversarial component.
    pub fn tnn_dcn() -> Self {
        AtnnConfig { adversarial: AdversarialMode::None, ..Self::scaled() }
    }

    /// TNN-FC baseline: fully connected towers, no cross network, no
    /// adversarial component.
    pub fn tnn_fc() -> Self {
        AtnnConfig { use_cross: false, ..Self::tnn_dcn() }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Embedding width for a categorical field: `ceil(1.7 · vocab^0.25)`
/// clamped to `[4, max]` — reproduces the spirit of the paper's hand-picked
/// 16/8/16/6/16 widths without hand-picking per field.
pub fn embed_dim_for(vocab: usize, max: usize) -> usize {
    let dim = (1.7 * (vocab as f64).powf(0.25)).ceil() as usize;
    dim.clamp(4, max.max(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let paper = AtnnConfig::paper();
        assert_eq!(paper.vec_dim, 128);
        assert_eq!(paper.deep_dims, vec![512, 256, 128]);
        assert_eq!(paper.lambda, 0.1);
        assert!(paper.use_cross && paper.shared_embeddings);
        assert_eq!(paper.adversarial, AdversarialMode::Similarity);

        let scaled = AtnnConfig::scaled();
        assert!(scaled.vec_dim < paper.vec_dim);
        assert_eq!(scaled.adversarial, AdversarialMode::Similarity);

        assert_eq!(AtnnConfig::tnn_dcn().adversarial, AdversarialMode::None);
        assert!(AtnnConfig::tnn_dcn().use_cross);
        assert!(!AtnnConfig::tnn_fc().use_cross);
    }

    #[test]
    fn embed_dims_grow_with_vocab_and_clamp() {
        assert_eq!(embed_dim_for(2, 16), 4, "floor at 4");
        assert!(embed_dim_for(100, 16) > embed_dim_for(10, 16));
        assert_eq!(embed_dim_for(1_000_000, 16), 16, "ceiling at max");
        assert!(embed_dim_for(400, 8) <= 8);
    }
}
