//! Model configuration.
//!
//! [`AtnnConfig`] and [`crate::TrainOptions`] are `#[non_exhaustive]`:
//! out-of-crate code constructs them through the presets
//! ([`AtnnConfig::paper`], [`AtnnConfig::scaled`], …) or through the
//! validating builders ([`AtnnConfig::builder`] /
//! [`crate::TrainOptions::builder`]), which reject nonsensical values at
//! construction instead of panicking mid-train. To tweak a preset, go
//! through [`AtnnConfig::to_builder`].

use std::fmt;

/// A configuration value rejected by a builder's `build()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"batch_size"`.
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: &'static str,
}

impl ConfigError {
    pub(crate) fn new(field: &'static str, reason: &'static str) -> Self {
        ConfigError { field, reason }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// How the adversarial component is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialMode {
    /// No adversarial component: the model degenerates to a plain
    /// two-tower network (the paper's TNN-FC / TNN-DCN baselines).
    None,
    /// The paper's equations: `L_s = mean((1 − cos(g(X_ip), f_i(X_i)))²)`
    /// pulls generated vectors toward (detached) encoded vectors. This is
    /// the default used in every table reproduction.
    Similarity,
    /// A literal GAN: an MLP discriminator classifies encoded (real) vs
    /// generated (fake) vectors; the generator maximizes discriminator
    /// error. Implements the paper's prose description of the minimax
    /// game; exercised by the A4 ablation.
    LearnedDiscriminator,
}

/// Hyper-parameters of [`crate::Atnn`] (and the TNN baselines, which are
/// configurations of the same architecture).
///
/// `#[non_exhaustive]`: construct via a preset ([`AtnnConfig::paper`],
/// [`AtnnConfig::scaled`], [`AtnnConfig::tnn_dcn`], [`AtnnConfig::tnn_fc`])
/// or the validating [`AtnnConfig::builder`]; customize a preset with
/// [`AtnnConfig::to_builder`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct AtnnConfig {
    /// Width of the final item/user vectors (the paper uses 128).
    pub vec_dim: usize,
    /// Hidden widths of the deep part of each tower.
    pub deep_dims: Vec<usize>,
    /// Number of DCN cross layers (0 disables crossing even when
    /// `use_cross` is true).
    pub cross_depth: usize,
    /// Whether towers include the cross network (TNN-DCN/ATNN) or are
    /// fully connected only (TNN-FC).
    pub use_cross: bool,
    /// Adversarial component mode.
    pub adversarial: AdversarialMode,
    /// Whether the generator shares the item-profile embedding tables with
    /// the item encoder (the paper's multi-task shared-embedding strategy).
    pub shared_embeddings: bool,
    /// λ — weight of the similarity loss in the generator step (the paper
    /// sets 0.1).
    pub lambda: f32,
    /// Hidden widths of the learned discriminator (only used in
    /// [`AdversarialMode::LearnedDiscriminator`]).
    pub disc_dims: Vec<usize>,
    /// Cap on per-field embedding width (see [`embed_dim_for`]).
    pub max_embed_dim: usize,
    /// Dropout rate on tower hidden layers.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Gradient-clipping threshold (global L2 norm per group).
    pub grad_clip: f32,
    /// Weight initialization / dropout seed.
    pub seed: u64,
}

impl AtnnConfig {
    /// The paper's reported widths (DCN 512/256/128-ish stacks, 128-d
    /// vectors). Heavy on CPU; used for documentation fidelity and the
    /// full-scale repro binaries when you have minutes to spend.
    pub fn paper() -> Self {
        AtnnConfig {
            vec_dim: 128,
            deep_dims: vec![512, 256, 128],
            cross_depth: 3,
            use_cross: true,
            adversarial: AdversarialMode::Similarity,
            shared_embeddings: true,
            lambda: 0.1,
            disc_dims: vec![64, 32],
            max_embed_dim: 16,
            dropout: 0.0,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            seed: 1,
        }
    }

    /// Widths divided ~8x for fast CPU training. Every qualitative claim
    /// reproduced in `EXPERIMENTS.md` holds at this scale; width is
    /// orthogonal to the claims (DESIGN.md §2.5).
    pub fn scaled() -> Self {
        AtnnConfig {
            vec_dim: 16,
            deep_dims: vec![64, 32],
            cross_depth: 2,
            disc_dims: vec![32, 16],
            max_embed_dim: 8,
            learning_rate: 2e-3,
            ..Self::paper()
        }
    }

    /// TNN-DCN baseline: the same two towers, no adversarial component.
    pub fn tnn_dcn() -> Self {
        AtnnConfig { adversarial: AdversarialMode::None, ..Self::scaled() }
    }

    /// TNN-FC baseline: fully connected towers, no cross network, no
    /// adversarial component.
    pub fn tnn_fc() -> Self {
        AtnnConfig { use_cross: false, ..Self::tnn_dcn() }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A validating builder seeded from [`AtnnConfig::scaled`] (the
    /// workspace's default working scale).
    pub fn builder() -> AtnnConfigBuilder {
        Self::scaled().to_builder()
    }

    /// A validating builder seeded from `self` — the way to customize a
    /// preset field-by-field from outside this crate.
    pub fn to_builder(self) -> AtnnConfigBuilder {
        AtnnConfigBuilder { cfg: self }
    }
}

/// Builder for [`AtnnConfig`]; returned by [`AtnnConfig::builder`] /
/// [`AtnnConfig::to_builder`]. [`AtnnConfigBuilder::build`] validates.
#[derive(Debug, Clone)]
pub struct AtnnConfigBuilder {
    cfg: AtnnConfig,
}

impl AtnnConfigBuilder {
    /// Sets the final item/user vector width.
    pub fn vec_dim(mut self, v: usize) -> Self {
        self.cfg.vec_dim = v;
        self
    }

    /// Sets the hidden widths of the deep part of each tower.
    pub fn deep_dims(mut self, v: Vec<usize>) -> Self {
        self.cfg.deep_dims = v;
        self
    }

    /// Sets the number of DCN cross layers.
    pub fn cross_depth(mut self, v: usize) -> Self {
        self.cfg.cross_depth = v;
        self
    }

    /// Enables/disables the cross network.
    pub fn use_cross(mut self, v: bool) -> Self {
        self.cfg.use_cross = v;
        self
    }

    /// Sets the adversarial component mode.
    pub fn adversarial(mut self, v: AdversarialMode) -> Self {
        self.cfg.adversarial = v;
        self
    }

    /// Shares (or unshares) generator/encoder embedding tables.
    pub fn shared_embeddings(mut self, v: bool) -> Self {
        self.cfg.shared_embeddings = v;
        self
    }

    /// Sets λ, the similarity-loss weight in the generator step.
    pub fn lambda(mut self, v: f32) -> Self {
        self.cfg.lambda = v;
        self
    }

    /// Sets the learned discriminator's hidden widths.
    pub fn disc_dims(mut self, v: Vec<usize>) -> Self {
        self.cfg.disc_dims = v;
        self
    }

    /// Sets the cap on per-field embedding width.
    pub fn max_embed_dim(mut self, v: usize) -> Self {
        self.cfg.max_embed_dim = v;
        self
    }

    /// Sets the dropout rate on tower hidden layers.
    pub fn dropout(mut self, v: f32) -> Self {
        self.cfg.dropout = v;
        self
    }

    /// Sets the Adam learning rate.
    pub fn learning_rate(mut self, v: f32) -> Self {
        self.cfg.learning_rate = v;
        self
    }

    /// Sets the gradient-clipping threshold.
    pub fn grad_clip(mut self, v: f32) -> Self {
        self.cfg.grad_clip = v;
        self
    }

    /// Sets the weight-initialization / dropout seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AtnnConfig, ConfigError> {
        let c = &self.cfg;
        if c.vec_dim == 0 {
            return Err(ConfigError::new("vec_dim", "must be positive"));
        }
        if c.max_embed_dim == 0 {
            return Err(ConfigError::new("max_embed_dim", "must be positive"));
        }
        if !(c.learning_rate > 0.0 && c.learning_rate.is_finite()) {
            return Err(ConfigError::new("learning_rate", "must be positive and finite"));
        }
        if !(c.grad_clip > 0.0 && c.grad_clip.is_finite()) {
            return Err(ConfigError::new("grad_clip", "must be positive and finite"));
        }
        if !(0.0..1.0).contains(&c.dropout) {
            return Err(ConfigError::new("dropout", "must be in [0, 1)"));
        }
        if !(c.lambda >= 0.0 && c.lambda.is_finite()) {
            return Err(ConfigError::new("lambda", "must be non-negative and finite"));
        }
        if c.adversarial == AdversarialMode::LearnedDiscriminator && c.disc_dims.is_empty() {
            return Err(ConfigError::new(
                "disc_dims",
                "learned discriminator needs at least one hidden layer",
            ));
        }
        Ok(self.cfg)
    }
}

/// Embedding width for a categorical field: `ceil(1.7 · vocab^0.25)`
/// clamped to `[4, max]` — reproduces the spirit of the paper's hand-picked
/// 16/8/16/6/16 widths without hand-picking per field.
pub fn embed_dim_for(vocab: usize, max: usize) -> usize {
    let dim = (1.7 * (vocab as f64).powf(0.25)).ceil() as usize;
    dim.clamp(4, max.max(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let paper = AtnnConfig::paper();
        assert_eq!(paper.vec_dim, 128);
        assert_eq!(paper.deep_dims, vec![512, 256, 128]);
        assert_eq!(paper.lambda, 0.1);
        assert!(paper.use_cross && paper.shared_embeddings);
        assert_eq!(paper.adversarial, AdversarialMode::Similarity);

        let scaled = AtnnConfig::scaled();
        assert!(scaled.vec_dim < paper.vec_dim);
        assert_eq!(scaled.adversarial, AdversarialMode::Similarity);

        assert_eq!(AtnnConfig::tnn_dcn().adversarial, AdversarialMode::None);
        assert!(AtnnConfig::tnn_dcn().use_cross);
        assert!(!AtnnConfig::tnn_fc().use_cross);
    }

    #[test]
    fn builder_validates_and_roundtrips_presets() {
        // A no-op to_builder().build() is the identity on every preset.
        for preset in
            [AtnnConfig::paper(), AtnnConfig::scaled(), AtnnConfig::tnn_dcn(), AtnnConfig::tnn_fc()]
        {
            assert_eq!(preset.clone().to_builder().build().unwrap(), preset);
        }
        let custom = AtnnConfig::builder().lambda(1.0).seed(7).build().unwrap();
        assert_eq!(custom.lambda, 1.0);
        assert_eq!(custom.seed, 7);
        assert_eq!(custom.vec_dim, AtnnConfig::scaled().vec_dim, "builder starts from scaled");

        for (build, field) in [
            (AtnnConfig::builder().vec_dim(0).build(), "vec_dim"),
            (AtnnConfig::builder().learning_rate(0.0).build(), "learning_rate"),
            (AtnnConfig::builder().learning_rate(f32::NAN).build(), "learning_rate"),
            (AtnnConfig::builder().grad_clip(-1.0).build(), "grad_clip"),
            (AtnnConfig::builder().dropout(1.0).build(), "dropout"),
            (AtnnConfig::builder().lambda(-0.5).build(), "lambda"),
            (AtnnConfig::builder().max_embed_dim(0).build(), "max_embed_dim"),
            (
                AtnnConfig::builder()
                    .adversarial(AdversarialMode::LearnedDiscriminator)
                    .disc_dims(vec![])
                    .build(),
                "disc_dims",
            ),
        ] {
            assert_eq!(build.unwrap_err().field, field);
        }
    }

    #[test]
    fn embed_dims_grow_with_vocab_and_clamp() {
        assert_eq!(embed_dim_for(2, 16), 4, "floor at 4");
        assert!(embed_dim_for(100, 16) > embed_dim_for(10, 16));
        assert_eq!(embed_dim_for(1_000_000, 16), 16, "ceiling at max");
        assert!(embed_dim_for(400, 8) <= 8);
    }
}
