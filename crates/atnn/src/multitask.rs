//! Multi-task extended ATNN for the food-delivery scenario (paper §V,
//! Fig. 6, Algorithm 2).
//!
//! Differences from the e-commerce model:
//! - the user tower consumes **mean user-group features** (location
//!   groups) instead of single-user features;
//! - the task switches from CTR classification to joint **VpPV + GMV
//!   regression**, with per-task heads over the item-group interaction and
//!   losses `L_r^{GMV} + λ₁·L_r^{VpPV}` (D step) and
//!   `L_{g'}^{GMV} + λ₁·L_{g'}^{VpPV} + λ₂·L_s` (G step);
//! - targets are z-standardized internally (stat stored at construction),
//!   so λ₁/λ₂ default near 1 rather than the paper's raw-unit 100/10;
//!   predictions are reported back in original units.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_data::eleme::ElemeDataset;
use atnn_data::schema::FeatureBlock;
use atnn_nn::{clip_grad_norm, Adam, Linear, Optimizer};
use atnn_tensor::{Init, Matrix, Rng64};

use crate::config::{AdversarialMode, AtnnConfig};
use crate::features::FeatureEncoder;
use crate::towers::Tower;

/// Training options for [`MultiTaskAtnn::train`].
#[derive(Debug, Clone)]
pub struct MultiTaskTrainOptions {
    /// Passes over the training restaurants.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// λ₁ — weight of the VpPV loss relative to the GMV loss.
    pub lambda1: f32,
    /// λ₂ — weight of the similarity loss in the G step.
    pub lambda2: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for MultiTaskTrainOptions {
    fn default() -> Self {
        MultiTaskTrainOptions { epochs: 6, batch_size: 128, lambda1: 1.0, lambda2: 0.5, seed: 53 }
    }
}

/// Per-epoch multi-task losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTaskReport {
    /// 0-based epoch.
    pub epoch: usize,
    /// D-step loss (standardized GMV MSE + λ₁·VpPV MSE).
    pub loss_d: f32,
    /// G-step regression part.
    pub loss_g: f32,
    /// G-step similarity part.
    pub loss_s: f32,
}

/// The extended ATNN (paper Fig. 6): shared restaurant representation,
/// generator for cold sign-ups, and two regression heads.
#[derive(Debug)]
pub struct MultiTaskAtnn {
    config: AtnnConfig,
    store: ParamStore,
    profile_encoder: FeatureEncoder,
    generator_encoder: FeatureEncoder,
    stats_encoder: FeatureEncoder,
    group_encoder: FeatureEncoder,
    item_tower: Tower,
    generator_tower: Tower,
    group_tower: Tower,
    head_vppv: Linear,
    head_gmv: Linear,
    d_group: Vec<ParamId>,
    g_group: Vec<ParamId>,
    opt_d: Adam,
    opt_g: Adam,
    // Target standardization (fit on the training restaurants).
    vppv_stats: (f32, f32),
    gmv_stats: (f32, f32),
}

impl MultiTaskAtnn {
    /// Builds the model; target statistics are fit on `train_restaurants`.
    pub fn new(config: AtnnConfig, data: &ElemeDataset, train_restaurants: &[u32]) -> Self {
        assert!(!train_restaurants.is_empty(), "need training restaurants");
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(config.seed ^ 0xE1E);

        let profile_block = data.encode_restaurant_profiles(train_restaurants);
        let stats_block = data.encode_restaurant_stats(train_restaurants);
        let group_block = data.encode_groups_of(train_restaurants);

        let profile_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "rest.profile",
            &ElemeDataset::restaurant_profile_schema(),
            config.max_embed_dim,
            Some(&profile_block.numeric),
        );
        let generator_encoder = if config.shared_embeddings {
            profile_encoder.clone()
        } else {
            FeatureEncoder::new(
                &mut store,
                &mut rng,
                "gen.profile",
                &ElemeDataset::restaurant_profile_schema(),
                config.max_embed_dim,
                Some(&profile_block.numeric),
            )
        };
        let stats_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "rest.stats",
            &ElemeDataset::restaurant_stats_schema(),
            config.max_embed_dim,
            Some(&stats_block.numeric),
        );
        let group_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "group",
            &ElemeDataset::group_schema(),
            config.max_embed_dim,
            Some(&group_block.numeric),
        );

        // Row-sparse embedding gradients (see `ParamStore::mark_sparse`);
        // idempotent, so shared generator/profile tables may repeat.
        for id in profile_encoder
            .embedding_params()
            .into_iter()
            .chain(generator_encoder.embedding_params())
            .chain(stats_encoder.embedding_params())
            .chain(group_encoder.embedding_params())
        {
            store.mark_sparse(id);
        }

        let item_tower = Tower::new(
            &mut store,
            &mut rng,
            "rest.tower",
            profile_encoder.out_dim() + stats_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );
        let generator_tower = Tower::new(
            &mut store,
            &mut rng,
            "gen.tower",
            generator_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );
        let group_tower = Tower::new(
            &mut store,
            &mut rng,
            "group.tower",
            group_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );

        // Task heads over the item ⊙ group interaction vector — bilinear
        // scoring, so the mean-group trick stays exact per group.
        let head_vppv = Linear::new(
            &mut store,
            &mut rng,
            "head.vppv",
            config.vec_dim,
            1,
            Init::XavierUniform,
            true,
        );
        let head_gmv = Linear::new(
            &mut store,
            &mut rng,
            "head.gmv",
            config.vec_dim,
            1,
            Init::XavierUniform,
            true,
        );

        let mut d_group = Vec::new();
        d_group.extend(profile_encoder.embedding_params());
        d_group.extend(group_encoder.embedding_params());
        d_group.extend(item_tower.params());
        d_group.extend(group_tower.params());
        d_group.extend(head_vppv.params());
        d_group.extend(head_gmv.params());

        let mut g_group = Vec::new();
        g_group.extend(generator_encoder.embedding_params());
        g_group.extend(generator_tower.params());

        let opt_d = Adam::new(d_group.clone(), config.learning_rate);
        let opt_g = Adam::new(g_group.clone(), config.learning_rate);

        let vppv_stats = mean_std(train_restaurants.iter().map(|&r| data.vppv(r)));
        let gmv_stats = mean_std(train_restaurants.iter().map(|&r| data.gmv(r)));

        MultiTaskAtnn {
            config,
            store,
            profile_encoder,
            generator_encoder,
            stats_encoder,
            group_encoder,
            item_tower,
            generator_tower,
            group_tower,
            head_vppv,
            head_gmv,
            d_group,
            g_group,
            opt_d,
            opt_g,
            vppv_stats,
            gmv_stats,
        }
    }

    fn restaurant_vec_full(
        &self,
        g: &mut Graph,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
    ) -> Var {
        let p = self.profile_encoder.encode(g, &self.store, profile);
        let s = self.stats_encoder.encode(g, &self.store, stats);
        let x = g.concat_cols(p, s);
        self.item_tower.forward(g, &self.store, x)
    }

    fn restaurant_vec_generated(&self, g: &mut Graph, profile: &FeatureBlock) -> Var {
        let x = self.generator_encoder.encode(g, &self.store, profile);
        self.generator_tower.forward(g, &self.store, x)
    }

    fn group_vec(&self, g: &mut Graph, groups: &FeatureBlock) -> Var {
        let x = self.group_encoder.encode(g, &self.store, groups);
        self.group_tower.forward(g, &self.store, x)
    }

    /// `(vppv_pred, gmv_pred)` in *standardized* space.
    fn heads(&self, g: &mut Graph, item_vecs: Var, group_vecs: Var) -> (Var, Var) {
        let interaction = g.mul(item_vecs, group_vecs);
        let vppv = self.head_vppv.forward(g, &self.store, interaction);
        let gmv = self.head_gmv.forward(g, &self.store, interaction);
        (vppv, gmv)
    }

    /// Trains with Algorithm 2 on `train_restaurants`; returns per-epoch
    /// losses.
    pub fn train(
        &mut self,
        data: &ElemeDataset,
        train_restaurants: &[u32],
        opts: &MultiTaskTrainOptions,
    ) -> Vec<MultiTaskReport> {
        assert!(!train_restaurants.is_empty(), "empty training set");
        let mut iter = atnn_data::dataset::BatchIter::new(
            train_restaurants.to_vec(),
            opts.batch_size,
            Rng64::seed_from_u64(opts.seed),
        );
        let mut reports = Vec::with_capacity(opts.epochs);
        for epoch in 0..opts.epochs {
            let mut acc = (0.0f32, 0.0f32, 0.0f32);
            let mut batches = 0;
            while let Some(batch) = iter.next_batch() {
                let ids: Vec<u32> = batch.to_vec();
                // Gated on the obs enabled flag: disabled cost is one
                // atomic load per batch.
                let t0 = atnn_obs::timing_enabled().then(std::time::Instant::now);
                let (d, gl, s) = self.train_step(data, &ids, opts);
                if let Some(t0) = t0 {
                    atnn_obs::emit(&atnn_obs::Event::StepTiming {
                        section: "multitask.train_step".into(),
                        ns: t0.elapsed().as_nanos() as u64,
                        rows: ids.len() as u64,
                    });
                }
                acc.0 += d;
                acc.1 += gl;
                acc.2 += s;
                batches += 1;
            }
            iter.next_epoch();
            let n = batches.max(1) as f32;
            let report =
                MultiTaskReport { epoch, loss_d: acc.0 / n, loss_g: acc.1 / n, loss_s: acc.2 / n };
            // `loss_i` carries the D-step loss: the multi-task D step
            // plays the same role the CTR loss plays in `CtrTrainer`.
            atnn_obs::emit(&atnn_obs::Event::EpochEnd {
                model: "multitask".into(),
                epoch: epoch as u64,
                loss_i: report.loss_d,
                loss_g: report.loss_g,
                loss_s: report.loss_s,
                val_auc: None,
            });
            reports.push(report);
        }
        reports
    }

    /// One Algorithm-2 step on a batch of restaurant ids. Returns
    /// `(loss_d, loss_g, loss_s)`.
    pub fn train_step(
        &mut self,
        data: &ElemeDataset,
        ids: &[u32],
        opts: &MultiTaskTrainOptions,
    ) -> (f32, f32, f32) {
        let profile = data.encode_restaurant_profiles(ids);
        let stats = data.encode_restaurant_stats(ids);
        let groups = data.encode_groups_of(ids);
        let y_vppv = self.standardized_targets(ids, data, Task::Vppv);
        let y_gmv = self.standardized_targets(ids, data, Task::Gmv);

        // ---- D step: L_r^GMV + λ₁ L_r^VpPV over the encoder path. ------
        self.store.zero_grads(&self.d_group);
        let mut g = Graph::new();
        let rv = self.restaurant_vec_full(&mut g, &profile, &stats);
        let gv = self.group_vec(&mut g, &groups);
        let (vppv_pred, gmv_pred) = self.heads(&mut g, rv, gv);
        let l_gmv = g.mse_loss(gmv_pred, &y_gmv);
        let l_vppv = g.mse_loss(vppv_pred, &y_vppv);
        let weighted = g.mul_scalar(l_vppv, opts.lambda1);
        let loss_d = g.add(l_gmv, weighted);
        let loss_d_val = g.value(loss_d).get(0, 0);
        g.backward(loss_d, &mut self.store);
        clip_grad_norm(&mut self.store, &self.d_group, self.config.grad_clip);
        self.opt_d.step(&mut self.store);

        if matches!(self.config.adversarial, AdversarialMode::None) {
            return (loss_d_val, 0.0, 0.0);
        }

        // ---- G step: L_g'^GMV + λ₁ L_g'^VpPV + λ₂ L_s. -----------------
        self.store.zero_grads(&self.g_group);
        let mut g = Graph::new();
        let gen_v = self.restaurant_vec_generated(&mut g, &profile);
        let gv = self.group_vec(&mut g, &groups);
        let gv = g.detach(gv);
        let (vppv_pred, gmv_pred) = self.heads(&mut g, gen_v, gv);
        let l_gmv = g.mse_loss(gmv_pred, &y_gmv);
        let l_vppv = g.mse_loss(vppv_pred, &y_vppv);
        let weighted = g.mul_scalar(l_vppv, opts.lambda1);
        let loss_reg = g.add(l_gmv, weighted);
        let loss_reg_val = g.value(loss_reg).get(0, 0);

        let target = self.restaurant_vec_full(&mut g, &profile, &stats);
        let target = g.detach(target);
        let cos = g.rowwise_cosine(gen_v, target);
        let ones = g.input(Matrix::full(ids.len(), 1, 1.0));
        let diff = g.sub(ones, cos);
        let sq = g.mul(diff, diff);
        let loss_s = g.mean(sq);
        let loss_s_val = g.value(loss_s).get(0, 0);
        let weighted_s = g.mul_scalar(loss_s, opts.lambda2);
        let total = g.add(loss_reg, weighted_s);
        g.backward(total, &mut self.store);
        clip_grad_norm(&mut self.store, &self.g_group, self.config.grad_clip);
        self.opt_g.step(&mut self.store);

        (loss_d_val, loss_reg_val, loss_s_val)
    }

    /// Cold-start predictions `(vppv, gmv)` in **original units** via the
    /// generated path — what a new sign-up gets scored with.
    pub fn predict_cold(&self, data: &ElemeDataset, ids: &[u32]) -> (Vec<f32>, Vec<f32>) {
        let profile = data.encode_restaurant_profiles(ids);
        let groups = data.encode_groups_of(ids);
        let mut g = Graph::new();
        let rv = self.restaurant_vec_generated(&mut g, &profile);
        let gv = self.group_vec(&mut g, &groups);
        let (vppv_pred, gmv_pred) = self.heads(&mut g, rv, gv);
        (
            destandardize(g.value(vppv_pred), self.vppv_stats),
            destandardize(g.value(gmv_pred), self.gmv_stats),
        )
    }

    /// Cold-start predictions via the *encoder* path with statistics
    /// imputed by `means` — how a TNN without a generator must score new
    /// sign-ups (the Table-IV baseline).
    pub fn predict_cold_imputed(
        &self,
        data: &ElemeDataset,
        ids: &[u32],
        means: &[f32],
    ) -> (Vec<f32>, Vec<f32>) {
        let profile = data.encode_restaurant_profiles(ids);
        let groups = data.encode_groups_of(ids);
        let imputed = crate::Atnn::imputed_stats_block(ids.len(), means);
        let mut g = Graph::new();
        let rv = self.restaurant_vec_full(&mut g, &profile, &imputed);
        let gv = self.group_vec(&mut g, &groups);
        let (vppv_pred, gmv_pred) = self.heads(&mut g, rv, gv);
        (
            destandardize(g.value(vppv_pred), self.vppv_stats),
            destandardize(g.value(gmv_pred), self.gmv_stats),
        )
    }

    /// Predictions `(vppv, gmv)` from complete features (established
    /// restaurants), in original units.
    pub fn predict_full(&self, data: &ElemeDataset, ids: &[u32]) -> (Vec<f32>, Vec<f32>) {
        let profile = data.encode_restaurant_profiles(ids);
        let stats = data.encode_restaurant_stats(ids);
        let groups = data.encode_groups_of(ids);
        let mut g = Graph::new();
        let rv = self.restaurant_vec_full(&mut g, &profile, &stats);
        let gv = self.group_vec(&mut g, &groups);
        let (vppv_pred, gmv_pred) = self.heads(&mut g, rv, gv);
        (
            destandardize(g.value(vppv_pred), self.vppv_stats),
            destandardize(g.value(gmv_pred), self.gmv_stats),
        )
    }

    /// The model configuration.
    pub fn config(&self) -> &AtnnConfig {
        &self.config
    }

    /// Trainable scalar count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn standardized_targets(&self, ids: &[u32], data: &ElemeDataset, task: Task) -> Matrix {
        let (mean, std) = match task {
            Task::Vppv => self.vppv_stats,
            Task::Gmv => self.gmv_stats,
        };
        Matrix::from_fn(ids.len(), 1, |i, _| {
            let raw = match task {
                Task::Vppv => data.vppv(ids[i]),
                Task::Gmv => data.gmv(ids[i]),
            };
            (raw - mean) / std
        })
    }
}

#[derive(Clone, Copy)]
enum Task {
    Vppv,
    Gmv,
}

fn mean_std(values: impl Iterator<Item = f32>) -> (f32, f32) {
    let values: Vec<f32> = values.collect();
    let n = values.len().max(1) as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var.sqrt().max(1e-6))
}

fn destandardize(pred: &Matrix, (mean, std): (f32, f32)) -> Vec<f32> {
    pred.as_slice().iter().map(|&v| v * std + mean).collect()
}

/// MAE of cold-start predictions over `rows`, in original units:
/// `(vppv_mae, gmv_mae)` — the paper's Table IV metrics.
pub fn evaluate_mae_cold(model: &MultiTaskAtnn, data: &ElemeDataset, rows: &[u32]) -> (f64, f64) {
    let (vppv_pred, gmv_pred) = model.predict_cold(data, rows);
    let vppv_true: Vec<f32> = rows.iter().map(|&r| data.vppv(r)).collect();
    let gmv_true: Vec<f32> = rows.iter().map(|&r| data.gmv(r)).collect();
    (
        atnn_metrics::mae(&vppv_pred, &vppv_true).expect("vppv mae"),
        atnn_metrics::mae(&gmv_pred, &gmv_true).expect("gmv mae"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_data::dataset::Split;
    use atnn_data::eleme::ElemeConfig;

    fn setup() -> (ElemeDataset, Split) {
        let data =
            ElemeDataset::generate(ElemeConfig { num_restaurants: 1_200, ..ElemeConfig::tiny() });
        let mut rng = Rng64::seed_from_u64(5);
        let split = Split::random(data.num_restaurants(), 0.2, &mut rng);
        (data, split)
    }

    #[test]
    fn training_reduces_losses() {
        let (data, split) = setup();
        let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
        let opts = MultiTaskTrainOptions { epochs: 3, ..Default::default() };
        let reports = model.train(&data, &split.train, &opts);
        assert_eq!(reports.len(), 3);
        // L_s chases a moving target early on (the encoder is still
        // drifting), so only the regression losses are asserted monotone.
        assert!(reports[2].loss_d < reports[0].loss_d, "{reports:?}");
        assert!(reports[2].loss_g < reports[0].loss_g, "{reports:?}");
        assert!(reports[2].loss_s.is_finite());
    }

    #[test]
    fn cold_predictions_beat_mean_baseline() {
        let (data, split) = setup();
        let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
        let opts = MultiTaskTrainOptions { epochs: 12, ..Default::default() };
        model.train(&data, &split.train, &opts);
        let (vppv_mae, gmv_mae) = evaluate_mae_cold(&model, &data, &split.test);
        // Baseline: always predict the training mean.
        let (vm, _) = model.vppv_stats;
        let (gm, _) = model.gmv_stats;
        let vppv_base: f64 =
            split.test.iter().map(|&r| (data.vppv(r) - vm).abs() as f64).sum::<f64>()
                / split.test.len() as f64;
        let gmv_base: f64 =
            split.test.iter().map(|&r| (data.gmv(r) - gm).abs() as f64).sum::<f64>()
                / split.test.len() as f64;
        assert!(vppv_mae < vppv_base, "VpPV {vppv_mae} vs mean-baseline {vppv_base}");
        assert!(gmv_mae < gmv_base, "GMV {gmv_mae} vs mean-baseline {gmv_base}");
    }

    #[test]
    fn multitask_beats_plain_tnn_on_cold_start() {
        // The Table-IV claim at miniature scale: ATNN (adversarial) < TNN
        // (no generator => score cold restaurants with imputed... here TNN
        // means training the same architecture without the G phase, then
        // predicting cold restaurants with the *generator path untrained*
        // is unfair; instead TNN's cold prediction uses the encoder with
        // mean-imputed stats).
        let (data, split) = setup();
        let opts = MultiTaskTrainOptions { epochs: 12, ..Default::default() };

        let mut atnn = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
        atnn.train(&data, &split.train, &opts);
        let (atnn_vppv, atnn_gmv) = evaluate_mae_cold(&atnn, &data, &split.test);

        let mut tnn = MultiTaskAtnn::new(AtnnConfig::tnn_dcn(), &data, &split.train);
        tnn.train(&data, &split.train, &opts);
        // TNN cold prediction: encoder path with imputed statistics.
        let means = data.mean_restaurant_stats(&split.train);
        let profile = data.encode_restaurant_profiles(&split.test);
        let groups = data.encode_groups_of(&split.test);
        let imputed = crate::Atnn::imputed_stats_block(split.test.len(), &means);
        let mut g = Graph::new();
        let rv = tnn.restaurant_vec_full(&mut g, &profile, &imputed);
        let gv = tnn.group_vec(&mut g, &groups);
        let (vp, gp) = tnn.heads(&mut g, rv, gv);
        let vppv_pred = destandardize(g.value(vp), tnn.vppv_stats);
        let gmv_pred = destandardize(g.value(gp), tnn.gmv_stats);
        let vppv_true: Vec<f32> = split.test.iter().map(|&r| data.vppv(r)).collect();
        let gmv_true: Vec<f32> = split.test.iter().map(|&r| data.gmv(r)).collect();
        let tnn_vppv = atnn_metrics::mae(&vppv_pred, &vppv_true).unwrap();
        let tnn_gmv = atnn_metrics::mae(&gmv_pred, &gmv_true).unwrap();

        assert!(atnn_vppv < tnn_vppv, "ATNN VpPV MAE {atnn_vppv} should beat TNN {tnn_vppv}");
        assert!(atnn_gmv < tnn_gmv, "ATNN GMV MAE {atnn_gmv} should beat TNN {tnn_gmv}");
    }

    #[test]
    fn predict_full_uses_statistics() {
        let (data, split) = setup();
        let mut model = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &split.train);
        model.train(
            &data,
            &split.train,
            &MultiTaskTrainOptions { epochs: 4, ..Default::default() },
        );
        let (full_vppv, _) = model.predict_full(&data, &split.test);
        let vppv_true: Vec<f32> = split.test.iter().map(|&r| data.vppv(r)).collect();
        let full_mae = atnn_metrics::mae(&full_vppv, &vppv_true).unwrap();
        let (cold_mae, _) = evaluate_mae_cold(&model, &data, &split.test);
        // Complete features can only help (or match).
        assert!(full_mae <= cold_mae * 1.15, "full {full_mae} vs cold {cold_mae}");
    }

    #[test]
    #[should_panic(expected = "need training restaurants")]
    fn rejects_empty_train_set() {
        let (data, _) = setup();
        let _ = MultiTaskAtnn::new(AtnnConfig::scaled(), &data, &[]);
    }
}
