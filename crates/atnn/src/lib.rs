//! # ATNN — Adversarial Two-Tower Neural Network
//!
//! Rust reproduction of *"ATNN: Adversarial Two-Tower Neural Network for
//! New Item's Popularity Prediction in E-commerce"* (ICDE 2021).
//!
//! The model solves the **new-arrival cold-start problem**: predicting an
//! item's click-through rate (and hence popularity) *before* any user has
//! interacted with it, when only its profile — not its behavioural
//! statistics — exists.
//!
//! ## Architecture (paper Fig. 4)
//! - An **item encoder** tower maps item profile *and* statistics features
//!   to an item vector; a **user tower** maps user features to a user
//!   vector. CTR is scored as `σ(⟨v_item, v_user⟩ + b)`.
//! - A **generator** maps *profile-only* features to a generated item
//!   vector. An **adversarial component** forces generated vectors to be
//!   indistinguishable from encoded vectors; the paper's equations realize
//!   it as a similarity loss `L_s = mean((1 − S(g(X_ip), f_i(X_i)))²)`
//!   ([`AdversarialMode::Similarity`]); a literal GAN discriminator is also
//!   provided ([`AdversarialMode::LearnedDiscriminator`]).
//! - Both item embedding layers **share their embedding tables**
//!   (`shared_embeddings`), and every encoder/generator embeds a **Deep &
//!   Cross Network** (`use_cross`).
//! - Training alternates the paper's Algorithm 1: a *D step* minimizing
//!   the full-feature CTR loss `L_i`, then a *G step* minimizing
//!   `L_g + λ·L_s`.
//!
//! ## Serving (paper Fig. 5)
//! [`PopularityIndex`] stores the frozen **mean user vector** of an active
//! user group; a new arrival's popularity is `σ(⟨v̂_item, v̄_user⟩ + b)` —
//! `O(1)` per item instead of `O(N_users)`.
//!
//! ## Extensions (paper §V, Fig. 6)
//! [`MultiTaskAtnn`] retargets the architecture at the Ele.me food-delivery
//! scenario: location-grouped mean user features and joint VpPV + GMV
//! regression heads trained by Algorithm 2.
//!
//! ## Quick start
//! ```
//! use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
//! use atnn_data::tmall::{TmallConfig, TmallDataset};
//!
//! let data = TmallDataset::generate(TmallConfig::tiny());
//! let mut model = Atnn::new(AtnnConfig::scaled(), &data);
//! let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
//! let report = CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
//! assert!(report.epochs[0].loss_i.is_finite());
//!
//! // O(1) cold-start popularity for three brand-new items:
//! let index = PopularityIndex::build(&model, &data, &(0..100).collect::<Vec<_>>());
//! let scores = index.score_new_arrivals(&model, &data, &[5, 6, 7]);
//! assert_eq!(scores.len(), 3);
//! ```

mod artifact;
mod concat_dnn;
mod config;
mod features;
mod grouping;
mod model;
mod multitask;
mod popularity;
mod towers;
mod trainer;

pub use artifact::{ArtifactError, InstantiatedModel, ModelArtifact, QuantTables};
pub use concat_dnn::ConcatDnn;
pub use config::{embed_dim_for, AdversarialMode, AtnnConfig, AtnnConfigBuilder, ConfigError};
pub use features::FeatureEncoder;
pub use grouping::{GroupedPopularityIndex, KMeans};
pub use model::{Atnn, StepLosses};
pub use multitask::{evaluate_mae_cold, MultiTaskAtnn, MultiTaskReport, MultiTaskTrainOptions};
pub use popularity::{
    pairwise_popularity, pairwise_popularity_parallel, PopularityIndex, ServingIndex,
};
pub use towers::Tower;
pub use trainer::{
    evaluate_auc_full, evaluate_auc_generated, evaluate_auc_imputed, gather_batch, CtrTrainer,
    EpochStats, TrainError, TrainOptions, TrainOptionsBuilder, TrainReport,
};
