//! The standard concat-DNN CTR model of the paper's Fig. 2.
//!
//! "It is a classical method that first concatenates an item embedding and
//! a user embedding. We cannot obtain item vector nor user vector by this
//! model." — this type intentionally exposes **no** item/user vector API;
//! its existence (and that limitation) motivates the two-tower structure.

use atnn_autograd::{Graph, ParamId, ParamStore};
use atnn_data::schema::FeatureBlock;
use atnn_data::tmall::TmallDataset;
use atnn_nn::{clip_grad_norm, Activation, Adam, Mlp, Optimizer};
use atnn_tensor::{Matrix, Rng64};

use crate::config::AtnnConfig;
use crate::features::FeatureEncoder;

/// A single MLP over the concatenation of all item and user features.
#[derive(Debug)]
pub struct ConcatDnn {
    store: ParamStore,
    profile_encoder: FeatureEncoder,
    stats_encoder: FeatureEncoder,
    user_encoder: FeatureEncoder,
    mlp: Mlp,
    group: Vec<ParamId>,
    opt: Adam,
    grad_clip: f32,
}

impl ConcatDnn {
    /// Builds the model against a [`TmallDataset`]. Reuses [`AtnnConfig`]
    /// for widths/learning rate; the tower/adversarial fields are ignored.
    pub fn new(config: &AtnnConfig, data: &TmallDataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(config.seed ^ 0xF162);
        let all_items: Vec<u32> = (0..data.num_items() as u32).collect();
        let all_users: Vec<u32> = (0..data.num_users() as u32).collect();
        let profile_block = data.encode_item_profiles(&all_items);
        let stats_block = data.encode_item_stats(&all_items);
        let user_block = data.encode_users(&all_users);

        let profile_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "cd.profile",
            &TmallDataset::item_profile_schema(),
            config.max_embed_dim,
            Some(&profile_block.numeric),
        );
        let stats_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "cd.stats",
            &TmallDataset::item_stats_schema(),
            config.max_embed_dim,
            Some(&stats_block.numeric),
        );
        let user_encoder = FeatureEncoder::new(
            &mut store,
            &mut rng,
            "cd.user",
            &TmallDataset::user_schema(),
            config.max_embed_dim,
            Some(&user_block.numeric),
        );

        // Row-sparse embedding gradients (see `ParamStore::mark_sparse`).
        for id in profile_encoder
            .embedding_params()
            .into_iter()
            .chain(stats_encoder.embedding_params())
            .chain(user_encoder.embedding_params())
        {
            store.mark_sparse(id);
        }

        let in_dim = profile_encoder.out_dim() + stats_encoder.out_dim() + user_encoder.out_dim();
        let mut dims = vec![in_dim];
        dims.extend_from_slice(&config.deep_dims);
        dims.push(1);
        let mlp = Mlp::new(&mut store, &mut rng, "cd.mlp", &dims, Activation::Relu);

        let mut group = Vec::new();
        group.extend(profile_encoder.embedding_params());
        group.extend(stats_encoder.embedding_params());
        group.extend(user_encoder.embedding_params());
        group.extend(mlp.params());
        let opt = Adam::new(group.clone(), config.learning_rate);

        ConcatDnn {
            store,
            profile_encoder,
            stats_encoder,
            user_encoder,
            mlp,
            group,
            opt,
            grad_clip: config.grad_clip,
        }
    }

    /// One SGD step on a batch; returns the BCE loss.
    pub fn train_step(
        &mut self,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
        users: &FeatureBlock,
        labels: &Matrix,
    ) -> f32 {
        let t0 = atnn_obs::timing_enabled().then(std::time::Instant::now);
        self.store.zero_grads(&self.group);
        let mut g = Graph::new();
        let logits = self.forward(&mut g, profile, stats, users);
        let loss = g.bce_with_logits_loss(logits, labels);
        let value = g.value(loss).get(0, 0);
        g.backward(loss, &mut self.store);
        clip_grad_norm(&mut self.store, &self.group, self.grad_clip);
        self.opt.step(&mut self.store);
        if let Some(t0) = t0 {
            atnn_obs::emit(&atnn_obs::Event::StepTiming {
                section: "concat_dnn.train_step".into(),
                ns: t0.elapsed().as_nanos() as u64,
                rows: labels.rows() as u64,
            });
        }
        value
    }

    fn forward(
        &self,
        g: &mut Graph,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
        users: &FeatureBlock,
    ) -> atnn_autograd::Var {
        let p = self.profile_encoder.encode(g, &self.store, profile);
        let s = self.stats_encoder.encode(g, &self.store, stats);
        let u = self.user_encoder.encode(g, &self.store, users);
        let x = g.concat_all(&[p, s, u]);
        self.mlp.forward(g, &self.store, x)
    }

    /// Predicted CTR probabilities.
    pub fn predict(
        &self,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
        users: &FeatureBlock,
    ) -> Vec<f32> {
        let mut g = Graph::new();
        let logits = self.forward(&mut g, profile, stats, users);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// Trainable scalar count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::gather_batch;
    use atnn_data::tmall::TmallConfig;

    fn data() -> TmallDataset {
        TmallDataset::generate(TmallConfig {
            num_users: 80,
            num_items: 150,
            num_interactions: 1_500,
            ..TmallConfig::tiny()
        })
    }

    #[test]
    fn loss_decreases_on_fixed_batch() {
        let data = data();
        let mut model = ConcatDnn::new(&AtnnConfig::scaled(), &data);
        let (profile, stats, users, labels) = gather_batch(&data, &(0..128).collect::<Vec<_>>());
        let first = model.train_step(&profile, &stats, &users, &labels);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_step(&profile, &stats, &users, &labels);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn predicts_probabilities() {
        let data = data();
        let model = ConcatDnn::new(&AtnnConfig::scaled(), &data);
        let (profile, stats, users, _) = gather_batch(&data, &[0, 1, 2]);
        let p = model.predict(&profile, &stats, &users);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
