//! O(1) popularity serving with a pre-learned mean user vector (paper
//! Fig. 5 and §III-D).
//!
//! Ranking all new arrivals naively requires scoring the Cartesian product
//! of `N_items × N_users` pairs. The paper's observation: for *ranking
//! items* the user side can be collapsed once — select an active user
//! group, average their user vectors at training time, and score each new
//! arrival against the stored mean vector. Per-item cost drops from
//! `O(N_users)` to `O(1)`.

use std::sync::Arc;

use atnn_data::tmall::TmallDataset;
use atnn_tensor::{dot, pool, Matrix, SwapCell};

use crate::model::Atnn;

/// The frozen mean-user-vector index.
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityIndex {
    mean_user_vec: Vec<f32>,
    bias: f32,
}

const BATCH: usize = 512;

impl PopularityIndex {
    /// Builds the index from a user group: encodes the group's users in
    /// batches through the user tower and averages the vectors.
    pub fn build(model: &Atnn, data: &TmallDataset, user_group: &[u32]) -> Self {
        assert!(!user_group.is_empty(), "PopularityIndex: empty user group");
        let dim = model.config().vec_dim;
        let mut mean = vec![0.0f64; dim];
        for chunk in user_group.chunks(BATCH) {
            let block = data.encode_users(chunk);
            let vecs = model.user_vectors(&block);
            for i in 0..vecs.rows() {
                for (m, &v) in mean.iter_mut().zip(vecs.row(i)) {
                    *m += v as f64;
                }
            }
        }
        let n = user_group.len() as f64;
        let mean_user_vec = mean.into_iter().map(|v| (v / n) as f32).collect();
        PopularityIndex { mean_user_vec, bias: model.bias_value() }
    }

    /// Builds directly from materialized user vectors (rows) and a bias.
    pub fn from_user_vectors(vectors: &Matrix, bias: f32) -> Self {
        assert!(vectors.rows() > 0, "PopularityIndex: no vectors");
        PopularityIndex { mean_user_vec: vectors.mean_rows().into_vec(), bias }
    }

    /// Reassembles an index from its stored parts (artifact loading).
    pub fn from_parts(mean_user_vec: Vec<f32>, bias: f32) -> Self {
        assert!(!mean_user_vec.is_empty(), "PopularityIndex: empty mean vector");
        PopularityIndex { mean_user_vec, bias }
    }

    /// O(1) popularity score of one item vector:
    /// `σ(⟨v_item, v̄_user⟩ + b)`.
    pub fn score_vector(&self, item_vec: &[f32]) -> f32 {
        assert_eq!(item_vec.len(), self.mean_user_vec.len(), "vector width mismatch");
        sigmoid(dot(item_vec, &self.mean_user_vec) + self.bias)
    }

    /// Scores a batch of *new arrivals* end to end: generator vectors from
    /// profiles, then the O(1) dot against the stored mean user vector.
    pub fn score_new_arrivals(&self, model: &Atnn, data: &TmallDataset, items: &[u32]) -> Vec<f32> {
        let mut scores = Vec::with_capacity(items.len());
        for chunk in items.chunks(BATCH) {
            let profile = data.encode_item_profiles(chunk);
            let vecs = model.item_vectors_generated(&profile);
            scores.extend((0..vecs.rows()).map(|i| self.score_vector(vecs.row(i))));
        }
        scores
    }

    /// Converts a precomputed raw dot product `⟨v_item, v̄_user⟩` into the
    /// popularity probability `σ(dot + b)` — the same sigmoid and bias as
    /// [`PopularityIndex::score_vector`], so retrieval paths that rank in
    /// dot space can convert their winners bit-identically.
    pub fn score_from_dot(&self, dot: f32) -> f32 {
        sigmoid(dot + self.bias)
    }

    /// The stored mean user vector.
    pub fn mean_user_vec(&self) -> &[f32] {
        &self.mean_user_vec
    }

    /// The stored scoring bias.
    pub fn bias(&self) -> f32 {
        self.bias
    }
}

/// Reference implementation of the *naive* ranking path: each item's
/// popularity as the mean pairwise CTR over every user in the group —
/// `O(N_users)` per item. Kept for the fidelity ablation (DESIGN.md A5)
/// and the Fig. 5 efficiency benchmark.
pub fn pairwise_popularity(
    model: &Atnn,
    data: &TmallDataset,
    items: &[u32],
    user_group: &[u32],
) -> Vec<f32> {
    assert!(!user_group.is_empty(), "pairwise_popularity: empty user group");
    // Materialize all user vectors once (batched).
    let mut user_vecs: Vec<Matrix> = Vec::new();
    for chunk in user_group.chunks(BATCH) {
        let block = data.encode_users(chunk);
        user_vecs.push(model.user_vectors(&block));
    }
    let bias = model.bias_value();
    let mut scores = Vec::with_capacity(items.len());
    for chunk in items.chunks(BATCH) {
        let profile = data.encode_item_profiles(chunk);
        let ivecs = model.item_vectors_generated(&profile);
        for i in 0..ivecs.rows() {
            let iv = ivecs.row(i);
            let mut total = 0.0f64;
            for block in &user_vecs {
                for u in 0..block.rows() {
                    total += sigmoid(dot(iv, block.row(u)) + bias) as f64;
                }
            }
            scores.push((total / user_group.len() as f64) as f32);
        }
    }
    scores
}

/// Multi-threaded variant of [`pairwise_popularity`]: splits the item set
/// across the shared [`pool`]. Bit-identical to the serial path — each
/// item's mean is an independent reduction and the item→chunk split
/// depends only on `items.len()` and `threads`.
pub fn pairwise_popularity_parallel(
    model: &Atnn,
    data: &TmallDataset,
    items: &[u32],
    user_group: &[u32],
    threads: usize,
) -> Vec<f32> {
    assert!(threads > 0, "need at least one thread");
    assert!(!user_group.is_empty(), "pairwise_popularity_parallel: empty user group");
    if threads == 1 || items.len() < 2 * threads {
        return pairwise_popularity(model, data, items, user_group);
    }
    let chunk_size = items.len().div_ceil(threads);
    pool::map_chunks(items, chunk_size, threads, |chunk| {
        pairwise_popularity(model, data, chunk, user_group)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// A hot-swappable serving wrapper: scoring threads read an [`Arc`]
/// snapshot while a trainer republishes the index after each model
/// refresh — the "store its mean user vector at the training stage"
/// deployment shape of the paper's real-time engine.
///
/// Built on [`SwapCell`]: a score or snapshot is one refcount bump (the
/// mean-vector matrix is never copied), and a publish is one pointer swap,
/// so readers never wait behind an index rebuild.
#[derive(Debug)]
pub struct ServingIndex {
    inner: SwapCell<PopularityIndex>,
}

impl ServingIndex {
    /// Wraps an index for concurrent use.
    pub fn new(index: PopularityIndex) -> Self {
        ServingIndex { inner: SwapCell::new(index) }
    }

    /// Scores one item vector against the currently published index.
    pub fn score(&self, item_vec: &[f32]) -> f32 {
        self.inner.load().score_vector(item_vec)
    }

    /// Atomically replaces the published index.
    pub fn publish(&self, index: PopularityIndex) {
        self.inner.publish(index);
    }

    /// A zero-copy snapshot of the current index; stays valid (and
    /// unchanged) across later publishes.
    pub fn snapshot(&self) -> Arc<PopularityIndex> {
        self.inner.load()
    }
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtnnConfig;
    use crate::trainer::{CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallConfig;

    fn trained() -> (Atnn, TmallDataset) {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 120,
            num_items: 250,
            num_interactions: 3_000,
            ..TmallConfig::tiny()
        });
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        CtrTrainer::new(TrainOptions { epochs: 1, ..Default::default() })
            .train(&mut model, &data, None)
            .unwrap();
        (model, data)
    }

    #[test]
    fn index_is_the_mean_of_user_vectors() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..100).collect();
        let index = PopularityIndex::build(&model, &data, &group);
        let vecs = model.user_vectors(&data.encode_users(&group));
        let manual = vecs.mean_rows();
        for (a, b) in index.mean_user_vec().iter().zip(manual.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(index.bias(), model.bias_value());
    }

    #[test]
    fn scores_are_probabilities_and_deterministic() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..80).collect();
        let index = PopularityIndex::build(&model, &data, &group);
        let items: Vec<u32> = (0..50).collect();
        let a = index.score_new_arrivals(&model, &data, &items);
        let b = index.score_new_arrivals(&model, &data, &items);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mean_vector_ranking_agrees_with_pairwise() {
        // The O(1) path is an approximation of the O(N_U) path; their
        // rankings must agree strongly (ablation A5's core claim).
        let (model, data) = trained();
        let group: Vec<u32> = (0..data.num_users() as u32).collect();
        let items: Vec<u32> = (0..120).collect();
        let index = PopularityIndex::build(&model, &data, &group);
        let fast = index.score_new_arrivals(&model, &data, &items);
        let slow = pairwise_popularity(&model, &data, &items, &group);
        let rho = atnn_metrics::spearman(&fast, &slow).unwrap();
        assert!(rho > 0.95, "rank agreement too weak: {rho}");
    }

    #[test]
    fn from_user_vectors_matches_build() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..64).collect();
        let built = PopularityIndex::build(&model, &data, &group);
        let vecs = model.user_vectors(&data.encode_users(&group));
        let direct = PopularityIndex::from_user_vectors(&vecs, model.bias_value());
        for (a, b) in built.mean_user_vec().iter().zip(direct.mean_user_vec()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_pairwise_matches_serial() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..64).collect();
        let items: Vec<u32> = (0..90).collect();
        let serial = pairwise_popularity(&model, &data, &items, &group);
        for threads in [1usize, 2, 4, 7] {
            let parallel = pairwise_popularity_parallel(&model, &data, &items, &group, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn serving_index_hot_swaps() {
        let (model, data) = trained();
        let group: Vec<u32> = (0..32).collect();
        let index = PopularityIndex::build(&model, &data, &group);
        let serving = ServingIndex::new(index.clone());
        let item = model.item_vectors_generated(&data.encode_item_profiles(&[0])).row(0).to_vec();
        let before = serving.score(&item);
        assert_eq!(before, index.score_vector(&item));
        // Publish a different index (other user group) and observe change.
        let other = PopularityIndex::build(&model, &data, &(32..80).collect::<Vec<_>>());
        let pre_swap = serving.snapshot();
        serving.publish(other.clone());
        assert_eq!(serving.score(&item), other.score_vector(&item));
        assert_eq!(*serving.snapshot(), other);
        assert_eq!(*pre_swap, index, "old snapshots survive a publish unchanged");
    }

    #[test]
    fn snapshots_share_storage_between_publishes() {
        let (model, data) = trained();
        let serving = ServingIndex::new(PopularityIndex::build(&model, &data, &[0, 1, 2]));
        let a = serving.snapshot();
        let b = serving.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "snapshot must be a refcount bump, not a copy");
    }

    #[test]
    fn from_parts_roundtrips_the_stored_state() {
        let (model, data) = trained();
        let built = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        let rebuilt = PopularityIndex::from_parts(built.mean_user_vec().to_vec(), built.bias());
        assert_eq!(rebuilt, built);
    }

    #[test]
    #[should_panic(expected = "empty user group")]
    fn build_rejects_empty_group() {
        let (model, data) = trained();
        let _ = PopularityIndex::build(&model, &data, &[]);
    }
}
