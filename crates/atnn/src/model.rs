//! The ATNN model: towers, generator, adversarial component, and the
//! alternating optimization of the paper's Algorithm 1.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_data::schema::FeatureBlock;
use atnn_data::tmall::TmallDataset;
use atnn_nn::{clip_grad_norm, Activation, Adam, Mlp, Optimizer};
use atnn_tensor::{Matrix, Rng64};

use crate::config::{AdversarialMode, AtnnConfig};
use crate::features::FeatureEncoder;
use crate::towers::Tower;

/// Losses observed in one [`Atnn::train_step`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepLosses {
    /// `L_i` — CTR loss of the full-feature (encoder) path.
    pub loss_i: f32,
    /// `L_g` — CTR loss of the generated (profile-only) path.
    pub loss_g: f32,
    /// `L_s` — similarity/adversarial loss between generated and encoded
    /// item vectors.
    pub loss_s: f32,
    /// Discriminator loss (learned-discriminator mode only).
    pub loss_disc: f32,
}

/// The Adversarial Two-Tower Neural Network (paper Fig. 4).
///
/// Also implements the paper's TNN-FC and TNN-DCN baselines: with
/// [`AdversarialMode::None`] only the encoder path exists, and
/// `use_cross` toggles DCN vs fully connected towers.
#[derive(Debug)]
pub struct Atnn {
    config: AtnnConfig,
    store: ParamStore,
    profile_encoder: FeatureEncoder,
    generator_encoder: FeatureEncoder,
    stats_encoder: FeatureEncoder,
    user_encoder: FeatureEncoder,
    item_tower: Tower,
    generator_tower: Tower,
    user_tower: Tower,
    bias: ParamId,
    discriminator: Option<Mlp>,
    d_group: Vec<ParamId>,
    g_group: Vec<ParamId>,
    disc_group: Vec<ParamId>,
    opt_d: Adam,
    opt_g: Adam,
    opt_disc: Option<Adam>,
    dropout_rng: Rng64,
    /// Tape reused across training steps: node storage and the backward
    /// workspace arena persist, so the steady-state step allocates no
    /// per-batch gradient scratch.
    graph: Graph,
}

impl Atnn {
    /// Builds the model against a [`TmallDataset`]'s schemas; numeric
    /// normalizers are fit on the dataset's feature population (features
    /// only — no labels are touched).
    pub fn new(config: AtnnConfig, data: &TmallDataset) -> Self {
        let all_items: Vec<u32> = (0..data.num_items() as u32).collect();
        let all_users: Vec<u32> = (0..data.num_users() as u32).collect();
        let profile_block = data.encode_item_profiles(&all_items);
        let stats_block = data.encode_item_stats(&all_items);
        let user_block = data.encode_users(&all_users);
        Self::from_blocks(config, &profile_block, &stats_block, &user_block)
    }

    /// Builds the model from representative feature blocks (used directly
    /// by the multi-task variant and by tests).
    pub fn from_blocks(
        config: AtnnConfig,
        profile_block: &FeatureBlock,
        stats_block: &FeatureBlock,
        user_block: &FeatureBlock,
    ) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(config.seed);
        let mut weight_rng = rng.fork(1);
        let dropout_rng = rng.fork(2);

        let profile_schema = TmallDataset::item_profile_schema();
        let stats_schema = TmallDataset::item_stats_schema();
        let user_schema = TmallDataset::user_schema();
        // The schemas above are only used when the caller passed blocks
        // from the Tmall simulator; validate and fall back to structural
        // inference otherwise.
        let infer = |block: &FeatureBlock,
                     candidate: &atnn_data::schema::FeatureSchema|
         -> atnn_data::schema::FeatureSchema {
            if block.validate(candidate).is_ok() {
                candidate.clone()
            } else {
                // Structural schema: vocab = max id + 1 per column.
                let mut fields = Vec::new();
                for (i, col) in block.categorical.iter().enumerate() {
                    let vocab = col.iter().copied().max().unwrap_or(0) as usize + 1;
                    fields.push(atnn_data::schema::FieldSpec::categorical(
                        &format!("cat{i}"),
                        vocab.max(2),
                    ));
                }
                for j in 0..block.numeric.cols() {
                    fields.push(atnn_data::schema::FieldSpec::numeric(&format!("num{j}")));
                }
                atnn_data::schema::FeatureSchema::new(fields)
            }
        };
        let profile_schema = infer(profile_block, &profile_schema);
        let stats_schema = infer(stats_block, &stats_schema);
        let user_schema = infer(user_block, &user_schema);

        let profile_encoder = FeatureEncoder::new(
            &mut store,
            &mut weight_rng,
            "item.profile",
            &profile_schema,
            config.max_embed_dim,
            Some(&profile_block.numeric),
        );
        // The paper's shared-embedding strategy: the generator either
        // reuses the encoder's tables (clone of the handle) or gets its own.
        let generator_encoder = if config.shared_embeddings {
            profile_encoder.clone()
        } else {
            FeatureEncoder::new(
                &mut store,
                &mut weight_rng,
                "gen.profile",
                &profile_schema,
                config.max_embed_dim,
                Some(&profile_block.numeric),
            )
        };
        let stats_encoder = FeatureEncoder::new(
            &mut store,
            &mut weight_rng,
            "item.stats",
            &stats_schema,
            config.max_embed_dim,
            Some(&stats_block.numeric),
        );
        let user_encoder = FeatureEncoder::new(
            &mut store,
            &mut weight_rng,
            "user",
            &user_schema,
            config.max_embed_dim,
            Some(&user_block.numeric),
        );

        // Embedding tables get row-sparse gradients: a batch only touches
        // a few rows of each vocab-sized table (mark_sparse is idempotent,
        // so shared generator/profile tables may be marked twice).
        for id in profile_encoder
            .embedding_params()
            .into_iter()
            .chain(generator_encoder.embedding_params())
            .chain(stats_encoder.embedding_params())
            .chain(user_encoder.embedding_params())
        {
            store.mark_sparse(id);
        }

        let item_tower = Tower::new(
            &mut store,
            &mut weight_rng,
            "item.tower",
            profile_encoder.out_dim() + stats_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );
        let generator_tower = Tower::new(
            &mut store,
            &mut weight_rng,
            "gen.tower",
            generator_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );
        let user_tower = Tower::new(
            &mut store,
            &mut weight_rng,
            "user.tower",
            user_encoder.out_dim(),
            &config.deep_dims,
            config.cross_depth,
            config.use_cross,
            config.vec_dim,
        );
        let bias = store.add("score.bias", Matrix::zeros(1, 1));

        let discriminator = matches!(config.adversarial, AdversarialMode::LearnedDiscriminator)
            .then(|| {
                let mut dims = vec![config.vec_dim];
                dims.extend_from_slice(&config.disc_dims);
                dims.push(1);
                Mlp::new(&mut store, &mut weight_rng, "disc", &dims, Activation::Relu)
            });

        // Parameter groups for the alternating optimization. The shared
        // embedding tables live in the D group and — when shared — also in
        // the G group, so both phases refine them (the paper's stated
        // motivation for sharing).
        let mut d_group = Vec::new();
        d_group.extend(profile_encoder.embedding_params());
        d_group.extend(user_encoder.embedding_params());
        d_group.extend(item_tower.params());
        d_group.extend(user_tower.params());
        d_group.push(bias);

        let mut g_group = Vec::new();
        g_group.extend(generator_encoder.embedding_params());
        g_group.extend(generator_tower.params());

        let disc_group: Vec<ParamId> = discriminator.as_ref().map(Mlp::params).unwrap_or_default();

        let opt_d = Adam::new(d_group.clone(), config.learning_rate);
        let opt_g = Adam::new(g_group.clone(), config.learning_rate);
        let opt_disc =
            discriminator.as_ref().map(|_| Adam::new(disc_group.clone(), config.learning_rate));

        Atnn {
            config,
            store,
            profile_encoder,
            generator_encoder,
            stats_encoder,
            user_encoder,
            item_tower,
            generator_tower,
            user_tower,
            bias,
            discriminator,
            d_group,
            g_group,
            disc_group,
            opt_d,
            opt_g,
            opt_disc,
            dropout_rng,
            graph: Graph::new(),
        }
    }

    // ------------------------------------------------------------------
    // Forward passes
    // ------------------------------------------------------------------

    /// Item vector from complete features (profile + statistics): `f_i(X_i)`.
    pub fn item_vec_full(
        &self,
        g: &mut Graph,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
    ) -> Var {
        let p = self.profile_encoder.encode(g, &self.store, profile);
        let s = self.stats_encoder.encode(g, &self.store, stats);
        let x = g.concat_cols(p, s);
        self.item_tower.forward(g, &self.store, x)
    }

    /// Generated item vector from profile only: `g(X_ip)`.
    pub fn item_vec_generated(&self, g: &mut Graph, profile: &FeatureBlock) -> Var {
        let x = self.generator_encoder.encode(g, &self.store, profile);
        self.generator_tower.forward(g, &self.store, x)
    }

    /// User vector `f_u(X_u)`.
    pub fn user_vec(&self, g: &mut Graph, users: &FeatureBlock) -> Var {
        let x = self.user_encoder.encode(g, &self.store, users);
        self.user_tower.forward(g, &self.store, x)
    }

    /// Pairwise CTR logits `H(v_i, v_u) = ⟨v_i, v_u⟩ + b` (`[batch, 1]`).
    pub fn score_logits(&self, g: &mut Graph, item_vecs: Var, user_vecs: Var) -> Var {
        let dots = g.rowwise_dot(item_vecs, user_vecs);
        let b = g.param(&self.store, self.bias);
        g.add_row_broadcast(dots, b)
    }

    // ------------------------------------------------------------------
    // Training (Algorithm 1)
    // ------------------------------------------------------------------

    /// One alternating step over a mini-batch of `(item, user, label)`
    /// rows. `profile`/`stats`/`users` are row-aligned; `labels` is
    /// `[batch, 1]` of 0/1.
    pub fn train_step(
        &mut self,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
        users: &FeatureBlock,
        labels: &Matrix,
    ) -> StepLosses {
        let mut losses = StepLosses::default();
        // One tape serves all phases of the step; it is moved out of the
        // struct (the borrow checker's view of `self` stays simple), reused
        // via `clear()`, and restored before every return.
        let mut g = std::mem::take(&mut self.graph);

        // ---- D step: minimize L_i over the encoder path. -------------
        self.store.zero_grads(&self.d_group);
        g.clear();
        let iv = self.item_vec_full(&mut g, profile, stats);
        let iv = self.apply_dropout(&mut g, iv);
        let uv = self.user_vec(&mut g, users);
        let uv = self.apply_dropout(&mut g, uv);
        let logits = self.score_logits(&mut g, iv, uv);
        let loss_i = g.bce_with_logits_loss(logits, labels);
        losses.loss_i = g.value(loss_i).get(0, 0);
        g.backward(loss_i, &mut self.store);
        clip_grad_norm(&mut self.store, &self.d_group, self.config.grad_clip);
        self.opt_d.step(&mut self.store);

        if matches!(self.config.adversarial, AdversarialMode::None) {
            self.graph = g;
            return losses;
        }

        // ---- Discriminator step (learned mode only). ------------------
        if let Some(disc) = &self.discriminator {
            self.store.zero_grads(&self.disc_group);
            g.clear();
            let real = self.item_vec_full(&mut g, profile, stats);
            let real = g.detach(real);
            let fake = self.item_vec_generated(&mut g, profile);
            let fake = g.detach(fake);
            let real_logits = disc.forward(&mut g, &self.store, real);
            let fake_logits = disc.forward(&mut g, &self.store, fake);
            let n = labels.rows();
            let ones = Matrix::full(n, 1, 1.0);
            let zeros = Matrix::zeros(n, 1);
            let l_real = g.bce_with_logits_loss(real_logits, &ones);
            let l_fake = g.bce_with_logits_loss(fake_logits, &zeros);
            let l_disc = g.add(l_real, l_fake);
            losses.loss_disc = g.value(l_disc).get(0, 0);
            g.backward(l_disc, &mut self.store);
            clip_grad_norm(&mut self.store, &self.disc_group, self.config.grad_clip);
            self.opt_disc.as_mut().expect("disc optimizer").step(&mut self.store);
        }

        // ---- G step: minimize L_g + λ·L_s over the generator path. ----
        self.store.zero_grads(&self.g_group);
        g.clear();
        let gen_v = self.item_vec_generated(&mut g, profile);
        let gen_v = self.apply_dropout(&mut g, gen_v);
        // The user vector and the similarity target are frozen in this
        // phase: only the generator chases them.
        let uv = self.user_vec(&mut g, users);
        let uv = g.detach(uv);
        let logits = self.score_logits(&mut g, gen_v, uv);
        let loss_g = g.bce_with_logits_loss(logits, labels);
        losses.loss_g = g.value(loss_g).get(0, 0);

        let loss_s = match self.config.adversarial {
            AdversarialMode::Similarity => {
                let target = self.item_vec_full(&mut g, profile, stats);
                let target = g.detach(target);
                let cos = g.rowwise_cosine(gen_v, target);
                let ones = g.input(Matrix::full(labels.rows(), 1, 1.0));
                let diff = g.sub(ones, cos);
                let sq = g.mul(diff, diff);
                g.mean(sq)
            }
            AdversarialMode::LearnedDiscriminator => {
                // Non-saturating generator objective: fool D into "real".
                let disc = self.discriminator.as_ref().expect("discriminator");
                let fake_logits = disc.forward(&mut g, &self.store, gen_v);
                let ones = Matrix::full(labels.rows(), 1, 1.0);
                g.bce_with_logits_loss(fake_logits, &ones)
            }
            AdversarialMode::None => unreachable!("handled above"),
        };
        losses.loss_s = g.value(loss_s).get(0, 0);
        let weighted = g.mul_scalar(loss_s, self.config.lambda);
        let total = g.add(loss_g, weighted);
        g.backward(total, &mut self.store);
        clip_grad_norm(&mut self.store, &self.g_group, self.config.grad_clip);
        self.opt_g.step(&mut self.store);

        self.graph = g;
        losses
    }

    fn apply_dropout(&mut self, g: &mut Graph, x: Var) -> Var {
        if self.config.dropout > 0.0 {
            atnn_nn::dropout(g, &mut self.dropout_rng, x, self.config.dropout, true)
        } else {
            x
        }
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// CTR probabilities via the full-feature encoder path.
    pub fn predict_ctr_full(
        &self,
        profile: &FeatureBlock,
        stats: &FeatureBlock,
        users: &FeatureBlock,
    ) -> Vec<f32> {
        let mut g = Graph::new();
        let iv = self.item_vec_full(&mut g, profile, stats);
        let uv = self.user_vec(&mut g, users);
        let logits = self.score_logits(&mut g, iv, uv);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// CTR probabilities via the generated (profile-only) path — the
    /// cold-start scorer.
    pub fn predict_ctr_generated(&self, profile: &FeatureBlock, users: &FeatureBlock) -> Vec<f32> {
        let mut g = Graph::new();
        let iv = self.item_vec_generated(&mut g, profile);
        let uv = self.user_vec(&mut g, users);
        let logits = self.score_logits(&mut g, iv, uv);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// Materialized generated item vectors (rows).
    pub fn item_vectors_generated(&self, profile: &FeatureBlock) -> Matrix {
        let mut g = Graph::new();
        let v = self.item_vec_generated(&mut g, profile);
        g.value(v).clone()
    }

    /// Materialized full-feature item vectors (rows).
    pub fn item_vectors_full(&self, profile: &FeatureBlock, stats: &FeatureBlock) -> Matrix {
        let mut g = Graph::new();
        let v = self.item_vec_full(&mut g, profile, stats);
        g.value(v).clone()
    }

    /// Materialized user vectors (rows).
    pub fn user_vectors(&self, users: &FeatureBlock) -> Matrix {
        let mut g = Graph::new();
        let v = self.user_vec(&mut g, users);
        g.value(v).clone()
    }

    /// A stats block of `n` identical imputed rows (the cold-start
    /// work-around baselines must resort to).
    pub fn imputed_stats_block(n: usize, means: &[f32]) -> FeatureBlock {
        FeatureBlock {
            categorical: vec![],
            numeric: Matrix::from_fn(n, means.len(), |_, j| means[j]),
        }
    }

    // ------------------------------------------------------------------
    // Introspection / persistence
    // ------------------------------------------------------------------

    /// The model configuration.
    pub fn config(&self) -> &AtnnConfig {
        &self.config
    }

    /// The scoring bias value.
    pub fn bias_value(&self) -> f32 {
        self.store.value(self.bias).get(0, 0)
    }

    /// Immutable view of the parameter store (checkpointing).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable view of the parameter store (checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total trainable scalar count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// A human-readable component summary (à la `model.summary()`):
    /// per-group parameter counts and the architecture switches in effect.
    pub fn describe(&self) -> String {
        let scalars_of = |ids: &[atnn_autograd::ParamId]| -> usize {
            ids.iter().map(|&id| self.store.value(id).len()).sum()
        };
        let mut out = String::new();
        out.push_str("ATNN model summary\n");
        out.push_str(&format!(
            "  towers        : {} ({} cross layers), vec_dim {}\n",
            if self.config.use_cross { "Deep & Cross" } else { "fully connected" },
            self.config.cross_depth,
            self.config.vec_dim
        ));
        out.push_str(&format!(
            "  adversarial   : {:?} (lambda {}), shared embeddings: {}\n",
            self.config.adversarial, self.config.lambda, self.config.shared_embeddings
        ));
        out.push_str(&format!(
            "  D group       : {} params / {} scalars (item+user towers, encoders, bias)\n",
            self.d_group.len(),
            scalars_of(&self.d_group)
        ));
        out.push_str(&format!(
            "  G group       : {} params / {} scalars (generator{})\n",
            self.g_group.len(),
            scalars_of(&self.g_group),
            if self.config.shared_embeddings { " incl. shared tables" } else { "" }
        ));
        if !self.disc_group.is_empty() {
            out.push_str(&format!(
                "  discriminator : {} params / {} scalars\n",
                self.disc_group.len(),
                scalars_of(&self.disc_group)
            ));
        }
        out.push_str(&format!("  total         : {} scalars\n", self.num_parameters()));
        out
    }

    /// Serializes all weights.
    pub fn save(&self) -> bytes::Bytes {
        atnn_nn::save_store(&self.store)
    }

    /// Restores weights saved from an identically configured model.
    pub fn load(&mut self, blob: bytes::Bytes) -> Result<(), atnn_nn::NnError> {
        atnn_nn::load_store(&mut self.store, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_data::tmall::TmallConfig;

    fn tiny_data() -> TmallDataset {
        TmallDataset::generate(TmallConfig {
            num_users: 60,
            num_items: 120,
            num_interactions: 600,
            ..TmallConfig::tiny()
        })
    }

    fn batch(
        data: &TmallDataset,
        rows: std::ops::Range<usize>,
    ) -> (FeatureBlock, FeatureBlock, FeatureBlock, Matrix) {
        let inter = &data.interactions[rows];
        let items: Vec<u32> = inter.iter().map(|i| i.item).collect();
        let users: Vec<u32> = inter.iter().map(|i| i.user).collect();
        let labels = Matrix::from_fn(inter.len(), 1, |i, _| inter[i].clicked as u8 as f32);
        (
            data.encode_item_profiles(&items),
            data.encode_item_stats(&items),
            data.encode_users(&users),
            labels,
        )
    }

    #[test]
    fn forward_shapes() {
        let data = tiny_data();
        let model = Atnn::new(AtnnConfig::scaled(), &data);
        let (profile, stats, users, _) = batch(&data, 0..10);
        let mut g = Graph::new();
        let iv = model.item_vec_full(&mut g, &profile, &stats);
        let gv = model.item_vec_generated(&mut g, &profile);
        let uv = model.user_vec(&mut g, &users);
        assert_eq!(g.value(iv).shape(), (10, 16));
        assert_eq!(g.value(gv).shape(), (10, 16));
        assert_eq!(g.value(uv).shape(), (10, 16));
        let logits = model.score_logits(&mut g, iv, uv);
        assert_eq!(g.value(logits).shape(), (10, 1));
    }

    #[test]
    fn train_step_reduces_all_losses() {
        let data = tiny_data();
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let (profile, stats, users, labels) = batch(&data, 0..64);
        let first = model.train_step(&profile, &stats, &users, &labels);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&profile, &stats, &users, &labels);
        }
        assert!(last.loss_i < first.loss_i, "{:?} -> {:?}", first, last);
        assert!(last.loss_g < first.loss_g);
        assert!(last.loss_s < first.loss_s, "generated vectors should approach encoded ones");
    }

    #[test]
    fn similarity_mode_aligns_generated_and_encoded_vectors() {
        let data = tiny_data();
        let mut model = Atnn::new(AtnnConfig { lambda: 1.0, ..AtnnConfig::scaled() }, &data);
        let (profile, stats, users, labels) = batch(&data, 0..64);
        let cos_mean = |model: &Atnn| {
            let gen = model.item_vectors_generated(&profile);
            let full = model.item_vectors_full(&profile, &stats);
            (0..gen.rows()).map(|i| atnn_tensor::cosine(gen.row(i), full.row(i))).sum::<f32>()
                / gen.rows() as f32
        };
        let before = cos_mean(&model);
        for _ in 0..80 {
            model.train_step(&profile, &stats, &users, &labels);
        }
        let after = cos_mean(&model);
        assert!(after > before + 0.2, "alignment {before} -> {after}");
        assert!(after > 0.7, "final alignment {after}");
    }

    #[test]
    fn tnn_mode_skips_generator_phase() {
        let data = tiny_data();
        // Unshared embeddings: otherwise the D step legitimately moves the
        // generator output through the shared profile tables.
        let cfg = AtnnConfig { shared_embeddings: false, ..AtnnConfig::tnn_dcn() };
        let mut model = Atnn::new(cfg, &data);
        let (profile, stats, users, labels) = batch(&data, 0..32);
        let gen_before = model.item_vectors_generated(&profile);
        let losses = model.train_step(&profile, &stats, &users, &labels);
        assert_eq!(losses.loss_g, 0.0);
        assert_eq!(losses.loss_s, 0.0);
        let gen_after = model.item_vectors_generated(&profile);
        assert_eq!(gen_before, gen_after, "generator untouched in TNN mode");
    }

    #[test]
    fn learned_discriminator_mode_trains() {
        let data = tiny_data();
        let cfg = AtnnConfig {
            adversarial: AdversarialMode::LearnedDiscriminator,
            ..AtnnConfig::scaled()
        };
        let mut model = Atnn::new(cfg, &data);
        let (profile, stats, users, labels) = batch(&data, 0..32);
        let mut last = StepLosses::default();
        for _ in 0..10 {
            last = model.train_step(&profile, &stats, &users, &labels);
        }
        assert!(last.loss_disc > 0.0 && last.loss_disc.is_finite());
        assert!(last.loss_s.is_finite());
    }

    #[test]
    fn shared_embeddings_flag_controls_table_identity() {
        let data = tiny_data();
        let shared = Atnn::new(AtnnConfig::scaled(), &data);
        assert_eq!(
            shared.profile_encoder.embedding_params(),
            shared.generator_encoder.embedding_params()
        );
        let unshared =
            Atnn::new(AtnnConfig { shared_embeddings: false, ..AtnnConfig::scaled() }, &data);
        assert_ne!(
            unshared.profile_encoder.embedding_params(),
            unshared.generator_encoder.embedding_params()
        );
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let data = tiny_data();
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let (profile, stats, users, labels) = batch(&data, 0..32);
        for _ in 0..5 {
            model.train_step(&profile, &stats, &users, &labels);
        }
        let expected = model.predict_ctr_generated(&profile, &users);
        let blob = model.save();
        let mut fresh = Atnn::new(AtnnConfig::scaled(), &data);
        assert_ne!(fresh.predict_ctr_generated(&profile, &users), expected);
        fresh.load(blob).unwrap();
        assert_eq!(fresh.predict_ctr_generated(&profile, &users), expected);
    }

    #[test]
    fn predictions_are_probabilities() {
        let data = tiny_data();
        let model = Atnn::new(AtnnConfig::scaled(), &data);
        let (profile, stats, users, _) = batch(&data, 0..40);
        for p in model
            .predict_ctr_full(&profile, &stats, &users)
            .into_iter()
            .chain(model.predict_ctr_generated(&profile, &users))
        {
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn describe_reports_groups_and_totals() {
        let data = tiny_data();
        let model = Atnn::new(AtnnConfig::scaled(), &data);
        let s = model.describe();
        assert!(s.contains("Deep & Cross"));
        assert!(s.contains("shared embeddings: true"));
        assert!(s.contains(&format!("total         : {} scalars", model.num_parameters())));
        // With sharing, G-group scalars are a subset of the total, and the
        // D+G breakdown overlaps on the shared tables (sum >= total).
        let disc_model = Atnn::new(
            AtnnConfig {
                adversarial: AdversarialMode::LearnedDiscriminator,
                ..AtnnConfig::scaled()
            },
            &data,
        );
        assert!(disc_model.describe().contains("discriminator"));
    }

    #[test]
    fn imputed_stats_block_repeats_means() {
        let block = Atnn::imputed_stats_block(3, &[1.0, 2.0]);
        assert_eq!(block.numeric.shape(), (3, 2));
        for i in 0..3 {
            assert_eq!(block.numeric.row(i), &[1.0, 2.0]);
        }
    }
}
