//! Schema-driven feature encoding: embeddings for categorical fields plus
//! normalized numerics, concatenated into one dense input row per entity.

use atnn_autograd::{Graph, ParamId, ParamStore, Var};
use atnn_data::encode::Normalizer;
use atnn_data::schema::{FeatureBlock, FeatureSchema};
use atnn_nn::Embedding;
use atnn_tensor::{Matrix, Rng64};

use crate::config::embed_dim_for;

/// Embeds one [`FeatureSchema`]'s categorical fields and z-normalizes its
/// numeric fields (statistics fit on training data at construction).
///
/// Cloning a `FeatureEncoder` *shares* its embedding tables (they are
/// [`ParamId`] handles) — this is exactly the paper's shared-embedding
/// strategy between the item encoder and the generator.
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    embeddings: Vec<Embedding>,
    normalizer: Option<Normalizer>,
    out_dim: usize,
}

impl FeatureEncoder {
    /// Registers one embedding table per categorical field of `schema` and
    /// fits the numeric normalizer on `train_numeric` (pass the numeric
    /// part of the training block; `None` skips normalization).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        schema: &FeatureSchema,
        max_embed_dim: usize,
        train_numeric: Option<&Matrix>,
    ) -> Self {
        let embeddings: Vec<Embedding> = schema
            .categorical_fields()
            .iter()
            .map(|&(field, vocab)| {
                let dim = embed_dim_for(vocab, max_embed_dim);
                Embedding::new(store, rng, &format!("{name}.emb.{field}"), vocab, dim)
            })
            .collect();
        let normalizer = train_numeric.map(Normalizer::fit);
        let out_dim = embeddings.iter().map(Embedding::dim).sum::<usize>() + schema.num_numeric();
        FeatureEncoder { embeddings, normalizer, out_dim }
    }

    /// Encodes a block: `[batch, out_dim]` = all embeddings ++ numerics.
    ///
    /// # Panics
    /// Panics when the block's column count disagrees with the schema the
    /// encoder was built for.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, block: &FeatureBlock) -> Var {
        assert_eq!(
            block.categorical.len(),
            self.embeddings.len(),
            "FeatureEncoder: categorical column mismatch"
        );
        let mut parts: Vec<Var> = self
            .embeddings
            .iter()
            .zip(&block.categorical)
            .map(|(emb, ids)| emb.forward(g, store, ids))
            .collect();
        if block.numeric.cols() > 0 {
            let numeric = match &self.normalizer {
                Some(n) => n.transform(&block.numeric),
                None => block.numeric.clone(),
            };
            parts.push(g.input(numeric));
        }
        g.concat_all(&parts)
    }

    /// Width of the encoded representation.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Embedding-table parameters (the shareable part).
    pub fn embedding_params(&self) -> Vec<ParamId> {
        self.embeddings.iter().map(Embedding::param).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_data::schema::FieldSpec;

    fn schema() -> FeatureSchema {
        FeatureSchema::new(vec![
            FieldSpec::categorical("cat", 10),
            FieldSpec::categorical("brand", 100),
            FieldSpec::numeric("a"),
            FieldSpec::numeric("b"),
        ])
    }

    fn block() -> FeatureBlock {
        FeatureBlock {
            categorical: vec![vec![1, 2, 1], vec![50, 0, 7]],
            numeric: Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap(),
        }
    }

    #[test]
    fn encode_produces_expected_width() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(0);
        let b = block();
        let enc =
            FeatureEncoder::new(&mut store, &mut rng, "item", &schema(), 16, Some(&b.numeric));
        let expected = embed_dim_for(10, 16) + embed_dim_for(100, 16) + 2;
        assert_eq!(enc.out_dim(), expected);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &b);
        assert_eq!(g.value(out).shape(), (3, expected));
    }

    #[test]
    fn identical_ids_share_rows() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(1);
        let b = block();
        let enc = FeatureEncoder::new(&mut store, &mut rng, "e", &schema(), 8, Some(&b.numeric));
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &b);
        // Rows 0 and 2 share cat id 1 -> their first embedding slice agrees.
        let d = embed_dim_for(10, 8);
        assert_eq!(g.value(out).row(0)[..d], g.value(out).row(2)[..d]);
    }

    #[test]
    fn numerics_are_normalized_with_train_stats() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(2);
        let b = block();
        let enc = FeatureEncoder::new(&mut store, &mut rng, "e", &schema(), 8, Some(&b.numeric));
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &b);
        let w = enc.out_dim();
        // Normalized numeric column has mean 0 across the batch.
        let mean: f32 = (0..3).map(|i| g.value(out).get(i, w - 2)).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn clones_share_embedding_tables() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(3);
        let enc = FeatureEncoder::new(&mut store, &mut rng, "e", &schema(), 8, None);
        let clone = enc.clone();
        assert_eq!(enc.embedding_params(), clone.embedding_params());
    }

    #[test]
    #[should_panic(expected = "categorical column mismatch")]
    fn encode_validates_columns() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from_u64(4);
        let enc = FeatureEncoder::new(&mut store, &mut rng, "e", &schema(), 8, None);
        let bad = FeatureBlock { categorical: vec![vec![0]], numeric: Matrix::zeros(1, 2) };
        let mut g = Graph::new();
        let _ = enc.encode(&mut g, &store, &bad);
    }
}
