//! Steady-state allocation budget for the training step.
//!
//! A counting `#[global_allocator]` (this file is its own test binary,
//! so the allocator hook is scoped to it) measures how many heap
//! allocations one `Atnn::train_step` performs after warmup. The reused
//! tape + backward workspace arena and the row-sparse embedding
//! gradients are supposed to make the step allocation-light; this test
//! pins that property to a fixed ceiling so a regression (e.g. a new op
//! allocating per-node scratch in backward) fails CI rather than
//! silently eating the win. Run from `scripts/check.sh`.
//!
//! The budget is a *count*, not bytes: buffer reuse eliminates whole
//! allocation sites, which is what the counter sees. Threads are pinned
//! to 1 so pool workers cannot smear counts across runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use atnn_core::{gather_batch, Atnn, AtnnConfig};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::pool;

struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc is a fresh allocation from the budget's point
        // of view (it defeats buffer reuse just the same).
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Ceiling on heap allocations for one steady-state train step (batch
/// 64, `AtnnConfig::scaled()`, similarity mode). Measured at 284/step
/// when introduced, 236/step after the fused `Op::Linear` /
/// `BceWithLogits` kernels collapsed the per-layer bias-broadcast and
/// activation intermediates; the ceiling leaves ~40% headroom for
/// allocator/std drift while still catching structural regressions (one
/// extra allocation per tape node — ~100 nodes at this config post
/// fusion — would breach it, as would losing workspace reuse in
/// backward).
const STEP_ALLOC_BUDGET: usize = 330;

const WARMUP_STEPS: usize = 6;
const MEASURED_STEPS: usize = 10;

#[test]
fn steady_state_train_step_stays_within_alloc_budget() {
    // The observability layer must be free when no active sink is
    // installed: a NullSink reports `active() == false`, so the hub stays
    // disabled and every producer's telemetry path is one atomic load —
    // the budget below is asserted with the sink in place.
    let _sink = atnn_obs::install_scoped(std::sync::Arc::new(atnn_obs::NullSink));
    assert!(
        !atnn_obs::enabled(),
        "NullSink must leave the obs hub disabled; the alloc budget assumes the no-op path"
    );
    pool::with_threads(1, || {
        let data = TmallDataset::generate(TmallConfig::tiny());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let rows: Vec<u32> = (0..64).collect();
        let (profile, stats, users, labels) = gather_batch(&data, &rows);

        // Warmup: fills the workspace arena, optimizer state, sparse
        // gradient buffers, and the tape's node storage to steady state.
        for _ in 0..WARMUP_STEPS {
            model.train_step(&profile, &stats, &users, &labels);
        }

        ALLOCS.store(0, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        for _ in 0..MEASURED_STEPS {
            model.train_step(&profile, &stats, &users, &labels);
        }
        ENABLED.store(false, Ordering::SeqCst);

        let per_step = ALLOCS.load(Ordering::SeqCst) / MEASURED_STEPS;
        eprintln!("steady-state allocations per train step: {per_step}");
        assert!(
            per_step <= STEP_ALLOC_BUDGET,
            "train step allocated {per_step} times (budget {STEP_ALLOC_BUDGET}); \
             a gradient buffer or workspace stopped being reused"
        );
    });
}

#[test]
fn repeated_steps_do_not_grow_allocation_count() {
    // Second invariant: the per-step count is *flat* — later steps must
    // not allocate more than early post-warmup steps (a slow leak or an
    // arena that stops recycling shows up as growth before it shows up
    // as a budget breach).
    pool::with_threads(1, || {
        let data = TmallDataset::generate(TmallConfig::tiny());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let rows: Vec<u32> = (0..32).collect();
        let (profile, stats, users, labels) = gather_batch(&data, &rows);
        for _ in 0..WARMUP_STEPS {
            model.train_step(&profile, &stats, &users, &labels);
        }

        let mut window = |steps: usize| {
            ALLOCS.store(0, Ordering::SeqCst);
            ENABLED.store(true, Ordering::SeqCst);
            for _ in 0..steps {
                model.train_step(&profile, &stats, &users, &labels);
            }
            ENABLED.store(false, Ordering::SeqCst);
            ALLOCS.load(Ordering::SeqCst) / steps
        };

        let early = window(5);
        let late = window(5);
        eprintln!("allocations per step: early window {early}, late window {late}");
        assert!(
            late <= early + early / 10 + 8,
            "per-step allocations grew from {early} to {late}: steady state is leaking"
        );
    });
}
