//! The trainer's event stream must agree with its returned report: one
//! `EpochEnd` per trained epoch, step timings for every batch, and an
//! `EarlyStop` exactly when the report says training stopped early.

use std::sync::{Arc, Mutex};

use atnn_core::{Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_obs::{CaptureSink, Event};

/// Sinks are process-global; tests in this binary take turns.
static SERIAL: Mutex<()> = Mutex::new(());

fn tiny_data() -> TmallDataset {
    TmallDataset::generate(TmallConfig {
        num_users: 50,
        num_items: 100,
        num_interactions: 800,
        ..TmallConfig::tiny()
    })
}

#[test]
fn one_epoch_end_event_per_reported_epoch() {
    let _turn = SERIAL.lock().unwrap();
    let sink = Arc::new(CaptureSink::default());
    let _guard = atnn_obs::install_scoped(sink.clone());

    let data = tiny_data();
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    let opts = TrainOptions::builder().epochs(3).build().expect("valid options");
    let report = CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");

    let events = sink.take();
    let epoch_ends: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::EpochEnd { model, .. } if model == "ctr"))
        .collect();
    assert_eq!(
        epoch_ends.len(),
        report.epochs.len(),
        "EpochEnd events must match TrainReport.epochs"
    );
    // Epoch numbers are 0-based and consecutive; losses mirror the report.
    for (i, (event, reported)) in epoch_ends.iter().zip(&report.epochs).enumerate() {
        match event {
            Event::EpochEnd { epoch, loss_i, loss_g, loss_s, val_auc, .. } => {
                assert_eq!(*epoch, i as u64);
                assert_eq!(*loss_i, reported.loss_i);
                assert_eq!(*loss_g, reported.loss_g);
                assert_eq!(*loss_s, reported.loss_s);
                assert_eq!(*val_auc, reported.val_auc);
            }
            _ => unreachable!(),
        }
    }
    // Every batch produced a step timing with a plausible payload.
    let steps: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::StepTiming { section, .. } if section == "ctr.train_step"))
        .collect();
    assert!(
        steps.len() >= report.epochs.len(),
        "at least one StepTiming per epoch, got {}",
        steps.len()
    );
    for step in steps {
        match step {
            Event::StepTiming { ns, rows, .. } => {
                assert!(*ns > 0);
                assert!(*rows > 0);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn early_stop_event_matches_the_report() {
    let _turn = SERIAL.lock().unwrap();
    let sink = Arc::new(CaptureSink::default());
    let _guard = atnn_obs::install_scoped(sink.clone());

    let data = tiny_data();
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    // Split a validation slice so early stopping is armed; patience 1
    // with many epochs makes a stop overwhelmingly likely at this scale.
    let all: Vec<u32> = (0..data.interactions.len() as u32).collect();
    let (val, train) = all.split_at(all.len() / 5);
    let opts = TrainOptions::builder().epochs(40).build().expect("valid options");
    let report = CtrTrainer::new(opts)
        .train_with_validation(&mut model, &data, train, val, 1)
        .expect("training runs");

    let events = sink.take();
    let stops: Vec<&Event> =
        events.iter().filter(|e| matches!(e, Event::EarlyStop { .. })).collect();
    let stopped_early = report.epochs.len() < 40;
    if stopped_early {
        assert_eq!(stops.len(), 1, "exactly one EarlyStop when training stopped early");
        match stops[0] {
            Event::EarlyStop { stopped_epoch, best_epoch, .. } => {
                assert_eq!(*stopped_epoch, report.epochs.len() as u64 - 1);
                assert_eq!(*best_epoch, report.best_epoch as u64);
            }
            _ => unreachable!(),
        }
    } else {
        assert!(stops.is_empty(), "no EarlyStop when training ran to completion");
    }
    // Epoch accounting holds on the validation path too.
    let epoch_ends = events
        .iter()
        .filter(|e| matches!(e, Event::EpochEnd { model, .. } if model == "ctr"))
        .count();
    assert_eq!(epoch_ends, report.epochs.len());
}
