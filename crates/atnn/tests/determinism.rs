//! Regression test for the threading/determinism contract (see README
//! "Threading & determinism"): because every parallel kernel is
//! bit-identical to its serial counterpart and chunk placement is a pure
//! function of input sizes, training is bit-deterministic across pool
//! widths. `ATNN_THREADS` is read once per process, so the test pins the
//! width per run with `pool::with_threads` — the same override the env
//! var feeds.

use atnn_core::{evaluate_auc_full, Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::pool;

fn train_once(threads: usize) -> (bytes::Bytes, f64) {
    pool::with_threads(threads, || {
        let data = TmallDataset::generate(TmallConfig::tiny());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder().epochs(2).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        let rows: Vec<u32> = (0..data.interactions.len() as u32).collect();
        let auc = evaluate_auc_full(&model, &data, &rows).expect("AUC defined");
        (model.save(), auc)
    })
}

#[test]
fn training_is_bit_identical_across_pool_widths() {
    let (weights_serial, auc_serial) = train_once(1);
    for threads in [4usize, 7] {
        let (weights_par, auc_par) = train_once(threads);
        assert_eq!(
            weights_par, weights_serial,
            "final weights must be bit-identical at {threads} threads vs serial"
        );
        assert_eq!(auc_par, auc_serial, "evaluation must match at {threads} threads");
    }
}

#[test]
fn repeated_runs_at_same_width_are_bit_identical() {
    let (a, _) = train_once(4);
    let (b, _) = train_once(4);
    assert_eq!(a, b, "same width twice must reproduce exactly");
}
