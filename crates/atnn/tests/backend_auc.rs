//! End-to-end backend acceptance: a full (tiny) training run under the
//! fast-math backend must land within 0.001 AUC of the scalar oracle, and
//! the bit-identical backends must reproduce the oracle's weights exactly.
//!
//! This is the integration-level counterpart of the kernel parity suite in
//! `atnn-tensor/tests/backend_parity.rs`: kernels being toleranced is
//! necessary but not sufficient — this pins that the accumulated
//! fast-math rounding across every step of an optimization trajectory
//! stays in the noise for model quality.

use atnn_core::{evaluate_auc_full, Atnn, AtnnConfig, CtrTrainer, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_tensor::{pool, BackendKind};

fn train_once(backend: BackendKind) -> (bytes::Bytes, f64) {
    pool::with_threads(4, || {
        let data = TmallDataset::generate(TmallConfig::tiny());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder()
            .epochs(2)
            .backend(Some(backend))
            .build()
            .expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        let rows: Vec<u32> = (0..data.interactions.len() as u32).collect();
        // Evaluate under the same backend the model was trained with.
        let auc = atnn_tensor::with_backend(backend, || {
            evaluate_auc_full(&model, &data, &rows).expect("AUC defined")
        });
        (model.save(), auc)
    })
}

#[test]
fn fastmath_training_stays_within_auc_tolerance_of_oracle() {
    let (oracle_weights, oracle_auc) = train_once(BackendKind::Scalar);

    // Bit-identical backends: the entire trajectory reproduces exactly.
    let (avx2_weights, avx2_auc) = train_once(BackendKind::Avx2);
    assert_eq!(avx2_weights, oracle_weights, "avx2 training must be bit-identical to scalar");
    assert_eq!(avx2_auc, oracle_auc, "avx2 evaluation must be bit-identical to scalar");

    // Toleranced backend: different bits, same model quality.
    let (_, fast_auc) = train_once(BackendKind::FastMath);
    let delta = (fast_auc - oracle_auc).abs();
    assert!(
        delta <= 1e-3,
        "fast-math training drifted: scalar AUC {oracle_auc:.6}, \
         fastmath AUC {fast_auc:.6}, |delta| {delta:.6} > 0.001"
    );
}
