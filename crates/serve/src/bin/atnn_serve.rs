//! The serving daemon: train (or load an artifact), bind, serve.
//!
//! ```text
//! atnn_serve [--scale tiny|small|paper] [--addr HOST:PORT]
//!            [--artifact PATH] [--save-artifact PATH]
//!            [--epochs N] [--shards N] [--event-threads N]
//!            [--nprobe N] [--quantized] [--backend=scalar|avx2|fastmath]
//!            [--smoke]
//! ```
//!
//! Without `--artifact`, the daemon trains a model on the simulated Tmall
//! stream at the requested scale, builds the O(1) popularity index, and
//! serves it. With `--artifact PATH` it boots from a saved
//! [`ModelArtifact`] instead (the production shape: a training job writes
//! the artifact, the serving fleet loads it). `--save-artifact` writes the
//! trained state so a later run — or a hot reload — can pick it up.
//!
//! `--shards` splits the catalogue across N batcher replicas (scoring
//! requests scatter-gather across them); `--event-threads` sets how many
//! epoll event loops share the accepted connections. `--nprobe` sets how
//! many inverted lists each catalogue-wide `TopKAll` retrieval probes in
//! the ANN index (recall dial; `nprobe ≥ nlist` is an exact scan).
//!
//! `--quantized` serves int8-quantized item tables: the snapshot
//! quantizes both embedding caches at build (~4× less table memory at
//! paper dims) and every score/retrieval path runs the int8 kernels.
//! Scores are within the quantization error bound of — but not
//! bit-identical to — the f32 path. With `--save-artifact` the
//! publish-time codes are persisted so a loading replica serves them
//! bit-identically.
//!
//! `--backend` pins the compute backend for the whole process — boot
//! training, snapshot precompute, and every shard worker: `scalar` (the
//! bit-exact oracle), `avx2` (the default; bit-identical SIMD), or
//! `fastmath` (FMA GEMM, toleranced — see the tensor crate's `backend`
//! module). The `ATNN_BACKEND` environment variable sets the same default
//! with lower precedence than the flag; either spelling of an unknown name
//! is a startup error, not a panic.
//!
//! `--smoke` starts the server on an ephemeral port, exercises every
//! endpoint once through a real TCP client — including a hot swap
//! republishing the model under a bumped version — and exits non-zero on
//! any mismatch: the CI smoke stage.

use std::process::ExitCode;
use std::sync::Arc;

use atnn_core::{Atnn, AtnnConfig, CtrTrainer, ModelArtifact, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::{
    serve, ModelManager, ModelSnapshot, Precision, Response, ServeClient, ServeConfig,
};

struct Args {
    scale: String,
    addr: Option<String>,
    artifact: Option<String>,
    save_artifact: Option<String>,
    epochs: usize,
    shards: usize,
    event_threads: usize,
    nprobe: usize,
    precision: Precision,
    backend: Option<atnn_tensor::BackendKind>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        scale: "small".to_string(),
        addr: None,
        artifact: None,
        save_artifact: None,
        epochs: 2,
        shards: 1,
        event_threads: 1,
        nprobe: ServeConfig::default().nprobe,
        precision: Precision::F32,
        backend: None,
        smoke: false,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = value(&argv, i, "--scale")?;
                i += 2;
            }
            "--addr" => {
                args.addr = Some(value(&argv, i, "--addr")?);
                i += 2;
            }
            "--artifact" => {
                args.artifact = Some(value(&argv, i, "--artifact")?);
                i += 2;
            }
            "--save-artifact" => {
                args.save_artifact = Some(value(&argv, i, "--save-artifact")?);
                i += 2;
            }
            "--epochs" => {
                args.epochs = value(&argv, i, "--epochs")?
                    .parse()
                    .map_err(|_| "--epochs needs an integer".to_string())?;
                i += 2;
            }
            "--shards" => {
                args.shards = value(&argv, i, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs an integer".to_string())?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                i += 2;
            }
            "--event-threads" => {
                args.event_threads = value(&argv, i, "--event-threads")?
                    .parse()
                    .map_err(|_| "--event-threads needs an integer".to_string())?;
                if args.event_threads == 0 {
                    return Err("--event-threads must be at least 1".to_string());
                }
                i += 2;
            }
            "--nprobe" => {
                args.nprobe = value(&argv, i, "--nprobe")?
                    .parse()
                    .map_err(|_| "--nprobe needs an integer".to_string())?;
                if args.nprobe == 0 {
                    return Err("--nprobe must be at least 1".to_string());
                }
                i += 2;
            }
            "--quantized" => {
                args.precision = Precision::Int8;
                i += 1;
            }
            "--backend" => {
                args.backend =
                    Some(value(&argv, i, "--backend")?.parse().map_err(|e| format!("{e}"))?);
                i += 2;
            }
            eq if eq.starts_with("--backend=") => {
                args.backend = Some(eq["--backend=".len()..].parse().map_err(|e| format!("{e}"))?);
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn data_config(scale: &str) -> Result<TmallConfig, String> {
    match scale {
        "tiny" => Ok(TmallConfig::tiny()),
        "small" => Ok(TmallConfig::small()),
        "paper" => Ok(TmallConfig::paper_scale()),
        other => Err(format!("unknown scale {other} (tiny|small|paper)")),
    }
}

/// Trains a fresh model at `scale` and wraps it into a snapshot.
fn train_snapshot(
    scale: &str,
    epochs: usize,
    precision: Precision,
) -> Result<(ModelSnapshot, TmallConfig), String> {
    let cfg = data_config(scale)?;
    eprintln!("generating {scale} dataset...");
    let data = TmallDataset::generate(cfg.clone());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    eprintln!(
        "training {} parameters for {epochs} epochs on {} interactions...",
        model.num_parameters(),
        data.interactions.len()
    );
    let opts = TrainOptions::builder().epochs(epochs).build().map_err(|e| e.to_string())?;
    CtrTrainer::new(opts).train(&mut model, &data, None).map_err(|e| e.to_string())?;
    let users: Vec<u32> = (0..data.num_users() as u32).collect();
    let index = PopularityIndex::build(&model, &data, &users);
    Ok((ModelSnapshot::new_with_precision(1, data, model, index, precision), cfg))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Resolve the compute backend before any kernel runs: the flag wins,
    // then `ATNN_BACKEND` (validated eagerly here so a typo is a startup
    // error instead of a buried warning), then the built-in default.
    // Installing it as the process default covers boot training and
    // snapshot precompute; the shard workers additionally pin it via
    // `ServeConfig::backend`.
    let backend = match args.backend {
        Some(kind) => Some(kind),
        None => atnn_tensor::backend_from_env().map_err(|e| e.to_string())?,
    };
    if let Some(kind) = backend {
        atnn_tensor::set_process_backend(kind);
        eprintln!("compute backend pinned to {kind}");
    }

    let (manager, data_cfg) = match &args.artifact {
        Some(path) => {
            eprintln!("loading artifact {path}...");
            let artifact =
                ModelArtifact::load_from(path).map_err(|e| format!("load {path}: {e}"))?;
            // --quantized forces int8 serving even from an f32 artifact;
            // without it the artifact's own quant section (if any) decides.
            let snapshot = match args.precision {
                Precision::Int8 => {
                    ModelSnapshot::from_artifact_with_precision(&artifact, Precision::Int8)
                }
                Precision::F32 => ModelSnapshot::from_artifact(&artifact),
            }
            .map_err(|e| format!("instantiate {path}: {e}"))?;
            let cfg = artifact.data_config.clone();
            (ModelManager::new(snapshot), cfg)
        }
        None => {
            let (snapshot, cfg) = train_snapshot(&args.scale, args.epochs, args.precision)?;
            (ModelManager::new(snapshot), cfg)
        }
    };

    if let Some(path) = &args.save_artifact {
        let snap = manager.load();
        // Persist the built ANN index too, so the next boot skips the
        // k-means rebuild (decode cross-checks it against the embeddings).
        let mut artifact =
            ModelArtifact::capture(&snap.model, &data_cfg, &snap.index, snap.version)
                .with_ann(snap.encoded_ann().into());
        // A quantized publisher also persists its codes, so every replica
        // adopting the artifact serves the same int8 tables.
        if let Some((cold, warm)) = snap.quant_tables() {
            artifact = artifact.with_quant(cold.to_quantized(), warm.to_quantized());
        }
        artifact.save_to(path).map_err(|e| format!("save {path}: {e}"))?;
        eprintln!("artifact saved to {path}");
    }

    let mut serve_cfg = ServeConfig {
        shards: args.shards,
        event_threads: args.event_threads,
        nprobe: args.nprobe,
        precision: args.precision,
        backend,
        ..ServeConfig::default()
    };
    match (&args.addr, args.smoke) {
        (Some(addr), _) => serve_cfg.addr = addr.clone(),
        // Smoke runs always take an ephemeral port so CI never collides.
        (None, true) => serve_cfg.addr = "127.0.0.1:0".to_string(),
        (None, false) => serve_cfg.addr = "127.0.0.1:7878".to_string(),
    }

    let manager = Arc::new(manager);
    let mut handle =
        serve(serve_cfg, Arc::clone(&manager)).map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "atnn-serve listening on {} (model v{}, {} shards, {} event threads, {} tables: {} KiB)",
        handle.local_addr(),
        manager.version(),
        args.shards,
        args.event_threads,
        match manager.load().precision() {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        },
        manager.load().snapshot_bytes() / 1024
    );

    if args.smoke {
        let result = smoke(handle.local_addr(), &manager, &data_cfg);
        handle.shutdown();
        return result;
    }

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

/// One request per endpoint over real TCP — plus a hot swap through the
/// manager — so any surprise is a hard failure.
fn smoke(
    addr: std::net::SocketAddr,
    manager: &Arc<ModelManager>,
    data_cfg: &TmallConfig,
) -> Result<(), String> {
    fn fail<E: std::fmt::Display>(what: &'static str) -> impl Fn(E) -> String {
        move |e| format!("smoke {what}: {e}")
    }
    let mut client = ServeClient::connect(addr).map_err(fail("connect"))?;

    let version = client.health().map_err(fail("health"))?;
    println!("smoke: health ok, model v{version}");

    let items: Vec<u32> = (0..8).collect();
    match client.score_new_arrival(&items).map_err(fail("score_new_arrival"))? {
        Response::Scores(s) if s.len() == items.len() => {
            println!("smoke: score_new_arrival ok ({} scores)", s.len());
        }
        other => return Err(format!("smoke score_new_arrival: unexpected {other:?}")),
    }
    match client.score_warm_item(&items).map_err(fail("score_warm_item"))? {
        Response::Scores(s) if s.len() == items.len() => {
            println!("smoke: score_warm_item ok ({} scores)", s.len());
        }
        other => return Err(format!("smoke score_warm_item: unexpected {other:?}")),
    }

    let counts = client.record_interactions(&[0, 0, 0]).map_err(fail("record_interactions"))?;
    if counts.len() != 3 || counts[2] < 3 {
        return Err(format!("smoke record_interactions: unexpected counts {counts:?}"));
    }
    println!("smoke: record_interactions ok (item 0 at {})", counts[2]);

    match client.score(&items).map_err(fail("score"))? {
        Response::RoutedScores { scores, warm } if scores.len() == items.len() => {
            println!("smoke: score ok ({} warm)", warm.iter().filter(|&&w| w).count());
        }
        other => return Err(format!("smoke score: unexpected {other:?}")),
    }
    match client.topk(&items, 3).map_err(fail("topk"))? {
        Response::TopK(winners) if winners.len() == 3 => {
            println!("smoke: topk ok (best item {} @ {:.4})", winners[0].0, winners[0].1);
        }
        other => return Err(format!("smoke topk: unexpected {other:?}")),
    }
    match client.topk_all(5).map_err(fail("topk_all"))? {
        Response::TopK(winners) if winners.len() == 5 => {
            let sorted = winners.windows(2).all(|w| w[0].1 >= w[1].1);
            if !sorted {
                return Err(format!("smoke topk_all: winners out of order: {winners:?}"));
            }
            println!("smoke: topk_all ok (best item {} @ {:.4})", winners[0].0, winners[0].1);
        }
        other => return Err(format!("smoke topk_all: unexpected {other:?}")),
    }

    // Hot swap: round-trip the live model through an artifact under a
    // bumped version and republish — every shard must flip together.
    let before = client.health().map_err(fail("health"))?;
    {
        let snap = manager.load();
        let mut artifact = ModelArtifact::capture(&snap.model, data_cfg, &snap.index, before + 1);
        // Keep the fleet's precision across the swap: a quantized run
        // republishes its publish-time codes.
        if let Some((cold, warm)) = snap.quant_tables() {
            artifact = artifact.with_quant(cold.to_quantized(), warm.to_quantized());
        }
        let path =
            std::env::temp_dir().join(format!("atnn_serve_smoke_{}.atnn", std::process::id()));
        artifact.save_to(&path).map_err(fail("save swap artifact"))?;
        let reload = manager.reload_from(&path);
        let _ = std::fs::remove_file(&path);
        reload.map_err(fail("reload"))?;
    }
    let after = client.health().map_err(fail("health after swap"))?;
    if after != before + 1 {
        return Err(format!("smoke hot swap: expected v{}, health says v{after}", before + 1));
    }
    match client.score_new_arrival(&items).map_err(fail("score after swap"))? {
        Response::Scores(s) if s.len() == items.len() => {
            println!("smoke: hot swap ok (v{before} -> v{after}, still scoring)");
        }
        other => return Err(format!("smoke score after swap: unexpected {other:?}")),
    }

    let stats = client.stats().map_err(fail("stats"))?;
    let scored = stats.endpoint("score_new_arrival").map(|e| e.requests).unwrap_or(0);
    if scored == 0 {
        return Err("smoke stats: score_new_arrival requests not accounted".to_string());
    }
    if stats.shards.is_empty() {
        return Err("smoke stats: no per-shard counters reported".to_string());
    }
    let dispatched: u64 = stats.shards.iter().map(|s| s.dispatched).sum();
    if dispatched == 0 {
        return Err("smoke stats: no shard reported a dispatch".to_string());
    }
    if stats.snapshot_bytes == 0 || stats.snapshot_f32_bytes == 0 {
        return Err("smoke stats: snapshot byte gauges not reported".to_string());
    }
    let snap = manager.load();
    if snap.precision() == atnn_serve::Precision::Int8
        && stats.snapshot_bytes * 2 >= stats.snapshot_f32_bytes
    {
        return Err(format!(
            "smoke stats: quantized tables not compressed ({} vs {} f32 bytes)",
            stats.snapshot_bytes, stats.snapshot_f32_bytes
        ));
    }
    println!(
        "smoke: stats ok ({} batches over {} shards, mean batch {:.1}, tables {} / f32 {})",
        stats.batches,
        stats.shards.len(),
        stats.mean_batch_size(),
        stats.snapshot_bytes,
        stats.snapshot_f32_bytes
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("atnn_serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
