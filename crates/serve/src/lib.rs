//! # atnn-serve — the online inference service
//!
//! The ATNN paper is deployed behind Taobao-scale traffic: new items must
//! be scorable the moment they are listed (before any behaviour data
//! exists), and the serving layer answers with the frozen mean-user-vector
//! index in O(1) per item. This crate turns the repo's trained model into
//! that service, std-only:
//!
//! - [`protocol`]: a length-prefixed binary wire protocol (`Health`,
//!   `Stats`, `ScoreNewArrival`, `ScoreWarmItem`, `Score`,
//!   `RecordInteractions`, `TopK`, `TopKAll`) in which `f32` scores travel
//!   bit-exact.
//! - [`batcher`]: a bounded micro-batching queue that coalesces concurrent
//!   requests into shared forward passes and sheds (`Overloaded`) instead
//!   of blocking when full.
//! - [`shard`]: the item-sharded scoring fleet — one batcher + snapshot
//!   cell per catalogue shard, with scatter-gather merging at the front.
//! - [`manager`]: versioned model snapshots behind an atomic swap — hot
//!   reloads publish one shared snapshot to the primary cell and every
//!   shard cell atomically.
//! - [`router`]: the paper's §IV-D cold→warm serving switch as live
//!   per-item interaction counters.
//! - [`telemetry`]: lock-free per-endpoint counters, per-shard batcher
//!   counters, and geometric latency histograms, exported through the
//!   `Stats` endpoint.
//! - [`nio`]: dependency-free `epoll`/`eventfd` wrappers over the raw C
//!   entry points.
//! - [`server`] / [`client`]: an event-driven (epoll) TCP server — a few
//!   event-loop threads own all sockets; no thread per connection — and
//!   the matching blocking client.
//!
//! ```no_run
//! use std::sync::Arc;
//! use atnn_serve::{serve, ModelManager, ServeClient, ServeConfig};
//!
//! let manager = Arc::new(ModelManager::from_artifact_file("model.atnn").unwrap());
//! let handle = serve(ServeConfig::default(), manager).unwrap();
//! let mut client = ServeClient::connect(handle.local_addr()).unwrap();
//! println!("serving model v{}", client.health().unwrap());
//! ```

pub mod batcher;
pub mod client;
pub mod config;
pub mod manager;
pub mod nio;
pub mod protocol;
pub mod router;
pub mod server;
pub mod shard;
pub mod telemetry;

pub use batcher::{BatchReply, Batcher, Overloaded, ProbeReply, ProbeReplyFn, ReplyFn};
pub use client::ServeClient;
pub use config::ServeConfig;
pub use manager::{
    publishes_delta_counter, publishes_full_counter, snapshot_build_delta_gauge,
    snapshot_build_full_gauge, snapshot_build_gauge, snapshot_bytes_gauge,
    snapshot_f32_bytes_gauge, DeltaError, DeltaReport, ItemSpaceMismatch, ModelManager,
    ModelSnapshot, Precision, DRIFT_REBUILD_FRACTION,
};
pub use protocol::{
    FrameRead, FrameReader, ProtocolError, Request, Response, ShardStats, StatsReport,
};
pub use router::{PolicyRouter, ScorePath};
pub use server::{serve, ServeHandle};
pub use shard::{shard_of, ScatterOutcome, ShardSet, TopKOutcome};
pub use telemetry::{Endpoint, Telemetry};
