//! A blocking TCP client for the serve protocol, used by the smoke check,
//! the load generator, and the end-to-end tests.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, ProtocolError, Request, Response, StatsReport};

/// One connection speaking the length-prefixed binary protocol.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects and disables Nagle (the frames are tiny; latency wins).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(payload),
            None => Err(ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ))),
        }
    }

    /// Health probe; returns the served model version.
    pub fn health(&mut self) -> Result<u64, ProtocolError> {
        match self.call(&Request::Health)? {
            Response::Health { ok: true, model_version } => Ok(model_version),
            Response::Health { ok: false, .. } => {
                Err(ProtocolError::Malformed("server reported unhealthy"))
            }
            _ => Err(ProtocolError::Malformed("unexpected response to Health")),
        }
    }

    /// Telemetry snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ProtocolError> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ProtocolError::Malformed("unexpected response to Stats")),
        }
    }

    /// Forced cold-path scoring. The response may be `Scores`,
    /// `Overloaded`, or `Error` — callers match.
    pub fn score_new_arrival(&mut self, items: &[u32]) -> Result<Response, ProtocolError> {
        self.call(&Request::ScoreNewArrival { items: items.to_vec() })
    }

    /// Forced warm-path scoring.
    pub fn score_warm_item(&mut self, items: &[u32]) -> Result<Response, ProtocolError> {
        self.call(&Request::ScoreWarmItem { items: items.to_vec() })
    }

    /// Policy-routed scoring.
    pub fn score(&mut self, items: &[u32]) -> Result<Response, ProtocolError> {
        self.call(&Request::Score { items: items.to_vec() })
    }

    /// Reports interactions; returns the updated per-item counts.
    pub fn record_interactions(&mut self, items: &[u32]) -> Result<Vec<u32>, ProtocolError> {
        match self.call(&Request::RecordInteractions { items: items.to_vec() })? {
            Response::Recorded { counts } => Ok(counts),
            _ => Err(ProtocolError::Malformed("unexpected response to RecordInteractions")),
        }
    }

    /// Routed top-k ranking over candidate items.
    pub fn topk(&mut self, items: &[u32], k: u32) -> Result<Response, ProtocolError> {
        self.call(&Request::TopK { items: items.to_vec(), k })
    }

    /// Catalogue-wide top-k retrieval through the server's ANN index.
    pub fn topk_all(&mut self, k: u32) -> Result<Response, ProtocolError> {
        self.call(&Request::TopKAll { k })
    }
}
