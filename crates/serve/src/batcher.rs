//! The micro-batcher: coalesces concurrent scoring requests into batched
//! forward passes.
//!
//! The event loop `submit_with`s jobs into a bounded queue; one batch
//! worker per shard drains it, packing jobs into a batch until the batch
//! is full, the flush deadline since the batch's first job expires, or (in
//! the default eager mode) the queue runs dry. Each flush grabs **one**
//! model snapshot from the shard's [`SwapCell`] and runs at most one
//! forward pass per scoring path, so a 64-request burst costs two matmul
//! dispatches instead of 64 — the "batching requests pays for itself
//! immediately" lesson of the 300M-predictions/s paper — and every job in
//! a flush is answered by a single consistent model version.
//!
//! Replies are delivered by invoking the job's completion closure on the
//! worker thread. The event-driven front hands in a closure that buffers
//! the response and wakes the owning event loop; the blocking `submit`
//! convenience (tests, direct embedding) wraps a channel around the same
//! mechanism.
//!
//! Backpressure is explicit: when the queued-item bound would be exceeded,
//! submission fails immediately — the completion closure is returned to
//! the caller *uninvoked* — and the caller answers `Overloaded`. The event
//! loop never blocks on a full queue, so a saturated shard degrades into
//! fast sheds rather than a connection pile-up.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use atnn_tensor::SwapCell;

use crate::config::ServeConfig;
use crate::manager::ModelSnapshot;
use crate::router::ScorePath;
use crate::telemetry::Telemetry;

/// What a queued job is answered with: the scores, or a description of why
/// the batch worker could not score it (out-of-range ids for the snapshot
/// the batch ran against, or a panicked forward pass).
pub type BatchReply = Result<Vec<f32>, String>;

/// A job's completion closure. Invoked exactly once, on the batch worker
/// thread, with the job's reply — unless submission was shed, in which
/// case it is returned to the caller and never invoked.
pub type ReplyFn = Box<dyn FnOnce(BatchReply) + Send>;

/// What a queued ANN probe job is answered with: this shard's top-k in
/// **raw dot space** (best first, ties by ascending id), or the same
/// failure descriptions as [`BatchReply`].
pub type ProbeReply = Result<Vec<(u32, f32)>, String>;

/// A probe job's completion closure; same invocation contract as
/// [`ReplyFn`].
pub type ProbeReplyFn = Box<dyn FnOnce(ProbeReply) + Send>;

/// One queued request.
enum Job {
    /// Batched forward-pass scoring of explicit items.
    Score { path: ScorePath, items: Vec<u32>, reply: ReplyFn },
    /// Catalogue-wide ANN retrieval over this shard's slice of the
    /// catalogue (probe width comes from `ServeConfig::nprobe`).
    Probe { k: usize, reply: ProbeReplyFn },
}

impl Job {
    /// Queue-capacity units this job occupies. A probe touches at most
    /// `nprobe` inverted lists and retains `k` winners, so it is charged
    /// its result size rather than a per-item cost.
    fn cost(&self) -> usize {
        match self {
            Job::Score { items, .. } => items.len(),
            Job::Probe { k, .. } => (*k).max(1),
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    queued_items: usize,
    shutdown: bool,
    /// Test hook: a paused worker leaves the queue untouched, letting
    /// capacity tests observe accounting deterministically. Always false
    /// in production; shutdown overrides it.
    paused: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the worker (new job / shutdown).
    cv: Condvar,
    /// The shard's snapshot cell. `ModelManager::publish` fans out to it;
    /// the worker loads from it once per flush.
    source: Arc<SwapCell<ModelSnapshot>>,
    telemetry: Arc<Telemetry>,
    /// This batcher's shard index into the telemetry's shard counters.
    shard: usize,
    cfg: ServeConfig,
}

/// Submission failure: the queue is at capacity (or shutting down) and the
/// request must be shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

/// The bounded queue + batch worker pair (one per catalogue shard).
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the batch worker for shard `shard`, scoring against
    /// snapshots from `source`.
    pub fn start(
        cfg: ServeConfig,
        source: Arc<SwapCell<ModelSnapshot>>,
        telemetry: Arc<Telemetry>,
        shard: usize,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                queued_items: 0,
                shutdown: false,
                paused: false,
            }),
            cv: Condvar::new(),
            source,
            telemetry,
            shard,
            cfg,
        });
        let worker_shared = Arc::clone(&shared);
        // Pin the configured compute backend for the whole worker thread:
        // every batch this shard scores runs under it (None inherits the
        // process default).
        let backend = worker_shared.cfg.backend;
        let worker = std::thread::Builder::new()
            .name(format!("atnn-serve-shard{shard}"))
            .spawn(move || atnn_tensor::with_backend_opt(backend, || worker_loop(&worker_shared)))
            .expect("spawn batch worker");
        Batcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// Enqueues a scoring job whose reply is delivered by invoking
    /// `reply` on the worker thread. When the queue bound would be
    /// exceeded (or the batcher is shutting down) the job is shed:
    /// `reply` comes back in the `Err`, guaranteed uninvoked, so the
    /// caller can answer `Overloaded` through it (or drop it).
    pub fn submit_with(
        &self,
        path: ScorePath,
        items: Vec<u32>,
        reply: ReplyFn,
    ) -> Result<(), (Overloaded, ReplyFn)> {
        self.enqueue(Job::Score { path, items, reply }).map_err(|job| match job {
            Job::Score { reply, .. } => (Overloaded, reply),
            Job::Probe { .. } => unreachable!("enqueue returns the job it was given"),
        })
    }

    /// Enqueues a catalogue-wide ANN probe answered with this shard's
    /// top-`k` in raw dot space. Same shed contract as
    /// [`Batcher::submit_with`].
    pub fn submit_probe_with(
        &self,
        k: usize,
        reply: ProbeReplyFn,
    ) -> Result<(), (Overloaded, ProbeReplyFn)> {
        self.enqueue(Job::Probe { k, reply }).map_err(|job| match job {
            Job::Probe { reply, .. } => (Overloaded, reply),
            Job::Score { .. } => unreachable!("enqueue returns the job it was given"),
        })
    }

    /// Shared admission path: sheds (returning the job uninvoked) when the
    /// queue bound would be exceeded or the batcher is shutting down.
    fn enqueue(&self, job: Job) -> Result<(), Job> {
        let cost = job.cost();
        {
            let mut state = self.shared.state.lock().expect("batcher lock poisoned");
            if state.shutdown || state.queued_items + cost > self.shared.cfg.queue_capacity {
                drop(state);
                self.shared.telemetry.record_shard_shed(self.shared.shard);
                return Err(job);
            }
            state.queued_items += cost;
            self.shared.telemetry.set_queue_depth(self.shared.shard, state.queued_items);
            state.jobs.push_back(job);
        }
        self.shared.telemetry.record_shard_dispatch(self.shared.shard);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Channel-backed convenience over [`Batcher::submit_with`]: returns a
    /// receiver for the scores, or [`Overloaded`] when the job was shed.
    pub fn submit(
        &self,
        path: ScorePath,
        items: Vec<u32>,
    ) -> Result<mpsc::Receiver<BatchReply>, Overloaded> {
        let (tx, rx) = mpsc::sync_channel(1);
        // A dead receiver just means the caller hung up; nothing to do.
        let reply: ReplyFn = Box::new(move |r| {
            let _ = tx.send(r);
        });
        self.submit_with(path, items, reply).map_err(|(over, _)| over)?;
        Ok(rx)
    }

    /// Channel-backed convenience over [`Batcher::submit_probe_with`].
    pub fn submit_probe(&self, k: usize) -> Result<mpsc::Receiver<ProbeReply>, Overloaded> {
        let (tx, rx) = mpsc::sync_channel(1);
        let reply: ProbeReplyFn = Box::new(move |r| {
            let _ = tx.send(r);
        });
        self.submit_probe_with(k, reply).map_err(|(over, _)| over)?;
        Ok(rx)
    }

    /// This batcher's shard index.
    pub fn shard(&self) -> usize {
        self.shared.shard
    }

    /// Items currently waiting in the queue (diagnostics).
    pub fn queued_items(&self) -> usize {
        self.shared.state.lock().expect("batcher lock poisoned").queued_items
    }

    /// Test hook: freezes (`true`) or thaws (`false`) the batch worker.
    #[cfg(test)]
    fn set_paused(&self, paused: bool) {
        self.shared.state.lock().expect("batcher lock poisoned").paused = paused;
        self.shared.cv.notify_all();
    }

    /// Stops the worker after it drains the queue. Later submissions shed.
    pub fn shutdown(&self) {
        self.shared.state.lock().expect("batcher lock poisoned").shutdown = true;
        self.shared.cv.notify_all();
        let handle = self.worker.lock().expect("batcher worker lock poisoned").take();
        if let Some(worker) = handle {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            return; // shutdown with a drained queue
        }
        execute_batch(shared, batch);
    }
}

/// Blocks for the first job, then packs more until the batch is full, the
/// flush deadline expires, or (eager mode) the queue runs dry. Returns an
/// empty batch only on shutdown-with-empty-queue.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let cfg = &shared.cfg;
    let mut state = shared.state.lock().expect("batcher lock poisoned");
    while (state.jobs.is_empty() || state.paused) && !state.shutdown {
        state = shared.cv.wait(state).expect("batcher lock poisoned");
    }
    if state.jobs.is_empty() {
        return Vec::new(); // shutdown with a drained queue
    }

    let deadline = Instant::now() + cfg.flush_deadline;
    let mut batch: Vec<Job> = Vec::new();
    let mut batch_items = 0usize;
    loop {
        // Pack whatever is queued. A job is flushed whole (one reply),
        // so a job that would overflow a non-empty batch waits for the
        // next flush; an oversized job forms its own batch.
        while let Some(job) = state.jobs.front() {
            if !batch.is_empty() && batch_items + job.cost() > cfg.max_batch {
                break;
            }
            let job = state.jobs.pop_front().expect("front exists");
            state.queued_items -= job.cost();
            batch_items += job.cost();
            batch.push(job);
            if batch_items >= cfg.max_batch {
                break;
            }
        }
        shared.telemetry.set_queue_depth(shared.shard, state.queued_items);
        if batch_items >= cfg.max_batch || state.shutdown {
            return batch;
        }
        if cfg.eager_flush && state.jobs.is_empty() {
            return batch;
        }
        let now = Instant::now();
        if now >= deadline {
            return batch;
        }
        let (next, timeout) =
            shared.cv.wait_timeout(state, deadline - now).expect("batcher lock poisoned");
        state = next;
        if timeout.timed_out() && state.jobs.is_empty() {
            return batch;
        }
    }
}

/// Scores one packed batch: one snapshot, at most one forward pass per
/// path, replies split back per job in submission order.
///
/// The snapshot is grabbed here, so ids are re-validated against *its*
/// item space — the server validated against the boot snapshot, and even
/// though the manager refuses to publish a differently-sized catalogue,
/// a job with out-of-range ids must answer with an error rather than
/// panic the worker. The forward passes run under `catch_unwind` for the
/// same reason: a panicking pass fails its batch, not the whole shard
/// (a dead worker would leave queued jobs blocking their connections
/// forever).
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let snapshot = shared.source.load();
    let num_items = snapshot.num_items() as u32;

    let mut score_jobs: Vec<(ScorePath, Vec<u32>, ReplyFn)> = Vec::new();
    let mut probe_jobs: Vec<(usize, ProbeReplyFn)> = Vec::new();
    for job in batch {
        match job {
            Job::Score { path, items, reply } => {
                // Ids are re-validated against *this* snapshot's item
                // space; the server validated against the boot snapshot.
                if items.iter().all(|&i| i < num_items) {
                    score_jobs.push((path, items, reply));
                } else {
                    reply(Err(format!(
                        "item out of range for model v{} (0..{num_items})",
                        snapshot.version
                    )));
                }
            }
            Job::Probe { k, reply } => probe_jobs.push((k, reply)),
        }
    }
    if score_jobs.is_empty() && probe_jobs.is_empty() {
        return;
    }

    let mut cold_items: Vec<u32> = Vec::new();
    let mut warm_items: Vec<u32> = Vec::new();
    for (path, items, _) in &score_jobs {
        match path {
            ScorePath::Cold => cold_items.extend_from_slice(items),
            ScorePath::Warm => warm_items.extend_from_slice(items),
        }
    }
    // A probe only sees ids this shard owns; the single-shard case skips
    // the hash entirely.
    let shards = shared.cfg.shards.max(1);
    let my_shard = shared.shard;
    let keep: Box<dyn Fn(u32) -> bool> = if shards == 1 {
        Box::new(|_| true)
    } else {
        Box::new(move |id| crate::shard::shard_of(id, shards) == my_shard)
    };
    let nprobe = shared.cfg.nprobe;
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cold_scores = if cold_items.is_empty() {
            Vec::new()
        } else {
            shared.telemetry.record_batch(shared.shard, cold_items.len());
            snapshot.score_cold(&cold_items)
        };
        let warm_scores = if warm_items.is_empty() {
            Vec::new()
        } else {
            shared.telemetry.record_batch(shared.shard, warm_items.len());
            snapshot.score_warm(&warm_items)
        };
        let probed: Vec<Vec<(u32, f32)>> =
            probe_jobs.iter().map(|&(k, _)| snapshot.topk_dots(k, nprobe, &keep)).collect();
        (cold_scores, warm_scores, probed)
    }));
    let (cold_scores, warm_scores, probed) = match executed {
        Ok(results) => results,
        Err(_) => {
            let panic_msg = format!("forward pass panicked on model v{}", snapshot.version);
            for (_, _, reply) in score_jobs {
                reply(Err(panic_msg.clone()));
            }
            for (_, reply) in probe_jobs {
                reply(Err(panic_msg.clone()));
            }
            return;
        }
    };

    let (mut cold_off, mut warm_off) = (0usize, 0usize);
    for (path, items, reply) in score_jobs {
        let n = items.len();
        let scores = match path {
            ScorePath::Cold => {
                let s = cold_scores[cold_off..cold_off + n].to_vec();
                cold_off += n;
                s
            }
            ScorePath::Warm => {
                let s = warm_scores[warm_off..warm_off + n].to_vec();
                warm_off += n;
                s
            }
        };
        reply(Ok(scores));
    }
    for ((_, reply), winners) in probe_jobs.into_iter().zip(probed) {
        reply(Ok(winners));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ModelManager;
    use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
    use atnn_data::tmall::{TmallConfig, TmallDataset};
    use std::time::Duration;

    fn tiny_snapshot(version: u64) -> ModelSnapshot {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 50,
            num_items: 100,
            num_interactions: 800,
            ..TmallConfig::tiny()
        });
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        let index = PopularityIndex::build(&model, &data, &(0..30).collect::<Vec<_>>());
        ModelSnapshot::new(version, data, model, index)
    }

    fn tiny_manager() -> Arc<ModelManager> {
        Arc::new(ModelManager::new(tiny_snapshot(1)))
    }

    fn start_batcher(
        cfg: ServeConfig,
        manager: &Arc<ModelManager>,
        telemetry: &Arc<Telemetry>,
    ) -> Batcher {
        Batcher::start(cfg, manager.register_shard_cell(), Arc::clone(telemetry), 0)
    }

    #[test]
    fn batched_scores_match_direct_calls() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::new());
        let batcher = start_batcher(ServeConfig::default(), &manager, &telemetry);
        let snapshot = manager.load();

        let rx_a = batcher.submit(ScorePath::Cold, vec![0, 1, 2]).unwrap();
        let rx_b = batcher.submit(ScorePath::Warm, vec![3, 4]).unwrap();
        let rx_c = batcher.submit(ScorePath::Cold, vec![5]).unwrap();
        assert_eq!(rx_a.recv().unwrap().unwrap(), snapshot.score_cold(&[0, 1, 2]));
        assert_eq!(rx_b.recv().unwrap().unwrap(), snapshot.score_warm(&[3, 4]));
        assert_eq!(rx_c.recv().unwrap().unwrap(), snapshot.score_cold(&[5]));
        assert!(telemetry.report(1).batches >= 1);
    }

    #[test]
    fn concurrent_submissions_coalesce_into_fewer_batches() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::new());
        // A long deadline with eager flush off forces full coalescing.
        let cfg = ServeConfig {
            flush_deadline: Duration::from_millis(50),
            eager_flush: false,
            ..ServeConfig::default()
        };
        let batcher = start_batcher(cfg, &manager, &telemetry);
        let snapshot = manager.load();

        let receivers: Vec<_> =
            (0..16u32).map(|i| batcher.submit(ScorePath::Cold, vec![i]).unwrap()).collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap().unwrap(), snapshot.score_cold(&[i as u32]));
        }
        let report = telemetry.report(1);
        assert_eq!(report.batched_items, 16);
        assert!(
            report.batches < 16,
            "16 sequential submits under a 50ms deadline must coalesce, got {} batches",
            report.batches
        );
        assert_eq!(report.shards[0].dispatched, 16);
    }

    #[test]
    fn probe_jobs_return_the_snapshots_topk_dots() {
        let manager = tiny_manager();
        let cfg = ServeConfig::default();
        let batcher = start_batcher(cfg.clone(), &manager, &Arc::new(Telemetry::new()));
        let snapshot = manager.load();
        let winners = batcher.submit_probe(5).unwrap().recv().unwrap().unwrap();
        assert_eq!(winners, snapshot.topk_dots(5, cfg.nprobe, &|_| true));
        assert_eq!(winners.len(), 5);
    }

    #[test]
    fn probe_jobs_respect_the_shard_filter() {
        let manager = tiny_manager();
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let batcher = Batcher::start(
            cfg.clone(),
            manager.register_shard_cell(),
            Arc::new(Telemetry::with_shards(3)),
            1,
        );
        let snapshot = manager.load();
        let winners = batcher.submit_probe(100).unwrap().recv().unwrap().unwrap();
        let keep = |id: u32| crate::shard::shard_of(id, 3) == 1;
        assert_eq!(winners, snapshot.topk_dots(100, cfg.nprobe, &keep));
        assert!(!winners.is_empty());
        assert!(winners.iter().all(|&(id, _)| keep(id)));
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::new());
        let cfg = ServeConfig { queue_capacity: 8, ..ServeConfig::default() };
        let batcher = start_batcher(cfg, &manager, &telemetry);
        // Freeze the worker so the queue accounting below is deterministic.
        batcher.set_paused(true);
        let first = batcher.submit(ScorePath::Cold, vec![0, 1, 2, 3]).unwrap();
        let second = batcher.submit(ScorePath::Cold, vec![4, 5, 6, 7]).unwrap();
        assert_eq!(
            batcher.submit(ScorePath::Cold, vec![8]).unwrap_err(),
            Overloaded,
            "ninth queued item must be shed, not block"
        );
        assert_eq!(telemetry.report(1).shards[0].shed, 1);
        batcher.set_paused(false);
        // Queued work still completes after the shed.
        assert_eq!(first.recv_timeout(Duration::from_secs(10)).unwrap().unwrap().len(), 4);
        assert_eq!(second.recv_timeout(Duration::from_secs(10)).unwrap().unwrap().len(), 4);
        assert_eq!(batcher.queued_items(), 0);
    }

    #[test]
    fn shed_submission_returns_the_reply_uninvoked() {
        let manager = tiny_manager();
        let cfg = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
        let batcher = start_batcher(cfg, &manager, &Arc::new(Telemetry::new()));
        batcher.set_paused(true);
        let _held = batcher.submit(ScorePath::Cold, vec![0, 1]).unwrap();

        let invoked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&invoked);
        let reply: ReplyFn =
            Box::new(move |_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
        let (over, returned) = batcher.submit_with(ScorePath::Cold, vec![2], reply).unwrap_err();
        assert_eq!(over, Overloaded);
        assert!(!invoked.load(std::sync::atomic::Ordering::SeqCst), "shed must not invoke");
        // The caller owns the closure again and may answer through it.
        returned(Err("overloaded".into()));
        assert!(invoked.load(std::sync::atomic::Ordering::SeqCst));
        batcher.set_paused(false);
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let manager = tiny_manager();
        let batcher = start_batcher(ServeConfig::default(), &manager, &Arc::new(Telemetry::new()));
        let receivers: Vec<_> =
            (0..8u32).map(|i| batcher.submit(ScorePath::Cold, vec![i]).unwrap()).collect();
        batcher.shutdown();
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().unwrap().len(), 1, "queued jobs answered before exit");
        }
        assert!(batcher.submit(ScorePath::Cold, vec![0]).is_err(), "post-shutdown submit sheds");
    }

    #[test]
    fn out_of_range_job_gets_an_error_and_worker_survives() {
        let manager = tiny_manager();
        let batcher = start_batcher(ServeConfig::default(), &manager, &Arc::new(Telemetry::new()));
        let snapshot = manager.load();
        let beyond = snapshot.num_items() as u32;

        // An id past the snapshot's item space (reachable only if server
        // validation were bypassed) answers with an error, not a panic.
        let bad = batcher.submit(ScorePath::Cold, vec![0, beyond]).unwrap();
        let reply = bad.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(reply.unwrap_err().contains("out of range"));

        // The worker is still alive and scoring.
        let ok = batcher.submit(ScorePath::Cold, vec![0, 1]).unwrap();
        assert_eq!(
            ok.recv_timeout(Duration::from_secs(10)).unwrap().unwrap(),
            snapshot.score_cold(&[0, 1])
        );
    }

    #[test]
    fn hot_swap_through_the_shard_cell_changes_the_serving_version() {
        let manager = tiny_manager();
        let batcher = start_batcher(ServeConfig::default(), &manager, &Arc::new(Telemetry::new()));
        let beyond = manager.load().num_items() as u32;

        // Republish the same catalogue under a new version tag; the error
        // string carries the version the batch actually ran against.
        manager.publish(tiny_snapshot(9)).unwrap();

        let bad = batcher.submit(ScorePath::Cold, vec![beyond]).unwrap();
        let err = bad.recv_timeout(Duration::from_secs(10)).unwrap().unwrap_err();
        assert!(err.contains("model v9"), "worker must score against the published cell: {err}");
    }
}
