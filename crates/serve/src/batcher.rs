//! The micro-batcher: coalesces concurrent scoring requests into batched
//! forward passes.
//!
//! Connection threads `submit` jobs into a bounded queue; one batch worker
//! drains it, packing jobs into a batch until the batch is full, the
//! flush deadline since the batch's first job expires, or (in the default
//! eager mode) the queue runs dry. Each flush grabs **one** model snapshot
//! and runs at most one forward pass per scoring path, so a 64-request
//! burst costs two matmul dispatches instead of 64 — the "batching
//! requests pays for itself immediately" lesson of the 300M-predictions/s
//! paper — and every job in a flush is answered by a single consistent
//! model version.
//!
//! Backpressure is explicit: when the queued-item bound would be exceeded,
//! `submit` fails immediately and the caller answers `Overloaded`. The
//! acceptor and connection threads never block on a full queue, so a
//! saturated scorer degrades into fast sheds rather than a connection
//! pile-up.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::config::ServeConfig;
use crate::manager::ModelManager;
use crate::router::ScorePath;
use crate::telemetry::Telemetry;

/// What a queued job is answered with: the scores, or a description of why
/// the batch worker could not score it (out-of-range ids for the snapshot
/// the batch ran against, or a panicked forward pass).
pub type BatchReply = Result<Vec<f32>, String>;

/// One queued scoring request.
struct Job {
    path: ScorePath,
    items: Vec<u32>,
    reply: mpsc::SyncSender<BatchReply>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    queued_items: usize,
    shutdown: bool,
    /// Test hook: a paused worker leaves the queue untouched, letting
    /// capacity tests observe accounting deterministically. Always false
    /// in production; shutdown overrides it.
    paused: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the worker (new job / shutdown).
    cv: Condvar,
    manager: Arc<ModelManager>,
    telemetry: Arc<Telemetry>,
    cfg: ServeConfig,
}

/// Submission failure: the queue is at capacity (or shutting down) and the
/// request must be shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

/// The bounded queue + batch worker pair.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the batch worker.
    pub fn start(cfg: ServeConfig, manager: Arc<ModelManager>, telemetry: Arc<Telemetry>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                queued_items: 0,
                shutdown: false,
                paused: false,
            }),
            cv: Condvar::new(),
            manager,
            telemetry,
            cfg,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("atnn-serve-batcher".to_string())
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn batch worker");
        Batcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// Enqueues a scoring job. Returns a receiver for the scores, or
    /// [`Overloaded`] when the queue bound would be exceeded — the caller
    /// sheds the request instead of waiting.
    pub fn submit(
        &self,
        path: ScorePath,
        items: Vec<u32>,
    ) -> Result<mpsc::Receiver<BatchReply>, Overloaded> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut state = self.shared.state.lock().expect("batcher lock poisoned");
            if state.shutdown || state.queued_items + items.len() > self.shared.cfg.queue_capacity {
                return Err(Overloaded);
            }
            state.queued_items += items.len();
            state.jobs.push_back(Job { path, items, reply: tx });
        }
        self.shared.cv.notify_one();
        Ok(rx)
    }

    /// Items currently waiting in the queue (diagnostics).
    pub fn queued_items(&self) -> usize {
        self.shared.state.lock().expect("batcher lock poisoned").queued_items
    }

    /// Test hook: freezes (`true`) or thaws (`false`) the batch worker.
    #[cfg(test)]
    fn set_paused(&self, paused: bool) {
        self.shared.state.lock().expect("batcher lock poisoned").paused = paused;
        self.shared.cv.notify_all();
    }

    /// Stops the worker after it drains the queue. Later submissions shed.
    pub fn shutdown(&self) {
        self.shared.state.lock().expect("batcher lock poisoned").shutdown = true;
        self.shared.cv.notify_all();
        let handle = self.worker.lock().expect("batcher worker lock poisoned").take();
        if let Some(worker) = handle {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            return; // shutdown with a drained queue
        }
        execute_batch(shared, batch);
    }
}

/// Blocks for the first job, then packs more until the batch is full, the
/// flush deadline expires, or (eager mode) the queue runs dry. Returns an
/// empty batch only on shutdown-with-empty-queue.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let cfg = &shared.cfg;
    let mut state = shared.state.lock().expect("batcher lock poisoned");
    while (state.jobs.is_empty() || state.paused) && !state.shutdown {
        state = shared.cv.wait(state).expect("batcher lock poisoned");
    }
    if state.jobs.is_empty() {
        return Vec::new(); // shutdown with a drained queue
    }

    let deadline = Instant::now() + cfg.flush_deadline;
    let mut batch: Vec<Job> = Vec::new();
    let mut batch_items = 0usize;
    loop {
        // Pack whatever is queued. A job is flushed whole (one reply),
        // so a job that would overflow a non-empty batch waits for the
        // next flush; an oversized job forms its own batch.
        while let Some(job) = state.jobs.front() {
            if !batch.is_empty() && batch_items + job.items.len() > cfg.max_batch {
                break;
            }
            let job = state.jobs.pop_front().expect("front exists");
            state.queued_items -= job.items.len();
            batch_items += job.items.len();
            batch.push(job);
            if batch_items >= cfg.max_batch {
                break;
            }
        }
        if batch_items >= cfg.max_batch || state.shutdown {
            return batch;
        }
        if cfg.eager_flush && state.jobs.is_empty() {
            return batch;
        }
        let now = Instant::now();
        if now >= deadline {
            return batch;
        }
        let (next, timeout) =
            shared.cv.wait_timeout(state, deadline - now).expect("batcher lock poisoned");
        state = next;
        if timeout.timed_out() && state.jobs.is_empty() {
            return batch;
        }
    }
}

/// Scores one packed batch: one snapshot, at most one forward pass per
/// path, replies split back per job in submission order.
///
/// The snapshot is grabbed here, so ids are re-validated against *its*
/// item space — the server validated against the boot snapshot, and even
/// though the manager refuses to publish a differently-sized catalogue,
/// a job with out-of-range ids must answer with an error rather than
/// panic the worker. The forward passes run under `catch_unwind` for the
/// same reason: a panicking pass fails its batch, not the whole server
/// (a dead worker would leave queued jobs blocking their connections
/// forever).
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let snapshot = shared.manager.load();
    let num_items = snapshot.num_items() as u32;

    let (batch, invalid): (Vec<Job>, Vec<Job>) =
        batch.into_iter().partition(|job| job.items.iter().all(|&i| i < num_items));
    for job in invalid {
        // A dead receiver just means the client hung up; nothing to do.
        let _ = job.reply.send(Err(format!(
            "item out of range for model v{} (0..{num_items})",
            snapshot.version
        )));
    }
    if batch.is_empty() {
        return;
    }

    let mut cold_items: Vec<u32> = Vec::new();
    let mut warm_items: Vec<u32> = Vec::new();
    for job in &batch {
        match job.path {
            ScorePath::Cold => cold_items.extend_from_slice(&job.items),
            ScorePath::Warm => warm_items.extend_from_slice(&job.items),
        }
    }
    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cold_scores = if cold_items.is_empty() {
            Vec::new()
        } else {
            shared.telemetry.record_batch(cold_items.len());
            snapshot.score_cold(&cold_items)
        };
        let warm_scores = if warm_items.is_empty() {
            Vec::new()
        } else {
            shared.telemetry.record_batch(warm_items.len());
            snapshot.score_warm(&warm_items)
        };
        (cold_scores, warm_scores)
    }));
    let (cold_scores, warm_scores) = match scored {
        Ok(scores) => scores,
        Err(_) => {
            for job in batch {
                let _ = job
                    .reply
                    .send(Err(format!("forward pass panicked on model v{}", snapshot.version)));
            }
            return;
        }
    };

    let (mut cold_off, mut warm_off) = (0usize, 0usize);
    for job in batch {
        let n = job.items.len();
        let scores = match job.path {
            ScorePath::Cold => {
                let s = cold_scores[cold_off..cold_off + n].to_vec();
                cold_off += n;
                s
            }
            ScorePath::Warm => {
                let s = warm_scores[warm_off..warm_off + n].to_vec();
                warm_off += n;
                s
            }
        };
        let _ = job.reply.send(Ok(scores));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ModelSnapshot;
    use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
    use atnn_data::tmall::{TmallConfig, TmallDataset};
    use std::time::Duration;

    fn tiny_manager() -> Arc<ModelManager> {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 50,
            num_items: 100,
            num_interactions: 800,
            ..TmallConfig::tiny()
        });
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        let index = PopularityIndex::build(&model, &data, &(0..30).collect::<Vec<_>>());
        Arc::new(ModelManager::new(ModelSnapshot { version: 1, data, model, index }))
    }

    #[test]
    fn batched_scores_match_direct_calls() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::new());
        let batcher =
            Batcher::start(ServeConfig::default(), Arc::clone(&manager), Arc::clone(&telemetry));
        let snapshot = manager.load();

        let rx_a = batcher.submit(ScorePath::Cold, vec![0, 1, 2]).unwrap();
        let rx_b = batcher.submit(ScorePath::Warm, vec![3, 4]).unwrap();
        let rx_c = batcher.submit(ScorePath::Cold, vec![5]).unwrap();
        assert_eq!(rx_a.recv().unwrap().unwrap(), snapshot.score_cold(&[0, 1, 2]));
        assert_eq!(rx_b.recv().unwrap().unwrap(), snapshot.score_warm(&[3, 4]));
        assert_eq!(rx_c.recv().unwrap().unwrap(), snapshot.score_cold(&[5]));
        assert!(telemetry.report(1).batches >= 1);
    }

    #[test]
    fn concurrent_submissions_coalesce_into_fewer_batches() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::new());
        // A long deadline with eager flush off forces full coalescing.
        let cfg = ServeConfig {
            flush_deadline: Duration::from_millis(50),
            eager_flush: false,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(cfg, Arc::clone(&manager), Arc::clone(&telemetry));
        let snapshot = manager.load();

        let receivers: Vec<_> =
            (0..16u32).map(|i| batcher.submit(ScorePath::Cold, vec![i]).unwrap()).collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap().unwrap(), snapshot.score_cold(&[i as u32]));
        }
        let report = telemetry.report(1);
        assert_eq!(report.batched_items, 16);
        assert!(
            report.batches < 16,
            "16 sequential submits under a 50ms deadline must coalesce, got {} batches",
            report.batches
        );
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let manager = tiny_manager();
        let cfg = ServeConfig { queue_capacity: 8, ..ServeConfig::default() };
        let batcher = Batcher::start(cfg, manager, Arc::new(Telemetry::new()));
        // Freeze the worker so the queue accounting below is deterministic.
        batcher.set_paused(true);
        let first = batcher.submit(ScorePath::Cold, vec![0, 1, 2, 3]).unwrap();
        let second = batcher.submit(ScorePath::Cold, vec![4, 5, 6, 7]).unwrap();
        assert_eq!(
            batcher.submit(ScorePath::Cold, vec![8]).unwrap_err(),
            Overloaded,
            "ninth queued item must be shed, not block"
        );
        batcher.set_paused(false);
        // Queued work still completes after the shed.
        assert_eq!(first.recv_timeout(Duration::from_secs(10)).unwrap().unwrap().len(), 4);
        assert_eq!(second.recv_timeout(Duration::from_secs(10)).unwrap().unwrap().len(), 4);
        assert_eq!(batcher.queued_items(), 0);
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let manager = tiny_manager();
        let batcher = Batcher::start(ServeConfig::default(), manager, Arc::new(Telemetry::new()));
        let receivers: Vec<_> =
            (0..8u32).map(|i| batcher.submit(ScorePath::Cold, vec![i]).unwrap()).collect();
        batcher.shutdown();
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().unwrap().len(), 1, "queued jobs answered before exit");
        }
        assert!(batcher.submit(ScorePath::Cold, vec![0]).is_err(), "post-shutdown submit sheds");
    }

    #[test]
    fn out_of_range_job_gets_an_error_and_worker_survives() {
        let manager = tiny_manager();
        let batcher = Batcher::start(
            ServeConfig::default(),
            Arc::clone(&manager),
            Arc::new(Telemetry::new()),
        );
        let snapshot = manager.load();
        let beyond = snapshot.num_items() as u32;

        // An id past the snapshot's item space (reachable only if server
        // validation were bypassed) answers with an error, not a panic.
        let bad = batcher.submit(ScorePath::Cold, vec![0, beyond]).unwrap();
        let reply = bad.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(reply.unwrap_err().contains("out of range"));

        // The worker is still alive and scoring.
        let ok = batcher.submit(ScorePath::Cold, vec![0, 1]).unwrap();
        assert_eq!(
            ok.recv_timeout(Duration::from_secs(10)).unwrap().unwrap(),
            snapshot.score_cold(&[0, 1])
        );
    }
}
