//! The serving-policy switch (paper §IV-D) as live routing state.
//!
//! The paper deploys ATNN in two phases: a brand-new arrival has no
//! behavioural statistics, so it is scored by the generator against the
//! stored mean user vector (the O(1) cold path); once the real-time data
//! engine has accrued enough interactions, the full encoder tower takes
//! over (the warm path). [`PolicyRouter`] holds that switch as a dense
//! array of per-item interaction counters: `record` bumps a counter
//! lock-free, `is_warm` compares it to the configured threshold, and
//! `split` partitions a request batch into the two paths while remembering
//! each item's original slot so merged results come back in request order.

use std::sync::atomic::{AtomicU32, Ordering};

/// Which scoring path an item is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScorePath {
    /// Generator vector + O(1) mean-user-vector index (no statistics yet).
    Cold,
    /// Full encoder tower over profile + accrued statistics.
    Warm,
}

/// Items assigned to one path, each paired with its original request slot
/// so per-path results can be merged back in request order.
pub type SlottedItems = Vec<(usize, u32)>;

/// Per-item interaction counters and the cold→warm threshold.
#[derive(Debug)]
pub struct PolicyRouter {
    counts: Vec<AtomicU32>,
    warm_threshold: u32,
}

impl PolicyRouter {
    /// A router for items `0..num_items`, all starting cold.
    pub fn new(num_items: usize, warm_threshold: u32) -> Self {
        assert!(warm_threshold > 0, "a zero threshold would make every item warm at birth");
        PolicyRouter { counts: (0..num_items).map(|_| AtomicU32::new(0)).collect(), warm_threshold }
    }

    /// Number of items the router tracks.
    pub fn num_items(&self) -> usize {
        self.counts.len()
    }

    /// The cold→warm interaction threshold.
    pub fn warm_threshold(&self) -> u32 {
        self.warm_threshold
    }

    /// Records one observed interaction; returns the new count. Saturates
    /// instead of wrapping.
    pub fn record(&self, item: u32) -> u32 {
        let c = &self.counts[item as usize];
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(1);
            match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current interaction count of `item`.
    pub fn count(&self, item: u32) -> u32 {
        self.counts[item as usize].load(Ordering::Relaxed)
    }

    /// Whether `item` has crossed the warm threshold.
    pub fn is_warm(&self, item: u32) -> bool {
        self.count(item) >= self.warm_threshold
    }

    /// The path `item` is currently routed to.
    pub fn route(&self, item: u32) -> ScorePath {
        if self.is_warm(item) {
            ScorePath::Warm
        } else {
            ScorePath::Cold
        }
    }

    /// Partitions a request batch by path, keeping each item's original
    /// slot index so per-path results can be merged back in request order.
    pub fn split(&self, items: &[u32]) -> (SlottedItems, SlottedItems) {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for (slot, &item) in items.iter().enumerate() {
            match self.route(item) {
                ScorePath::Cold => cold.push((slot, item)),
                ScorePath::Warm => warm.push((slot, item)),
            }
        }
        (cold, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_start_cold_and_warm_at_the_threshold() {
        let router = PolicyRouter::new(10, 3);
        assert_eq!(router.route(5), ScorePath::Cold);
        assert_eq!(router.record(5), 1);
        assert_eq!(router.record(5), 2);
        assert_eq!(router.route(5), ScorePath::Cold, "below threshold");
        assert_eq!(router.record(5), 3);
        assert_eq!(router.route(5), ScorePath::Warm, "at threshold");
        assert_eq!(router.route(4), ScorePath::Cold, "other items unaffected");
    }

    #[test]
    fn split_preserves_request_slots() {
        let router = PolicyRouter::new(6, 1);
        router.record(1);
        router.record(4);
        let (cold, warm) = router.split(&[0, 1, 2, 4, 1]);
        assert_eq!(cold, vec![(0, 0), (2, 2)]);
        assert_eq!(warm, vec![(1, 1), (3, 4), (4, 1)]);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let router = PolicyRouter::new(1, 1_000_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        router.record(0);
                    }
                });
            }
        });
        assert_eq!(router.count(0), 40_000);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let router = PolicyRouter::new(1, 2);
        router.counts[0].store(u32::MAX, Ordering::Relaxed);
        assert_eq!(router.record(0), u32::MAX);
        assert!(router.is_warm(0));
    }
}
