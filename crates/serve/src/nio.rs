//! Thin, dependency-free nonblocking-I/O primitives: `epoll` and
//! `eventfd` wrappers over the raw C entry points.
//!
//! The serving plane's readiness loop needs exactly four kernel services —
//! create an epoll instance, register/modify/remove interest, wait for
//! readiness, and a cross-thread wakeup fd — and none of them are exposed
//! by `std`. Rather than pull in the `libc` crate (the workspace is
//! zero-dependency by policy), this module declares the handful of symbols
//! it needs as `extern "C"` functions: `std` already links the platform
//! libc on Linux, so the symbols resolve with no new dependency, and
//! `std::io::Error::last_os_error()` reads `errno` for us.
//!
//! Everything here is Linux-specific (`epoll` *is* Linux-specific); the
//! serving stack targets the Linux deployment box, matching the paper's
//! production setting.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readiness: the fd has data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half; lets the loop notice half-closed
/// connections without a read returning 0 first.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

/// One readiness record, ABI-compatible with the kernel's `epoll_event`.
///
/// On x86-64 the C struct is `__attribute__((packed))` (12 bytes); other
/// architectures use natural alignment. `data` carries an opaque caller
/// token (this crate packs a slab index + generation into it).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

/// One readiness record, ABI-compatible with the kernel's `epoll_event`.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed record, for pre-allocating wait buffers.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance (level-triggered; this crate never uses `EPOLLET`).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and caller token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces `fd`'s interest mask (and token).
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set. Closing the fd does this
    /// implicitly; explicit removal is only needed to keep an open fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout_ms` (`-1` = forever); fills
    /// `events` and returns how many records are valid. `EINTR` retries.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is valid for `events.len()` records and
            // the kernel writes at most that many.
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

/// A cross-thread wakeup handle: an `eventfd` counter registered in the
/// loop's epoll set. `wake` is async-signal-cheap (one 8-byte write) and
/// callable from any thread; the loop `drain`s it so level-triggered
/// readiness stops firing.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// A fresh nonblocking, close-on-exec eventfd with a zero counter.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// The fd to register for `EPOLLIN` in the loop's epoll set.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Bumps the counter, making the fd readable. A full counter
    /// (`EAGAIN`) already means "wake pending", so failure is ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: 8 valid bytes; eventfd writes are atomic.
        unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Clears the counter so the next `wake` edge is observable again.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: 8 valid bytes; a nonblocking eventfd read either zeroes
        // the counter or fails with EAGAIN.
        unsafe { read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOKEN: u64 = 0xDEAD_BEEF_F00D;

    #[test]
    fn wake_makes_the_eventfd_readable_and_drain_clears_it() {
        let epoll = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(wake.fd(), EPOLLIN, TOKEN).unwrap();

        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no wake yet");

        wake.wake();
        wake.wake(); // coalesces into one readable counter
        let n = epoll.wait(&mut events, 1_000).unwrap();
        assert_eq!(n, 1);
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, TOKEN);
        assert_ne!(mask & EPOLLIN, 0);

        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained counter is quiet");
    }

    #[test]
    fn modify_and_delete_change_the_interest_set() {
        let epoll = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(wake.fd(), EPOLLIN, 1).unwrap();
        wake.wake();

        // Drop read interest: the pending counter no longer reports.
        epoll.modify(wake.fd(), 0, 1).unwrap();
        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Restore it with a new token: readiness comes back, token updated.
        epoll.modify(wake.fd(), EPOLLIN, 2).unwrap();
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        let data = events[0].data;
        assert_eq!(data, 2);

        epoll.delete(wake.fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "deleted fd never reports");
    }
}
