//! Lock-cheap serving telemetry: per-endpoint counters and fixed-bucket
//! latency histograms, built on the `atnn-obs` instruments.
//!
//! Every counter is a relaxed atomic — a recording is a handful of
//! `fetch_add`s, with no lock anywhere on the request path. Latencies land
//! in [`atnn_obs::Histogram`] — the geometric fixed-bucket histogram
//! (factor-1.25 bucket bounds from 1 µs up) that originated in this module
//! and now lives in `atnn-obs` — from which any quantile is derivable;
//! p50/p95/p99 are exposed through the `Stats` endpoint as the matched
//! bucket's upper bound, so a reported quantile is always ≥ the true one
//! and within one bucket ratio of it. The re-base is observable only
//! through `atnn-obs` sinks (shed decisions also emit
//! [`atnn_obs::Event::Shed`]); `Stats` replies are bit-identical to the
//! pre-obs implementation, which `stats_report_is_bit_identical_to_the_
//! reference_histogram` pins against an independent serial reference.

use std::time::Duration;

use atnn_obs::{Counter, Event, Gauge, Histogram};

use crate::protocol::{EndpointStats, ShardStats, StatsReport};

/// The endpoints accounted separately. Indexes into [`Telemetry::per`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `Health` probes.
    Health,
    /// `Stats` snapshots.
    Stats,
    /// Forced cold-path scoring.
    ScoreNewArrival,
    /// Forced warm-path scoring.
    ScoreWarmItem,
    /// Policy-routed scoring.
    Score,
    /// Interaction-counter updates.
    RecordInteractions,
    /// Routed top-k ranking over explicit candidates.
    TopK,
    /// Catalogue-wide top-k retrieval through the ANN index.
    TopKAll,
    /// Frames that failed `Request::decode` — kept separate so malformed
    /// traffic doesn't pollute any real endpoint's counters.
    Malformed,
}

/// All endpoints, in display order.
pub const ENDPOINTS: [Endpoint; 9] = [
    Endpoint::Health,
    Endpoint::Stats,
    Endpoint::ScoreNewArrival,
    Endpoint::ScoreWarmItem,
    Endpoint::Score,
    Endpoint::RecordInteractions,
    Endpoint::TopK,
    Endpoint::TopKAll,
    Endpoint::Malformed,
];

impl Endpoint {
    /// Stable snake_case name (matches [`crate::protocol::Request::endpoint_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Health => "health",
            Endpoint::Stats => "stats",
            Endpoint::ScoreNewArrival => "score_new_arrival",
            Endpoint::ScoreWarmItem => "score_warm_item",
            Endpoint::Score => "score",
            Endpoint::RecordInteractions => "record_interactions",
            Endpoint::TopK => "topk",
            Endpoint::TopKAll => "topk_all",
            Endpoint::Malformed => "malformed",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Health => 0,
            Endpoint::Stats => 1,
            Endpoint::ScoreNewArrival => 2,
            Endpoint::ScoreWarmItem => 3,
            Endpoint::Score => 4,
            Endpoint::RecordInteractions => 5,
            Endpoint::TopK => 6,
            Endpoint::TopKAll => 7,
            Endpoint::Malformed => 8,
        }
    }
}

#[derive(Debug, Default)]
struct EndpointTelemetry {
    requests: Counter,
    errors: Counter,
    shed: Counter,
    latency: Histogram,
}

/// Per-shard batcher telemetry: one set of counters per catalogue shard,
/// so a hot or starved shard is visible in `Stats` instead of averaged
/// away into a server-wide number.
#[derive(Debug, Default)]
struct ShardTelemetry {
    /// Batched forward passes this shard executed.
    batches: Counter,
    /// Items scored through this shard's batched passes.
    batched_items: Counter,
    /// Jobs the shard's queue accepted.
    dispatched: Counter,
    /// Jobs shed at the shard's queue bound.
    shed: Counter,
    /// Items waiting in the shard's queue, sampled at each transition.
    queue_depth: Gauge,
}

/// The server-wide telemetry sink.
#[derive(Debug)]
pub struct Telemetry {
    per: [EndpointTelemetry; ENDPOINTS.len()],
    shards: Vec<ShardTelemetry>,
    accept_errors: Counter,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_shards(1)
    }
}

impl Telemetry {
    /// Fresh, zeroed telemetry for a single-shard server.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Fresh telemetry with one batcher-counter set per catalogue shard.
    pub fn with_shards(shards: usize) -> Self {
        Telemetry {
            per: Default::default(),
            shards: (0..shards.max(1)).map(|_| ShardTelemetry::default()).collect(),
            accept_errors: Counter::new(),
        }
    }

    /// Number of shard counter sets.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Accounts one answered request.
    pub fn record_request(&self, endpoint: Endpoint, latency: Duration) {
        let e = &self.per[endpoint.index()];
        e.requests.incr();
        e.latency.record(latency);
    }

    /// Accounts an [`crate::protocol::Response::Error`] answer.
    pub fn record_error(&self, endpoint: Endpoint) {
        self.per[endpoint.index()].errors.incr();
    }

    /// Accounts an [`crate::protocol::Response::Overloaded`] answer, and
    /// surfaces the decision on the `atnn-obs` event stream.
    pub fn record_shed(&self, endpoint: Endpoint) {
        self.per[endpoint.index()].shed.incr();
        atnn_obs::emit(&Event::Shed { endpoint: endpoint.name().into() });
    }

    /// Accounts one batched forward pass over `items` items on `shard`.
    pub fn record_batch(&self, shard: usize, items: usize) {
        let s = &self.shards[shard];
        s.batches.incr();
        s.batched_items.add(items as u64);
    }

    /// Accounts a job accepted into `shard`'s queue.
    pub fn record_shard_dispatch(&self, shard: usize) {
        self.shards[shard].dispatched.incr();
    }

    /// Accounts a job shed at `shard`'s queue bound (the endpoint-level
    /// shed is recorded separately via [`Telemetry::record_shed`]).
    pub fn record_shard_shed(&self, shard: usize) {
        self.shards[shard].shed.incr();
    }

    /// Publishes `shard`'s current queued-item count.
    pub fn set_queue_depth(&self, shard: usize, items: usize) {
        self.shards[shard].queue_depth.set(items as f64);
    }

    /// Accounts one failed `accept` call (each also triggers a backoff).
    pub fn record_accept_error(&self) {
        self.accept_errors.incr();
    }

    /// Failed `accept` calls so far.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.get()
    }

    /// Requests recorded for `endpoint` so far.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.per[endpoint.index()].requests.get()
    }

    /// Shed responses recorded for `endpoint` so far.
    pub fn sheds(&self, endpoint: Endpoint) -> u64 {
        self.per[endpoint.index()].shed.get()
    }

    /// A consistent-enough snapshot for the `Stats` endpoint (counters are
    /// read relaxed; exactness across endpoints is not required).
    pub fn report(&self, model_version: u64) -> StatsReport {
        let endpoints = ENDPOINTS
            .iter()
            .map(|&ep| {
                let e = &self.per[ep.index()];
                EndpointStats {
                    name: ep.name().to_string(),
                    requests: e.requests.get(),
                    errors: e.errors.get(),
                    shed: e.shed.get(),
                    p50_ns: e.latency.quantile_ns(0.50),
                    p95_ns: e.latency.quantile_ns(0.95),
                    p99_ns: e.latency.quantile_ns(0.99),
                }
            })
            .collect();
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|s| ShardStats {
                batches: s.batches.get(),
                batched_items: s.batched_items.get(),
                dispatched: s.dispatched.get(),
                shed: s.shed.get(),
                queue_depth: s.queue_depth.get() as u64,
            })
            .collect();
        StatsReport {
            model_version,
            batches: shards.iter().map(|s| s.batches).sum(),
            batched_items: shards.iter().map(|s| s.batched_items).sum(),
            accept_errors: self.accept_errors.get(),
            // Snapshot footprints and publish costs belong to the served
            // snapshot / process-wide publish gauges, not the telemetry
            // registry; the server's Stats handler fills them.
            snapshot_bytes: 0,
            snapshot_f32_bytes: 0,
            publishes_full: 0,
            publishes_delta: 0,
            last_full_build_seconds: 0.0,
            last_delta_build_seconds: 0.0,
            endpoints,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_obs::BASE_NS;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        // 100 samples: 1..=100 µs.
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Bucket bounds are ×1.25 apart: the reported bound is ≥ the true
        // quantile and < 1.25× the next sample above it.
        assert!((50_000..100_000).contains(&p50), "p50={p50}");
        assert!((99_000..198_000).contains(&p99), "p99={p99}");
        assert!(h.quantile_ns(1.0) >= 100_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(10_000)); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.25), BASE_NS);
        assert!(h.quantile_ns(1.0) >= 10_000_000_000, "last finite bound covers ≥ 10 s");
    }

    #[test]
    fn report_collects_all_endpoints() {
        let t = Telemetry::new();
        t.record_request(Endpoint::Score, Duration::from_micros(10));
        t.record_shed(Endpoint::Score);
        t.record_error(Endpoint::TopK);
        t.record_batch(0, 7);
        t.record_batch(0, 3);
        let report = t.report(42);
        assert_eq!(report.model_version, 42);
        assert_eq!(report.batches, 2);
        assert_eq!(report.batched_items, 10);
        assert_eq!(report.mean_batch_size(), 5.0);
        let score = report.endpoint("score").unwrap();
        assert_eq!((score.requests, score.shed, score.errors), (1, 1, 0));
        assert!(score.p50_ns >= 10_000);
        assert_eq!(report.endpoint("topk").unwrap().errors, 1);
        assert_eq!(report.endpoints.len(), ENDPOINTS.len());
        assert_eq!(report.shards.len(), 1);
    }

    #[test]
    fn shard_counters_stay_separate_and_sum_into_the_report() {
        let t = Telemetry::with_shards(3);
        assert_eq!(t.shard_count(), 3);
        t.record_batch(0, 4);
        t.record_batch(2, 6);
        t.record_batch(2, 6);
        t.record_shard_dispatch(0);
        t.record_shard_dispatch(2);
        t.record_shard_dispatch(2);
        t.record_shard_shed(1);
        t.set_queue_depth(2, 17);
        t.record_accept_error();
        let report = t.report(1);
        assert_eq!(report.batches, 3);
        assert_eq!(report.batched_items, 16);
        assert_eq!(report.accept_errors, 1);
        assert_eq!(report.shards.len(), 3);
        assert_eq!((report.shards[0].batches, report.shards[0].batched_items), (1, 4));
        assert_eq!((report.shards[2].batches, report.shards[2].batched_items), (2, 12));
        assert_eq!(report.shards[1].shed, 1);
        assert_eq!(report.shards[1].batches, 0);
        assert_eq!(report.shards[2].dispatched, 2);
        assert_eq!(report.shards[2].queue_depth, 17);
    }

    /// The pre-obs histogram, reimplemented serially and independently:
    /// 83 buckets, 1 µs base, integer ×5/4 bound growth, quantile = upper
    /// bound of the bucket holding the ceil(q·total)-th sample.
    struct Reference {
        buckets: Vec<u64>,
        overflow: u64,
    }

    impl Reference {
        fn new() -> Self {
            Reference { buckets: vec![0; 83], overflow: 0 }
        }

        fn record_ns(&mut self, ns: u64) {
            let mut bound = 1_000u64;
            for b in &mut self.buckets {
                if ns <= bound {
                    *b += 1;
                    return;
                }
                bound += bound / 4;
            }
            self.overflow += 1;
        }

        fn quantile_ns(&self, q: f64) -> u64 {
            let total: u64 = self.buckets.iter().sum::<u64>() + self.overflow;
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            let mut bound = 1_000u64;
            for b in &self.buckets {
                seen += b;
                if seen >= rank {
                    return bound;
                }
                bound += bound / 4;
            }
            bound
        }
    }

    #[test]
    fn stats_report_is_bit_identical_to_the_reference_histogram() {
        // Awkward latency mix: bucket edges, edge+1, sub-base, huge
        // (overflow), and a pseudo-random spread — then every quantile the
        // Stats endpoint reports must equal the reference exactly.
        let t = Telemetry::new();
        let mut r = Reference::new();
        let mut samples: Vec<u64> = vec![1, 999, 1_000, 1_001, 1_250, 1_251, 90_000_000_000_000];
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..500 {
            // xorshift spread across ~7 decades
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % 10_000_000_000);
        }
        for &ns in &samples {
            t.record_request(Endpoint::Score, Duration::from_nanos(ns));
            r.record_ns(ns);
        }
        let report = t.report(1);
        let score = report.endpoint("score").unwrap();
        assert_eq!(score.requests, samples.len() as u64);
        assert_eq!(score.p50_ns, r.quantile_ns(0.50));
        assert_eq!(score.p95_ns, r.quantile_ns(0.95));
        assert_eq!(score.p99_ns, r.quantile_ns(0.99));
        // And off-report quantiles of the shared histogram geometry too.
        let h = Histogram::new();
        for &ns in &samples {
            h.record_ns(ns);
        }
        for q in [0.01, 0.1, 0.25, 0.333, 0.5, 0.75, 0.9, 0.999, 1.0] {
            assert_eq!(h.quantile_ns(q), r.quantile_ns(q), "q={q}");
        }
    }
}
