//! Lock-cheap serving telemetry: per-endpoint counters and fixed-bucket
//! latency histograms.
//!
//! Every counter is a relaxed atomic — a recording is a handful of
//! `fetch_add`s, with no lock anywhere on the request path. Latencies land
//! in a geometric fixed-bucket histogram (factor-1.25 bucket bounds from
//! 1 µs up), from which any quantile is derivable; p50/p95/p99 are exposed
//! through the `Stats` endpoint as the matched bucket's upper bound, so a
//! reported quantile is always ≥ the true one and within one bucket ratio
//! of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::protocol::{EndpointStats, StatsReport};

/// Number of histogram buckets. With a 1 µs base and ×1.25 spacing the
/// last finite bound is ≈ 88 s; anything slower lands in the overflow
/// bucket.
const BUCKETS: usize = 83;
/// Lowest bucket upper bound, in nanoseconds.
const BASE_NS: u64 = 1_000;
/// Bucket bound growth factor (5/4, computed in integers).
fn next_bound(b: u64) -> u64 {
    b + b / 4
}

/// The endpoints accounted separately. Indexes into [`Telemetry::per`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `Health` probes.
    Health,
    /// `Stats` snapshots.
    Stats,
    /// Forced cold-path scoring.
    ScoreNewArrival,
    /// Forced warm-path scoring.
    ScoreWarmItem,
    /// Policy-routed scoring.
    Score,
    /// Interaction-counter updates.
    RecordInteractions,
    /// Routed top-k ranking.
    TopK,
    /// Frames that failed `Request::decode` — kept separate so malformed
    /// traffic doesn't pollute any real endpoint's counters.
    Malformed,
}

/// All endpoints, in display order.
pub const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Health,
    Endpoint::Stats,
    Endpoint::ScoreNewArrival,
    Endpoint::ScoreWarmItem,
    Endpoint::Score,
    Endpoint::RecordInteractions,
    Endpoint::TopK,
    Endpoint::Malformed,
];

impl Endpoint {
    /// Stable snake_case name (matches [`crate::protocol::Request::endpoint_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Health => "health",
            Endpoint::Stats => "stats",
            Endpoint::ScoreNewArrival => "score_new_arrival",
            Endpoint::ScoreWarmItem => "score_warm_item",
            Endpoint::Score => "score",
            Endpoint::RecordInteractions => "record_interactions",
            Endpoint::TopK => "topk",
            Endpoint::Malformed => "malformed",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Health => 0,
            Endpoint::Stats => 1,
            Endpoint::ScoreNewArrival => 2,
            Endpoint::ScoreWarmItem => 3,
            Endpoint::Score => 4,
            Endpoint::RecordInteractions => 5,
            Endpoint::TopK => 6,
            Endpoint::Malformed => 7,
        }
    }
}

/// A fixed-bucket latency histogram with geometric bounds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Samples above the last finite bound.
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)), overflow: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut bound = BASE_NS;
        for bucket in &self.buckets {
            if ns <= bound {
                bucket.fetch_add(1, Ordering::Relaxed);
                return;
            }
            bound = next_bound(bound);
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>()
            + self.overflow.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// quantile sample falls in, in nanoseconds. Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut bound = BASE_NS;
        for bucket in &self.buckets {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bound;
            }
            bound = next_bound(bound);
        }
        bound // overflow bucket: report the last finite bound
    }
}

#[derive(Debug, Default)]
struct EndpointTelemetry {
    requests: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latency: Histogram,
}

/// The server-wide telemetry sink.
#[derive(Debug, Default)]
pub struct Telemetry {
    per: [EndpointTelemetry; ENDPOINTS.len()],
    batches: AtomicU64,
    batched_items: AtomicU64,
}

impl Telemetry {
    /// Fresh, zeroed telemetry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Accounts one answered request.
    pub fn record_request(&self, endpoint: Endpoint, latency: Duration) {
        let e = &self.per[endpoint.index()];
        e.requests.fetch_add(1, Ordering::Relaxed);
        e.latency.record(latency);
    }

    /// Accounts an [`crate::protocol::Response::Error`] answer.
    pub fn record_error(&self, endpoint: Endpoint) {
        self.per[endpoint.index()].errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts an [`crate::protocol::Response::Overloaded`] answer.
    pub fn record_shed(&self, endpoint: Endpoint) {
        self.per[endpoint.index()].shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one batched forward pass over `items` items.
    pub fn record_batch(&self, items: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_items.fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Requests recorded for `endpoint` so far.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.per[endpoint.index()].requests.load(Ordering::Relaxed)
    }

    /// Shed responses recorded for `endpoint` so far.
    pub fn sheds(&self, endpoint: Endpoint) -> u64 {
        self.per[endpoint.index()].shed.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot for the `Stats` endpoint (counters are
    /// read relaxed; exactness across endpoints is not required).
    pub fn report(&self, model_version: u64) -> StatsReport {
        let endpoints = ENDPOINTS
            .iter()
            .map(|&ep| {
                let e = &self.per[ep.index()];
                EndpointStats {
                    name: ep.name().to_string(),
                    requests: e.requests.load(Ordering::Relaxed),
                    errors: e.errors.load(Ordering::Relaxed),
                    shed: e.shed.load(Ordering::Relaxed),
                    p50_ns: e.latency.quantile_ns(0.50),
                    p95_ns: e.latency.quantile_ns(0.95),
                    p99_ns: e.latency.quantile_ns(0.99),
                }
            })
            .collect();
        StatsReport {
            model_version,
            batches: self.batches.load(Ordering::Relaxed),
            batched_items: self.batched_items.load(Ordering::Relaxed),
            endpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        // 100 samples: 1..=100 µs.
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Bucket bounds are ×1.25 apart: the reported bound is ≥ the true
        // quantile and < 1.25× the next sample above it.
        assert!((50_000..100_000).contains(&p50), "p50={p50}");
        assert!((99_000..198_000).contains(&p99), "p99={p99}");
        assert!(h.quantile_ns(1.0) >= 100_000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(10_000)); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.25), BASE_NS);
        assert!(h.quantile_ns(1.0) >= 10_000_000_000, "last finite bound covers ≥ 10 s");
    }

    #[test]
    fn report_collects_all_endpoints() {
        let t = Telemetry::new();
        t.record_request(Endpoint::Score, Duration::from_micros(10));
        t.record_shed(Endpoint::Score);
        t.record_error(Endpoint::TopK);
        t.record_batch(7);
        t.record_batch(3);
        let report = t.report(42);
        assert_eq!(report.model_version, 42);
        assert_eq!(report.batches, 2);
        assert_eq!(report.batched_items, 10);
        assert_eq!(report.mean_batch_size(), 5.0);
        let score = report.endpoint("score").unwrap();
        assert_eq!((score.requests, score.shed, score.errors), (1, 1, 0));
        assert!(score.p50_ns >= 10_000);
        assert_eq!(report.endpoint("topk").unwrap().errors, 1);
        assert_eq!(report.endpoints.len(), ENDPOINTS.len());
    }
}
