//! Server configuration.

use std::time::Duration;

use atnn_tensor::BackendKind;

use crate::manager::Precision;

/// All serving dials in one place. `Default` is tuned for tests and the
/// loadgen; production deployments override the address and capacities.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks an ephemeral port (tests, loadgen).
    pub addr: String,
    /// Maximum items coalesced into one batched forward pass.
    pub max_batch: usize,
    /// Maximum items a single request may carry (larger requests are
    /// answered with an `Error` instead of monopolizing the batcher).
    pub max_request_items: usize,
    /// How long the batcher waits for more work after the first job of a
    /// batch arrives (the paper-style micro-batching deadline).
    pub flush_deadline: Duration,
    /// When true (the default), a partially filled batch is flushed as
    /// soon as the queue is empty instead of waiting out the deadline —
    /// latency-optimal under light load, identical under saturation.
    pub eager_flush: bool,
    /// Bound on items waiting in the batcher queue. Submissions beyond it
    /// are shed with `Overloaded` instead of blocking the acceptor.
    pub queue_capacity: usize,
    /// Interactions before an item switches from the cold (generator +
    /// O(1) index) path to the warm (full tower) path.
    pub warm_threshold: u32,
    /// Upper bound on one `epoll_wait` sleep; caps how long an event loop
    /// can go without checking for shutdown even if no wakeup arrives.
    pub read_timeout: Duration,
    /// Catalogue shards: each gets its own batcher thread, queue, and
    /// model-snapshot cell. Item-addressed requests route by item-id hash;
    /// `Score`/`TopK` scatter to all shards and gather at the front.
    pub shards: usize,
    /// Event-loop threads sharing the accepted connections (round-robin).
    /// One is usually right: the loop only shuffles bytes, the shard
    /// threads do the scoring work.
    pub event_threads: usize,
    /// In-flight (responded-but-unsent or still-scoring) requests allowed
    /// per connection before the loop stops reading from it; bounds the
    /// memory a pipelining client can pin.
    pub max_pipeline: usize,
    /// Inverted lists probed per catalogue-wide `TopKAll` retrieval.
    /// Higher probes more of the catalogue (better recall, more work);
    /// `nprobe ≥ nlist` degenerates to an exact scan bit-identical to the
    /// brute-force oracle.
    pub nprobe: usize,
    /// Numeric representation the daemon builds snapshots at
    /// ([`Precision::Int8`] quantizes the item tables at publish, ~4×
    /// less snapshot memory for toleranced — not bit-identical —
    /// scores). Snapshots handed to the server directly carry their own
    /// precision; this dial governs the boot/train path.
    pub precision: Precision,
    /// Compute backend the shard workers score under (see
    /// [`atnn_tensor::backend`]). `None` inherits the process default
    /// (built-in AVX2 auto-detect, or the `ATNN_BACKEND` override).
    pub backend: Option<BackendKind>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 128,
            max_request_items: 1024,
            flush_deadline: Duration::from_millis(2),
            eager_flush: true,
            queue_capacity: 1024,
            warm_threshold: 5,
            read_timeout: Duration::from_millis(50),
            shards: 1,
            event_threads: 1,
            max_pipeline: 128,
            nprobe: 8,
            precision: Precision::F32,
            backend: None,
        }
    }
}
