//! The item-sharded scoring fleet: N batcher replicas behind one front.
//!
//! The paper's deployment serves a 23.1M-item catalogue; one micro-batch
//! queue is a single hot lock and a single snapshot pointer. A
//! [`ShardSet`] splits the catalogue across `cfg.shards` replicas, each
//! with its own [`Batcher`] thread, bounded queue, and [`SwapCell`]
//! snapshot registered with the [`ModelManager`](crate::ModelManager) (so
//! a `publish` flips every shard atomically). Items map to shards by a
//! multiplicative hash of the item id — stable across requests, so a hot
//! item always lands on the same replica and its scores are always
//! produced by that replica's snapshot.
//!
//! Requests scatter and gather: each request's items are bucketed by
//! shard (the single-shard case degenerates to one bucket), every bucket
//! is submitted with a completion closure targeting a shared [`Gather`],
//! and the last bucket to finish fires the request's `done` closure with
//! the slot-ordered scores. A request that touches one shard — the
//! common case for single-item `ScoreNewArrival` traffic — never pays
//! for the others.
//!
//! Outcome merging is pessimistic: if any bucket was shed the request is
//! `Overloaded` (per-shard shed still counts in that shard's telemetry);
//! otherwise if any bucket errored the request carries the first error;
//! only an all-clear gather returns scores.

use std::sync::{Arc, Mutex};

use atnn_ann::topk_select;
use atnn_tensor::SwapCell;

use crate::batcher::{Batcher, ProbeReplyFn, ReplyFn};
use crate::config::ServeConfig;
use crate::manager::{ModelManager, ModelSnapshot};
use crate::router::{ScorePath, SlottedItems};
use crate::telemetry::Telemetry;

/// The merged result of one scattered request.
#[derive(Debug, PartialEq)]
pub enum ScatterOutcome {
    /// Every bucket scored: one score per request slot, in slot order.
    Scores(Vec<f32>),
    /// At least one bucket was shed at its shard's queue bound.
    Overloaded,
    /// No bucket was shed, but at least one failed; the first failure's
    /// description (by shard submission order).
    Error(String),
}

/// The merged result of one catalogue-wide TopK retrieval.
#[derive(Debug, PartialEq)]
pub enum TopKOutcome {
    /// The global top-k in **raw dot space**, best first, ties by
    /// ascending item id. The front converts dots to probabilities after
    /// the merge — merging in dot space is what keeps cross-shard
    /// tie-breaks exact (sigmoid can collapse distinct dots into equal
    /// `f32` probabilities).
    Winners(Vec<(u32, f32)>),
    /// At least one shard probe was shed at its queue bound.
    Overloaded,
    /// No shard was shed, but at least one probe failed.
    Error(String),
}

/// Deterministic item → shard map: multiplicative (Fibonacci) hash so
/// adjacent item ids spread across shards instead of striping hot id
/// ranges onto one replica.
#[inline]
pub fn shard_of(item: u32, shards: usize) -> usize {
    (item.wrapping_mul(0x9E37_79B1) >> 16) as usize % shards
}

/// What one bucket reported back into the gather.
enum BucketResult {
    Scores(Vec<f32>),
    Error(String),
    Shed,
}

struct GatherState {
    /// Buckets still outstanding; the completion that takes this to zero
    /// fires `done`.
    remaining: usize,
    /// Slot-ordered scores, filled in by each bucket's completion.
    scores: Vec<f32>,
    shed: bool,
    error: Option<String>,
}

/// Completion callback fired once all buckets of a scattered request land.
type DoneFn = Box<dyn FnOnce(ScatterOutcome) + Send>;

/// Shared completion state for one scattered request.
struct Gather {
    state: Mutex<GatherState>,
    done: Mutex<Option<DoneFn>>,
}

impl Gather {
    /// Applies one bucket's result and, when it is the last, fires `done`
    /// (outside the state lock — the closure wakes an event loop).
    fn complete(self: &Arc<Self>, slots: &[usize], result: BucketResult) {
        let finished = {
            let mut state = self.state.lock().expect("gather lock poisoned");
            match result {
                BucketResult::Scores(scores) => {
                    for (&slot, &score) in slots.iter().zip(&scores) {
                        state.scores[slot] = score;
                    }
                }
                BucketResult::Error(msg) => {
                    if state.error.is_none() {
                        state.error = Some(msg);
                    }
                }
                BucketResult::Shed => state.shed = true,
            }
            state.remaining -= 1;
            if state.remaining > 0 {
                return;
            }
            if state.shed {
                ScatterOutcome::Overloaded
            } else if let Some(msg) = state.error.take() {
                ScatterOutcome::Error(msg)
            } else {
                ScatterOutcome::Scores(std::mem::take(&mut state.scores))
            }
        };
        let done = self.done.lock().expect("gather done lock poisoned").take();
        if let Some(done) = done {
            done(finished);
        }
    }
}

/// What one shard's probe reported back into the top-k gather.
enum ProbeResult {
    Winners(Vec<(u32, f32)>),
    Error(String),
    Shed,
}

/// Completion callback for one catalogue-wide TopK retrieval.
type TopKDoneFn = Box<dyn FnOnce(TopKOutcome) + Send>;

struct TopKGatherState {
    /// Shard probes still outstanding.
    remaining: usize,
    /// Concatenated per-shard winner lists (each already ≤ k, dot space).
    winners: Vec<(u32, f32)>,
    shed: bool,
    error: Option<String>,
}

/// Shared completion state for one catalogue-wide TopK retrieval.
struct TopKGather {
    k: usize,
    state: Mutex<TopKGatherState>,
    done: Mutex<Option<TopKDoneFn>>,
}

impl TopKGather {
    /// Applies one shard's probe result; the last completion merges the
    /// per-shard lists with the same k-bounded selection the probes used
    /// (shards partition the catalogue, so the concatenation has distinct
    /// ids and the merge order cannot matter) and fires `done` outside
    /// the state lock.
    fn complete(self: &Arc<Self>, result: ProbeResult) {
        let finished = {
            let mut state = self.state.lock().expect("topk gather lock poisoned");
            match result {
                ProbeResult::Winners(winners) => state.winners.extend(winners),
                ProbeResult::Error(msg) => {
                    if state.error.is_none() {
                        state.error = Some(msg);
                    }
                }
                ProbeResult::Shed => state.shed = true,
            }
            state.remaining -= 1;
            if state.remaining > 0 {
                return;
            }
            if state.shed {
                TopKOutcome::Overloaded
            } else if let Some(msg) = state.error.take() {
                TopKOutcome::Error(msg)
            } else {
                TopKOutcome::Winners(topk_select(std::mem::take(&mut state.winners), self.k))
            }
        };
        let done = self.done.lock().expect("topk gather done lock poisoned").take();
        if let Some(done) = done {
            done(finished);
        }
    }
}

/// One item bucket bound for one shard on one scoring path.
struct Bucket {
    shard: usize,
    path: ScorePath,
    slots: Vec<usize>,
    items: Vec<u32>,
}

/// The shard fleet: one batcher + snapshot cell per catalogue shard.
pub struct ShardSet {
    batchers: Vec<Batcher>,
    cells: Vec<Arc<SwapCell<ModelSnapshot>>>,
}

impl ShardSet {
    /// Registers `cfg.shards` snapshot cells with `manager` and starts one
    /// batch worker per shard. `telemetry` must have been created with at
    /// least that many shard counter sets.
    pub fn start(cfg: &ServeConfig, manager: &ModelManager, telemetry: &Arc<Telemetry>) -> Self {
        let n = cfg.shards.max(1);
        let cells: Vec<_> = (0..n).map(|_| manager.register_shard_cell()).collect();
        let batchers = cells
            .iter()
            .enumerate()
            .map(|(shard, cell)| {
                Batcher::start(cfg.clone(), Arc::clone(cell), Arc::clone(telemetry), shard)
            })
            .collect();
        ShardSet { batchers, cells }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.batchers.len()
    }

    /// Whether the fleet is empty (it never is; `start` floors at 1).
    pub fn is_empty(&self) -> bool {
        self.batchers.is_empty()
    }

    /// The snapshot cells registered with the manager, for unregistration
    /// at server shutdown.
    pub fn cells(&self) -> &[Arc<SwapCell<ModelSnapshot>>] {
        &self.cells
    }

    /// The shard `item` routes to.
    pub fn shard_of(&self, item: u32) -> usize {
        shard_of(item, self.batchers.len())
    }

    /// Scatters slotted items across the fleet and fires `done` once with
    /// the merged outcome. `parts` carries one entry per scoring path
    /// (slots must be unique across entries and `< total_slots`); every
    /// part is bucketed by item hash, so one call covers both the forced
    /// single-path endpoints and the routed cold+warm split.
    ///
    /// `done` runs on whichever thread completes the final bucket — a
    /// shard worker usually, the calling thread when everything is empty
    /// or every bucket sheds synchronously.
    pub fn scatter(
        &self,
        parts: Vec<(ScorePath, SlottedItems)>,
        total_slots: usize,
        done: impl FnOnce(ScatterOutcome) + Send + 'static,
    ) {
        let mut buckets: Vec<Bucket> = Vec::new();
        for (path, slotted) in parts {
            // Index buckets by shard for this path; shards untouched by
            // the request get no bucket at all.
            let mut by_shard: Vec<Option<usize>> = vec![None; self.batchers.len()];
            for (slot, item) in slotted {
                let shard = self.shard_of(item);
                let idx = *by_shard[shard].get_or_insert_with(|| {
                    buckets.push(Bucket { shard, path, slots: Vec::new(), items: Vec::new() });
                    buckets.len() - 1
                });
                buckets[idx].slots.push(slot);
                buckets[idx].items.push(item);
            }
        }
        if buckets.is_empty() {
            done(ScatterOutcome::Scores(vec![0.0; total_slots]));
            return;
        }

        let gather = Arc::new(Gather {
            state: Mutex::new(GatherState {
                remaining: buckets.len(),
                scores: vec![0.0; total_slots],
                shed: false,
                error: None,
            }),
            done: Mutex::new(Some(Box::new(done))),
        });
        for bucket in buckets {
            let g = Arc::clone(&gather);
            let slots = bucket.slots;
            let reply_slots = slots.clone();
            let reply: ReplyFn = Box::new(move |r| {
                let result = match r {
                    Ok(scores) => BucketResult::Scores(scores),
                    Err(msg) => BucketResult::Error(msg),
                };
                g.complete(&reply_slots, result);
            });
            if let Err((_, dropped)) =
                self.batchers[bucket.shard].submit_with(bucket.path, bucket.items, reply)
            {
                // The closure came back uninvoked; completing the bucket
                // as shed here is the single completion for it.
                drop(dropped);
                gather.complete(&slots, BucketResult::Shed);
            }
        }
    }

    /// Scatters one catalogue-wide TopK retrieval to every shard and
    /// fires `done` once with the merged outcome. Each shard probes its
    /// own partition of the catalogue through its snapshot's ANN index
    /// (probe width comes from the batcher's `ServeConfig::nprobe`), so
    /// the union of the per-shard candidate sets is exactly the global
    /// candidate set and the dot-space merge reproduces the single-index
    /// answer bit for bit.
    pub fn scatter_topk(&self, k: usize, done: impl FnOnce(TopKOutcome) + Send + 'static) {
        let gather = Arc::new(TopKGather {
            k,
            state: Mutex::new(TopKGatherState {
                remaining: self.batchers.len(),
                winners: Vec::new(),
                shed: false,
                error: None,
            }),
            done: Mutex::new(Some(Box::new(done))),
        });
        for batcher in &self.batchers {
            let g = Arc::clone(&gather);
            let reply: ProbeReplyFn = Box::new(move |r| {
                let result = match r {
                    Ok(winners) => ProbeResult::Winners(winners),
                    Err(msg) => ProbeResult::Error(msg),
                };
                g.complete(result);
            });
            if let Err((_, dropped)) = batcher.submit_probe_with(k, reply) {
                // The closure came back uninvoked; completing the probe
                // as shed here is the single completion for it.
                drop(dropped);
                gather.complete(ProbeResult::Shed);
            }
        }
    }

    /// Stops every shard worker after it drains its queue.
    pub fn shutdown(&self) {
        for batcher in &self.batchers {
            batcher.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
    use atnn_data::tmall::{TmallConfig, TmallDataset};
    use std::sync::mpsc;
    use std::time::Duration;

    fn tiny_manager() -> Arc<ModelManager> {
        let data = TmallDataset::generate(TmallConfig {
            num_users: 50,
            num_items: 100,
            num_interactions: 800,
            ..TmallConfig::tiny()
        });
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        let index = PopularityIndex::build(&model, &data, &(0..30).collect::<Vec<_>>());
        Arc::new(ModelManager::new(ModelSnapshot::new(1, data, model, index)))
    }

    fn gather_outcome(
        set: &ShardSet,
        parts: Vec<(ScorePath, SlottedItems)>,
        total_slots: usize,
    ) -> ScatterOutcome {
        let (tx, rx) = mpsc::sync_channel(1);
        set.scatter(parts, total_slots, move |o| {
            let _ = tx.send(o);
        });
        rx.recv_timeout(Duration::from_secs(30)).expect("scatter completes")
    }

    #[test]
    fn shard_of_is_stable_and_covers_all_shards() {
        for shards in 1..=5usize {
            let mut hit = vec![false; shards];
            for item in 0..500u32 {
                let s = shard_of(item, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(item, shards), "stable");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "500 items cover all {shards} shards");
        }
    }

    #[test]
    fn scattered_scores_match_the_single_snapshot_reference() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(3));
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        assert_eq!(set.len(), 3);
        let snapshot = manager.load();

        let items: Vec<u32> = (0..40).collect();
        let slotted: SlottedItems = items.iter().copied().enumerate().collect();
        match gather_outcome(&set, vec![(ScorePath::Cold, slotted)], items.len()) {
            ScatterOutcome::Scores(scores) => {
                assert_eq!(scores, snapshot.score_cold(&items), "bit-identical across shards")
            }
            other => panic!("expected scores, got {other:?}"),
        }
        let report = telemetry.report(1);
        assert!(
            report.shards.iter().filter(|s| s.dispatched > 0).count() > 1,
            "40 items must fan out past one shard"
        );
    }

    #[test]
    fn mixed_path_scatter_merges_in_slot_order() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(2));
        let cfg = ServeConfig { shards: 2, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        let snapshot = manager.load();

        // Interleave: even slots cold, odd slots warm.
        let items: Vec<u32> = vec![7, 3, 22, 41, 8, 90];
        let cold: SlottedItems = vec![(0, 7), (2, 22), (4, 8)];
        let warm: SlottedItems = vec![(1, 3), (3, 41), (5, 90)];
        let outcome =
            gather_outcome(&set, vec![(ScorePath::Cold, cold), (ScorePath::Warm, warm)], 6);
        let cold_ref = snapshot.score_cold(&[7, 22, 8]);
        let warm_ref = snapshot.score_warm(&[3, 41, 90]);
        let expected =
            vec![cold_ref[0], warm_ref[0], cold_ref[1], warm_ref[1], cold_ref[2], warm_ref[2]];
        assert_eq!(outcome, ScatterOutcome::Scores(expected));
        let _ = items;
    }

    #[test]
    fn empty_scatter_completes_synchronously_with_zeroed_slots() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(2));
        let cfg = ServeConfig { shards: 2, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        assert_eq!(
            gather_outcome(&set, vec![(ScorePath::Cold, Vec::new())], 0),
            ScatterOutcome::Scores(Vec::new())
        );
    }

    #[test]
    fn one_shed_shard_overloads_the_whole_gather() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(2));
        // Zero-capacity queues: every bucket sheds synchronously.
        let cfg = ServeConfig { shards: 2, queue_capacity: 0, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        let slotted: SlottedItems = (0..10u32).map(|i| (i as usize, i)).collect();
        assert_eq!(
            gather_outcome(&set, vec![(ScorePath::Cold, slotted)], 10),
            ScatterOutcome::Overloaded
        );
        let report = telemetry.report(1);
        let shed: u64 = report.shards.iter().map(|s| s.shed).sum();
        assert!(shed >= 1, "per-shard shed counters must account the sheds");
    }

    #[test]
    fn scattered_topk_matches_the_single_snapshot_reference() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(3));
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        let snapshot = manager.load();

        // Per-shard probing + dot-space merge must reproduce the
        // unfiltered global top-k: every item lives in exactly one shard,
        // so the union of the shard candidate sets is the global one.
        let k = 17;
        let expected = snapshot.topk_dots(k, cfg.nprobe, &|_| true);
        let (tx, rx) = mpsc::sync_channel(1);
        set.scatter_topk(k, move |o| {
            let _ = tx.send(o);
        });
        match rx.recv_timeout(Duration::from_secs(30)).expect("topk scatter completes") {
            TopKOutcome::Winners(winners) => {
                assert_eq!(winners, expected, "bit-identical to the single-index answer")
            }
            other => panic!("expected winners, got {other:?}"),
        }
    }

    #[test]
    fn shed_probe_overloads_the_whole_topk_gather() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(2));
        let cfg = ServeConfig { shards: 2, queue_capacity: 0, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        let (tx, rx) = mpsc::sync_channel(1);
        set.scatter_topk(5, move |o| {
            let _ = tx.send(o);
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).expect("topk scatter completes"),
            TopKOutcome::Overloaded
        );
    }

    #[test]
    fn publish_flips_every_shard_cell() {
        let manager = tiny_manager();
        let telemetry = Arc::new(Telemetry::with_shards(3));
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let set = ShardSet::start(&cfg, &manager, &telemetry);
        assert_eq!(manager.shard_cell_count(), 3);
        for cell in set.cells() {
            assert_eq!(cell.load().version, 1);
        }
        set.shutdown();
        manager.unregister_shard_cells(set.cells());
        assert_eq!(manager.shard_cell_count(), 0);
    }
}
