//! The model manager: versioned snapshots behind an atomic swap.
//!
//! A [`ModelSnapshot`] bundles everything one request needs — the model,
//! the feature store, and the frozen O(1) index — so a request that grabbed
//! a snapshot is immune to concurrent republishes: it scores against one
//! consistent model version from start to finish. The manager holds the
//! current snapshot in a [`SwapCell`]; `load` is a refcount bump,
//! `publish` is a pointer swap, and a background reload builds the new
//! snapshot entirely off to the side before publishing, so readers never
//! block behind artifact IO or weight loading.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use atnn_ann::{IvfFlatIndex, IvfParams, Retriever};
use atnn_core::{ArtifactError, Atnn, ModelArtifact, PopularityIndex};
use atnn_data::tmall::TmallDataset;
use atnn_obs::Gauge;
use atnn_tensor::{Matrix, SwapCell};

/// Wall-clock seconds the most recent snapshot build spent precomputing
/// embedding caches and the ANN index (set by [`ModelSnapshot::new`] and
/// [`ModelSnapshot::from_artifact`]).
static SNAPSHOT_BUILD_SECONDS: Gauge = Gauge::new();

/// The gauge tracking the last snapshot build's wall-clock cost.
pub fn snapshot_build_gauge() -> &'static Gauge {
    &SNAPSHOT_BUILD_SECONDS
}

/// One immutable, consistently-versioned serving state.
///
/// Construction precomputes both item-tower embedding matrices once per
/// publish — the item side depends only on the item, so scoring becomes a
/// cached-row dot instead of a per-request forward pass — and builds the
/// IVF-flat retrieval index over the cold (new-arrival) embeddings. The
/// cached paths are bit-identical to re-running the towers per request:
/// the GEMM kernel uses a single accumulator per output element with
/// strictly ascending `k`, so forward passes are row-wise invariant and
/// batch-size invariant (pinned by `score_paths_match_direct_model_calls`).
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Publisher's version tag.
    pub version: u64,
    /// The feature store items are encoded from.
    pub data: TmallDataset,
    /// The trained model.
    pub model: Atnn,
    /// The frozen mean-user-vector index.
    pub index: PopularityIndex,
    /// Cached generator (cold-path) item vectors, row id == item id.
    cold_vecs: Arc<Matrix>,
    /// Cached full-encoder (warm-path) item vectors. Item statistics are
    /// frozen per snapshot (`RecordInteractions` feeds the policy router,
    /// not the feature store), so these cannot go stale.
    warm_vecs: Arc<Matrix>,
    /// IVF-flat index over `cold_vecs` — catalogue-wide TopK retrieval
    /// shares the new-arrival ranking semantics of the O(1) index.
    ann: IvfFlatIndex,
    /// Wall-clock cost of cache + index construction, in seconds.
    build_seconds: f64,
}

/// Batch width for server-side forward passes.
const BATCH: usize = 512;

impl ModelSnapshot {
    /// Builds a snapshot: precomputes both embedding caches and the ANN
    /// index, then records the build cost in [`snapshot_build_gauge`].
    pub fn new(version: u64, data: TmallDataset, model: Atnn, index: PopularityIndex) -> Self {
        Self::assemble(version, data, model, index, None)
    }

    /// Rebuilds a snapshot from a decoded artifact, adopting its persisted
    /// ANN index when present and valid (otherwise building at load).
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ArtifactError> {
        let live = artifact.instantiate()?;
        Ok(Self::assemble(live.version, live.data, live.model, live.index, artifact.ann()))
    }

    fn assemble(
        version: u64,
        data: TmallDataset,
        model: Atnn,
        index: PopularityIndex,
        ann_blob: Option<&[u8]>,
    ) -> Self {
        let started = Instant::now();
        let n = data.num_items();
        let dim = model.config().vec_dim;
        let mut cold = Matrix::zeros(n, dim);
        let mut warm = Matrix::zeros(n, dim);
        let ids: Vec<u32> = (0..n as u32).collect();
        for (c, chunk) in ids.chunks(BATCH).enumerate() {
            let profile = data.encode_item_profiles(chunk);
            let stats = data.encode_item_stats(chunk);
            let cold_chunk = model.item_vectors_generated(&profile);
            let warm_chunk = model.item_vectors_full(&profile, &stats);
            for i in 0..chunk.len() {
                cold.row_mut(c * BATCH + i).copy_from_slice(cold_chunk.row(i));
                warm.row_mut(c * BATCH + i).copy_from_slice(warm_chunk.row(i));
            }
        }
        let cold_vecs = Arc::new(cold);
        let warm_vecs = Arc::new(warm);
        // A persisted index is adopted only if it decodes cleanly against
        // the freshly computed embeddings; anything else falls back to a
        // build-at-load. The build is deterministic, so both routes yield
        // bit-identical retrieval.
        let ann = ann_blob
            .and_then(|blob| IvfFlatIndex::decode(blob, Arc::clone(&cold_vecs)).ok())
            .unwrap_or_else(|| {
                IvfFlatIndex::build(Arc::clone(&cold_vecs), IvfParams::for_items(n))
            });
        let build_seconds = started.elapsed().as_secs_f64();
        SNAPSHOT_BUILD_SECONDS.set(build_seconds);
        ModelSnapshot { version, data, model, index, cold_vecs, warm_vecs, ann, build_seconds }
    }

    /// Highest item id this snapshot can score.
    pub fn num_items(&self) -> usize {
        self.data.num_items()
    }

    /// Cold path: the cached generator vector's O(1) dot against the
    /// stored mean user vector.
    pub fn score_cold(&self, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&i| self.index.score_vector(self.cold_vecs.row(i as usize))).collect()
    }

    /// Warm path: the cached full-encoder vector's dot against the same
    /// mean user vector.
    pub fn score_warm(&self, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&i| self.index.score_vector(self.warm_vecs.row(i as usize))).collect()
    }

    /// Catalogue-wide top-`k` retrieval in **raw dot space** (best first,
    /// ties by ascending id), restricted to ids `keep` accepts. Callers
    /// convert winners to probabilities with
    /// [`PopularityIndex::score_from_dot`] — the sigmoid is monotone, so
    /// converting after selection preserves the exact dot-space order
    /// (converting before could collapse distinct dots to equal `f32`
    /// probabilities and flip id tie-breaks).
    pub fn topk_dots(
        &self,
        k: usize,
        nprobe: usize,
        keep: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f32)> {
        self.ann.topk_filtered(self.index.mean_user_vec(), k, nprobe, keep)
    }

    /// The retrieval index built over the cold embeddings.
    pub fn ann(&self) -> &IvfFlatIndex {
        &self.ann
    }

    /// The cached cold-path (generator) embedding pool.
    pub fn cold_vecs(&self) -> &Arc<Matrix> {
        &self.cold_vecs
    }

    /// Serialized form of the ANN index, for persisting into an artifact.
    pub fn encoded_ann(&self) -> Vec<u8> {
        self.ann.encode()
    }

    /// Wall-clock seconds this snapshot spent in cache + index builds.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

/// Rejected publish: the replacement snapshot covers a different item
/// space than the catalogue being served.
///
/// The server's policy router and request validation are sized to the boot
/// snapshot, so a hot swap must be a retrained model over the same
/// catalogue (the paper's periodic-retrain setup). A snapshot with fewer
/// items would let already-validated ids reach a forward pass that cannot
/// score them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemSpaceMismatch {
    /// Items in the catalogue being served.
    pub serving: usize,
    /// Items in the rejected snapshot.
    pub offered: usize,
}

impl std::fmt::Display for ItemSpaceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot covers {} items but the served catalogue has {}",
            self.offered, self.serving
        )
    }
}

impl std::error::Error for ItemSpaceMismatch {}

/// Holds the current [`ModelSnapshot`] and swaps in replacements.
///
/// A sharded server registers one extra [`SwapCell`] per shard; `publish`
/// then fans a single `Arc` of the new snapshot out to the primary cell
/// and every shard cell, so all shards flip to the new version together
/// and share one copy of the weights.
#[derive(Debug)]
pub struct ModelManager {
    current: SwapCell<ModelSnapshot>,
    /// Shard-owned cells `publish` fans out to. Guarded by a mutex only
    /// on the (rare) publish/register path; shard reads go through their
    /// own `Arc<SwapCell>` clone, never through this list.
    shard_cells: Mutex<Vec<Arc<SwapCell<ModelSnapshot>>>>,
    /// Item-space size fixed at construction; every published snapshot
    /// must match it.
    num_items: usize,
}

impl ModelManager {
    /// Starts serving `snapshot`. Its item space becomes the invariant all
    /// later publishes are checked against.
    pub fn new(snapshot: ModelSnapshot) -> Self {
        let num_items = snapshot.num_items();
        ModelManager {
            current: SwapCell::new(snapshot),
            shard_cells: Mutex::new(Vec::new()),
            num_items,
        }
    }

    /// Creates and registers a shard-owned snapshot cell, seeded with the
    /// current snapshot. Every later [`ModelManager::publish`] updates it
    /// atomically alongside the primary cell.
    pub fn register_shard_cell(&self) -> Arc<SwapCell<ModelSnapshot>> {
        let cell = Arc::new(SwapCell::from_arc(self.load()));
        self.shard_cells.lock().unwrap().push(Arc::clone(&cell));
        cell
    }

    /// Unregisters previously registered shard cells (matched by pointer
    /// identity). A server's shutdown path calls this so a manager reused
    /// across serve lifecycles doesn't keep publishing into dead shards.
    pub fn unregister_shard_cells(&self, cells: &[Arc<SwapCell<ModelSnapshot>>]) {
        let mut registered = self.shard_cells.lock().unwrap();
        registered.retain(|c| !cells.iter().any(|dead| Arc::ptr_eq(c, dead)));
    }

    /// Number of shard cells currently registered (test/introspection).
    pub fn shard_cell_count(&self) -> usize {
        self.shard_cells.lock().unwrap().len()
    }

    /// Publishes `snapshot` into a single shard's cell, leaving the
    /// primary and all other shards untouched. This is the canary hook the
    /// scatter-gather tests use to create a deliberately version-skewed
    /// fleet; production swaps go through [`ModelManager::publish`].
    /// Returns `false` if `shard` is out of range.
    pub fn publish_to_shard(
        &self,
        shard: usize,
        snapshot: ModelSnapshot,
    ) -> Result<bool, ItemSpaceMismatch> {
        if snapshot.num_items() != self.num_items {
            return Err(ItemSpaceMismatch {
                serving: self.num_items,
                offered: snapshot.num_items(),
            });
        }
        let registered = self.shard_cells.lock().unwrap();
        match registered.get(shard) {
            Some(cell) => {
                cell.publish_arc(Arc::new(snapshot));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Items in the served catalogue (fixed across hot swaps).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Boots a manager straight from an artifact file.
    pub fn from_artifact_file(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let artifact = ModelArtifact::load_from(path)?;
        Ok(ModelManager::new(ModelSnapshot::from_artifact(&artifact)?))
    }

    /// The current snapshot (refcount bump; never copies the model).
    pub fn load(&self) -> Arc<ModelSnapshot> {
        self.current.load()
    }

    /// The version tag of the current snapshot.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// Publishes a new snapshot. In-flight requests keep the snapshot
    /// they already hold; new requests see the replacement immediately.
    /// One shared `Arc` fans out to the primary cell and every registered
    /// shard cell under the registration lock, so no two `publish` calls
    /// can interleave and leave shards on different versions. Rejects
    /// snapshots whose item space differs from the served catalogue — see
    /// [`ItemSpaceMismatch`].
    pub fn publish(&self, snapshot: ModelSnapshot) -> Result<(), ItemSpaceMismatch> {
        if snapshot.num_items() != self.num_items {
            return Err(ItemSpaceMismatch {
                serving: self.num_items,
                offered: snapshot.num_items(),
            });
        }
        let version = snapshot.version;
        let shared = Arc::new(snapshot);
        {
            let registered = self.shard_cells.lock().unwrap();
            self.current.publish_arc(Arc::clone(&shared));
            for cell in registered.iter() {
                cell.publish_arc(Arc::clone(&shared));
            }
        }
        atnn_obs::emit(&atnn_obs::Event::Swap { version });
        Ok(())
    }

    /// Reloads from an artifact file and publishes the result. The build
    /// (file read, checksum, dataset regeneration, weight load) happens
    /// before the swap, so readers never observe a half-loaded model; an
    /// artifact over a different catalogue is rejected without swapping.
    /// Returns the published version.
    pub fn reload_from(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        let artifact = ModelArtifact::load_from(path)?;
        let snapshot = ModelSnapshot::from_artifact(&artifact)?;
        let version = snapshot.version;
        self.publish(snapshot).map_err(|_| {
            ArtifactError::Corrupt("artifact item space differs from the served catalogue")
        })?;
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_core::{AtnnConfig, CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallConfig;

    fn tiny_snapshot(version: u64, epochs: usize) -> (ModelSnapshot, TmallConfig) {
        let cfg = TmallConfig {
            num_users: 60,
            num_items: 120,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(cfg.clone());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        if epochs > 0 {
            let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
            CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        }
        let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        (ModelSnapshot::new(version, data, model, index), cfg)
    }

    #[test]
    fn score_paths_match_direct_model_calls() {
        let (snap, _) = tiny_snapshot(1, 1);
        let items: Vec<u32> = (0..20).collect();
        let cold = snap.score_cold(&items);
        let direct = snap.index.score_new_arrivals(&snap.model, &snap.data, &items);
        assert_eq!(cold, direct);

        let warm = snap.score_warm(&items);
        let profile = snap.data.encode_item_profiles(&items);
        let stats = snap.data.encode_item_stats(&items);
        let vecs = snap.model.item_vectors_full(&profile, &stats);
        let expected: Vec<f32> =
            (0..vecs.rows()).map(|i| snap.index.score_vector(vecs.row(i))).collect();
        assert_eq!(warm, expected);
    }

    #[test]
    fn topk_dots_matches_the_brute_force_oracle() {
        let (snap, _) = tiny_snapshot(1, 1);
        let oracle = atnn_ann::BruteForce::new(Arc::clone(snap.cold_vecs()));
        let full = snap.ann().nlist();
        let got = snap.topk_dots(10, full, &|_| true);
        assert_eq!(got, oracle.topk(snap.index.mean_user_vec(), 10, 0));
        // Sigmoid-at-the-front: converting a winner's dot must reproduce
        // the scoring path's probability bit for bit.
        for &(id, d) in &got {
            assert_eq!(snap.index.score_from_dot(d), snap.score_cold(&[id])[0]);
        }
        assert!(snapshot_build_gauge().get() > 0.0, "build cost gauge is set");
    }

    #[test]
    fn publish_swaps_while_held_snapshots_stay_valid() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 1);
        let manager = ModelManager::new(snap_a);
        let held = manager.load();
        assert_eq!(held.version, 1);
        manager.publish(snap_b).unwrap();
        assert_eq!(manager.version(), 2);
        assert_eq!(held.version, 1, "held snapshot unaffected by publish");
    }

    #[test]
    fn publish_rejects_a_different_item_space() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let manager = ModelManager::new(snap_a);
        assert_eq!(manager.num_items(), 120);

        let shrunk_cfg = TmallConfig {
            num_users: 60,
            num_items: 80,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(shrunk_cfg);
        let model = Atnn::new(AtnnConfig::scaled(), &data);
        let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        let shrunk = ModelSnapshot::new(2, data, model, index);

        let err = manager.publish(shrunk).unwrap_err();
        assert_eq!(err, ItemSpaceMismatch { serving: 120, offered: 80 });
        assert_eq!(manager.version(), 1, "rejected publish must not swap");
    }

    #[test]
    fn publish_fans_out_to_registered_shard_cells() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 0);
        let manager = ModelManager::new(snap_a);
        let cell_0 = manager.register_shard_cell();
        let cell_1 = manager.register_shard_cell();
        assert_eq!(manager.shard_cell_count(), 2);
        assert_eq!(cell_0.load().version, 1, "registration seeds the current snapshot");

        manager.publish(snap_b).unwrap();
        let (s0, s1) = (cell_0.load(), cell_1.load());
        assert_eq!((s0.version, s1.version), (2, 2));
        assert!(Arc::ptr_eq(&s0, &s1), "shards share one copy of the snapshot");
        assert!(Arc::ptr_eq(&s0, &manager.load()), "and so does the primary cell");

        manager.unregister_shard_cells(&[Arc::clone(&cell_0), Arc::clone(&cell_1)]);
        assert_eq!(manager.shard_cell_count(), 0);
        let (snap_c, _) = tiny_snapshot(3, 0);
        manager.publish(snap_c).unwrap();
        assert_eq!(cell_0.load().version, 2, "unregistered cells stop receiving publishes");
    }

    #[test]
    fn publish_to_shard_skews_one_cell_until_the_next_full_publish() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 0);
        let (snap_c, _) = tiny_snapshot(3, 0);
        let manager = ModelManager::new(snap_a);
        let cell_0 = manager.register_shard_cell();
        let cell_1 = manager.register_shard_cell();

        assert!(manager.publish_to_shard(1, snap_b).unwrap());
        assert_eq!(cell_0.load().version, 1);
        assert_eq!(cell_1.load().version, 2, "canary shard runs ahead");
        assert_eq!(manager.version(), 1, "primary cell untouched");
        assert!(!manager.publish_to_shard(9, tiny_snapshot(4, 0).0).unwrap());

        manager.publish(snap_c).unwrap();
        assert_eq!(cell_0.load().version, 3);
        assert_eq!(cell_1.load().version, 3, "full publish heals the skew");
    }

    #[test]
    fn artifact_reload_publishes_identical_scores() {
        let (snap, data_cfg) = tiny_snapshot(7, 1);
        let items: Vec<u32> = (0..15).collect();
        let expected = snap.score_cold(&items);

        let artifact = ModelArtifact::capture(&snap.model, &data_cfg, &snap.index, 8);
        let path =
            std::env::temp_dir().join(format!("atnn_manager_test_{}.atnn", std::process::id()));
        artifact.save_to(&path).unwrap();

        let manager = ModelManager::new(snap);
        let version = manager.reload_from(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(version, 8);
        assert_eq!(manager.load().score_cold(&items), expected, "reload must be bit-identical");
    }
}
