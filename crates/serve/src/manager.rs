//! The model manager: versioned snapshots behind an atomic swap.
//!
//! A [`ModelSnapshot`] bundles everything one request needs — the model,
//! the feature store, and the frozen O(1) index — so a request that grabbed
//! a snapshot is immune to concurrent republishes: it scores against one
//! consistent model version from start to finish. The manager holds the
//! current snapshot in a [`SwapCell`]; `load` is a refcount bump,
//! `publish` is a pointer swap, and a background reload builds the new
//! snapshot entirely off to the side before publishing, so readers never
//! block behind artifact IO or weight loading.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use atnn_ann::{IvfFlatIndex, IvfParams, Retriever};
use atnn_core::{ArtifactError, Atnn, ModelArtifact, PopularityIndex, QuantTables};
use atnn_data::tmall::TmallDataset;
use atnn_obs::{Counter, Gauge};
use atnn_tensor::{CowMatrix, CowQuantMatrix, Matrix, PreparedQuery, QuantizedMatrix, SwapCell};

/// Wall-clock seconds the most recent snapshot build spent precomputing
/// embedding caches and the ANN index, full or delta (set by
/// [`ModelSnapshot::new`], [`ModelSnapshot::from_artifact`], and
/// [`ModelSnapshot::delta_from`]).
static SNAPSHOT_BUILD_SECONDS: Gauge = Gauge::new();

/// `atnn.serve.snapshot_build_full_seconds` — wall-clock cost of the most
/// recent *full* snapshot build (whole-catalogue re-embed + index build).
static SNAPSHOT_BUILD_FULL_SECONDS: Gauge = Gauge::new();

/// `atnn.serve.snapshot_build_delta_seconds` — wall-clock cost of the most
/// recent *delta* snapshot build (changed rows only).
static SNAPSHOT_BUILD_DELTA_SECONDS: Gauge = Gauge::new();

/// `atnn.serve.publishes_full` — full snapshot builds since process start.
static PUBLISHES_FULL: Counter = Counter::new();

/// `atnn.serve.publishes_delta` — delta snapshot builds since process start.
static PUBLISHES_DELTA: Counter = Counter::new();

/// `atnn.serve.snapshot_bytes` — resident bytes of the most recently
/// built snapshot's embedding tables *as served* (int8 codes + affine
/// parameters under [`Precision::Int8`]; raw f32 under
/// [`Precision::F32`]).
static SNAPSHOT_BYTES: Gauge = Gauge::new();

/// `atnn.serve.snapshot_f32_bytes` — what the same tables would occupy
/// uncompressed; the ratio against [`SNAPSHOT_BYTES`] is the memory win.
static SNAPSHOT_F32_BYTES: Gauge = Gauge::new();

/// The gauge tracking the last snapshot build's wall-clock cost.
pub fn snapshot_build_gauge() -> &'static Gauge {
    &SNAPSHOT_BUILD_SECONDS
}

/// The `atnn.serve.snapshot_bytes` gauge: embedding-table bytes of the
/// most recently built snapshot, in its served representation.
pub fn snapshot_bytes_gauge() -> &'static Gauge {
    &SNAPSHOT_BYTES
}

/// The `atnn.serve.snapshot_f32_bytes` gauge: the f32 footprint the same
/// tables would need.
pub fn snapshot_f32_bytes_gauge() -> &'static Gauge {
    &SNAPSHOT_F32_BYTES
}

/// The gauge tracking the last *full* snapshot build's wall-clock cost.
pub fn snapshot_build_full_gauge() -> &'static Gauge {
    &SNAPSHOT_BUILD_FULL_SECONDS
}

/// The gauge tracking the last *delta* snapshot build's wall-clock cost.
pub fn snapshot_build_delta_gauge() -> &'static Gauge {
    &SNAPSHOT_BUILD_DELTA_SECONDS
}

/// Count of full snapshot builds since process start.
pub fn publishes_full_counter() -> &'static Counter {
    &PUBLISHES_FULL
}

/// Count of delta snapshot builds since process start.
pub fn publishes_delta_counter() -> &'static Counter {
    &PUBLISHES_DELTA
}

/// Numeric representation of a snapshot's cached embedding tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Raw f32 rows; scoring is bit-identical to per-request forward
    /// passes. The default.
    #[default]
    F32,
    /// Int8 rows with per-row affine codes over a shared anchor
    /// (~3.7–3.9× smaller at paper dims). Scoring is *toleranced* —
    /// within the quantization error bound of the f32 path — not
    /// bit-identical.
    Int8,
}

/// The cached item-tower tables in one of the two representations.
///
/// Both representations are chunked copy-on-write tables
/// ([`CowMatrix`]/[`CowQuantMatrix`]): rows live in `Arc`'d blocks of
/// [`atnn_tensor::COW_CHUNK_ROWS`] rows, so a delta publish clones only
/// the chunks holding changed rows and shares the rest with the previous
/// snapshot by refcount. Under [`Precision::Int8`] the f32 matrices are
/// dropped after the ANN index is built — only the quantized codes stay
/// resident — and the mean-user-vector query is pre-quantized once per
/// table (the cold and warm tables have different anchors, so each needs
/// its own [`PreparedQuery`]).
#[derive(Debug)]
enum Tables {
    F32 {
        cold: Arc<CowMatrix>,
        warm: Arc<CowMatrix>,
    },
    Int8 {
        cold: Arc<CowQuantMatrix>,
        warm: Arc<CowQuantMatrix>,
        cold_query: PreparedQuery,
        warm_query: PreparedQuery,
    },
}

impl Tables {
    /// Bytes the tables occupy as served.
    fn storage_bytes(&self) -> usize {
        match self {
            Tables::F32 { cold, warm } => (cold.len() + warm.len()) * 4,
            Tables::Int8 { cold, warm, .. } => cold.storage_bytes() + warm.storage_bytes(),
        }
    }

    /// Bytes the same tables would occupy as raw f32.
    fn f32_bytes(&self) -> usize {
        match self {
            Tables::F32 { cold, warm } => (cold.len() + warm.len()) * 4,
            Tables::Int8 { cold, warm, .. } => cold.f32_bytes() + warm.f32_bytes(),
        }
    }
}

/// One immutable, consistently-versioned serving state.
///
/// Construction precomputes both item-tower embedding matrices once per
/// publish — the item side depends only on the item, so scoring becomes a
/// cached-row dot instead of a per-request forward pass — and builds the
/// IVF-flat retrieval index over the cold (new-arrival) embeddings. The
/// cached paths are bit-identical to re-running the towers per request:
/// the GEMM kernel uses a single accumulator per output element with
/// strictly ascending `k`, so forward passes are row-wise invariant and
/// batch-size invariant (pinned by `score_paths_match_direct_model_calls`).
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Publisher's version tag.
    pub version: u64,
    /// The feature store items are encoded from. Shared by refcount so a
    /// delta publish over the same catalogue costs no dataset copy.
    pub data: Arc<TmallDataset>,
    /// The trained model. Shared so a delta publish can hand the same
    /// weights to the next snapshot without a clone.
    pub model: Arc<Atnn>,
    /// The frozen mean-user-vector index.
    pub index: PopularityIndex,
    /// Cached item-tower tables: generator (cold-path) and full-encoder
    /// (warm-path) vectors, row id == item id, in the publish-time
    /// precision. Item statistics are frozen per snapshot
    /// (`RecordInteractions` feeds the policy router, not the feature
    /// store), so these cannot go stale.
    tables: Tables,
    /// IVF-flat index over the cold table — catalogue-wide TopK retrieval
    /// shares the new-arrival ranking semantics of the O(1) index.
    ann: IvfFlatIndex,
    /// Wall-clock cost of cache + index construction, in seconds.
    build_seconds: f64,
}

/// Batch width for server-side forward passes.
const BATCH: usize = 512;

/// Cumulative assignment-drift fraction past which a delta publish
/// re-runs the k-means build instead of keeping the frozen centroids.
/// Retrieval stays *exact at full probe* under any drift (re-ranking is
/// over true dots); drift only erodes pruned-probe recall, so the budget
/// trades rebuild cost against how far the centroids may lag the data.
pub const DRIFT_REBUILD_FRACTION: f64 = 0.25;

/// What a delta publish did, returned alongside the snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaReport {
    /// Distinct changed item ids re-embedded and re-quantized.
    pub changed: usize,
    /// Changed vectors whose nearest frozen centroid moved (inverted-list
    /// remove + re-insert operations performed).
    pub moved_lists: usize,
    /// Whether cumulative drift crossed [`DRIFT_REBUILD_FRACTION`] and
    /// forced a full k-means rebuild over the updated table.
    pub index_rebuilt: bool,
    /// Wall-clock cost of the delta build, in seconds.
    pub build_seconds: f64,
}

/// Rejected delta publish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaError {
    /// The previous snapshot covers a different item space than the
    /// served catalogue (only reachable through manager-level publishes).
    ItemSpace(ItemSpaceMismatch),
    /// A changed id is outside the catalogue.
    IdOutOfRange {
        /// The offending id.
        id: u32,
        /// Items in the catalogue.
        num_items: usize,
    },
    /// The replacement model embeds into a different dimension than the
    /// tables being patched.
    DimMismatch {
        /// The previous snapshot's embedding dimension.
        prev: usize,
        /// The replacement model's embedding dimension.
        offered: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::ItemSpace(e) => write!(f, "delta publish rejected: {e}"),
            DeltaError::IdOutOfRange { id, num_items } => {
                write!(f, "delta publish rejected: changed id {id} >= {num_items} items")
            }
            DeltaError::DimMismatch { prev, offered } => {
                write!(f, "delta publish rejected: model dim {offered} != table dim {prev}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl ModelSnapshot {
    /// Builds an f32 snapshot: precomputes both embedding caches and the
    /// ANN index, then records the build cost in [`snapshot_build_gauge`].
    pub fn new(version: u64, data: TmallDataset, model: Atnn, index: PopularityIndex) -> Self {
        Self::assemble(version, Arc::new(data), Arc::new(model), index, None, Precision::F32, None)
    }

    /// Builds a snapshot in the requested table precision. Under
    /// [`Precision::Int8`] the item tables are quantized after the
    /// forward passes and the f32 copies are dropped once the ANN index
    /// (built on the exact vectors) has been re-pointed at the codes.
    pub fn new_with_precision(
        version: u64,
        data: TmallDataset,
        model: Atnn,
        index: PopularityIndex,
        precision: Precision,
    ) -> Self {
        Self::assemble(version, Arc::new(data), Arc::new(model), index, None, precision, None)
    }

    /// [`ModelSnapshot::new_with_precision`] over already-shared dataset
    /// and model handles — the full-rebuild baseline a delta publish is
    /// compared against can reuse the previous snapshot's `Arc`s instead
    /// of cloning a catalogue.
    pub fn new_shared(
        version: u64,
        data: Arc<TmallDataset>,
        model: Arc<Atnn>,
        index: PopularityIndex,
        precision: Precision,
    ) -> Self {
        Self::assemble(version, data, model, index, None, precision, None)
    }

    /// Rebuilds a snapshot from a decoded artifact, adopting its persisted
    /// ANN index when present and valid (otherwise building at load). An
    /// artifact carrying publish-time quantized tables comes back as an
    /// [`Precision::Int8`] snapshot serving the publisher's exact codes;
    /// anything older (or unquantized) loads as f32.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ArtifactError> {
        let precision = if artifact.quant().is_some() { Precision::Int8 } else { Precision::F32 };
        Self::from_artifact_with_precision(artifact, precision)
    }

    /// Rebuilds a snapshot from an artifact at an explicit precision —
    /// e.g. quantized serving from a plain f32 artifact (the tables are
    /// quantized at load, deterministically identical to publish-time
    /// quantization of the same weights).
    pub fn from_artifact_with_precision(
        artifact: &ModelArtifact,
        precision: Precision,
    ) -> Result<Self, ArtifactError> {
        let live = artifact.instantiate()?;
        let quant = match precision {
            Precision::Int8 => artifact.quant(),
            Precision::F32 => None,
        };
        Ok(Self::assemble(
            live.version,
            Arc::new(live.data),
            Arc::new(live.model),
            live.index,
            artifact.ann(),
            precision,
            quant,
        ))
    }

    fn assemble(
        version: u64,
        data: Arc<TmallDataset>,
        model: Arc<Atnn>,
        index: PopularityIndex,
        ann_blob: Option<&[u8]>,
        precision: Precision,
        quant: Option<&QuantTables>,
    ) -> Self {
        let started = Instant::now();
        let n = data.num_items();
        let dim = model.config().vec_dim;
        let mut cold = Matrix::zeros(n, dim);
        let mut warm = Matrix::zeros(n, dim);
        let ids: Vec<u32> = (0..n as u32).collect();
        for (c, chunk) in ids.chunks(BATCH).enumerate() {
            let profile = data.encode_item_profiles(chunk);
            let stats = data.encode_item_stats(chunk);
            let cold_chunk = model.item_vectors_generated(&profile);
            let warm_chunk = model.item_vectors_full(&profile, &stats);
            for i in 0..chunk.len() {
                cold.row_mut(c * BATCH + i).copy_from_slice(cold_chunk.row(i));
                warm.row_mut(c * BATCH + i).copy_from_slice(warm_chunk.row(i));
            }
        }
        let cold_vecs = Arc::new(cold);
        let warm_vecs = Arc::new(warm);
        let (tables, ann) = match precision {
            Precision::F32 => {
                // A persisted index is adopted only if it decodes cleanly
                // against the freshly computed embeddings; anything else
                // falls back to a build-at-load. The build is
                // deterministic, so both routes yield bit-identical
                // retrieval.
                let cold_cow = Arc::new(CowMatrix::from_matrix(&cold_vecs));
                let warm_cow = Arc::new(CowMatrix::from_matrix(&warm_vecs));
                // The index is built (or decoded) over the contiguous
                // vectors, then re-pointed at the chunked table so delta
                // publishes can share unmodified chunks; row bytes are
                // identical either way, so scoring is unchanged.
                let ann = ann_blob
                    .and_then(|blob| IvfFlatIndex::decode(blob, Arc::clone(&cold_vecs)).ok())
                    .unwrap_or_else(|| {
                        IvfFlatIndex::build(Arc::clone(&cold_vecs), IvfParams::for_items(n))
                    })
                    .with_pool(Arc::clone(&cold_cow))
                    .expect("chunked table mirrors the embeddings it was built from");
                (Tables::F32 { cold: cold_cow, warm: warm_cow }, ann)
            }
            Precision::Int8 => {
                // Persisted tables are adopted only at the right shape;
                // otherwise quantize the vectors just computed (same
                // deterministic result when the weights match).
                let adopt =
                    |t: &QuantizedMatrix| (t.rows() == n && t.cols() == dim).then(|| t.clone());
                let cold_q = quant
                    .and_then(|q| adopt(&q.cold))
                    .unwrap_or_else(|| QuantizedMatrix::from_matrix(&cold_vecs));
                let warm_q = quant
                    .and_then(|q| adopt(&q.warm))
                    .unwrap_or_else(|| QuantizedMatrix::from_matrix(&warm_vecs));
                let cold_q = Arc::new(CowQuantMatrix::from_quantized(&cold_q));
                let warm_q = Arc::new(CowQuantMatrix::from_quantized(&warm_q));
                // The IVF structure (k-means centroids, inverted lists) is
                // built or decoded over the exact f32 vectors, then
                // re-pointed at the int8 codes; the f32 pool is dropped
                // with `cold_vecs`/`warm_vecs` at the end of this scope.
                let ann = ann_blob
                    .and_then(|blob| IvfFlatIndex::decode(blob, Arc::clone(&cold_vecs)).ok())
                    .unwrap_or_else(|| {
                        IvfFlatIndex::build(Arc::clone(&cold_vecs), IvfParams::for_items(n))
                    })
                    .with_pool(Arc::clone(&cold_q))
                    .expect("quantized pool matches the embeddings it was quantized from");
                let cold_query = cold_q.prepare(index.mean_user_vec());
                let warm_query = warm_q.prepare(index.mean_user_vec());
                (Tables::Int8 { cold: cold_q, warm: warm_q, cold_query, warm_query }, ann)
            }
        };
        let build_seconds = started.elapsed().as_secs_f64();
        SNAPSHOT_BUILD_SECONDS.set(build_seconds);
        SNAPSHOT_BUILD_FULL_SECONDS.set(build_seconds);
        PUBLISHES_FULL.incr();
        SNAPSHOT_BYTES.set(tables.storage_bytes() as f64);
        SNAPSHOT_F32_BYTES.set(tables.f32_bytes() as f64);
        ModelSnapshot { version, data, model, index, tables, ann, build_seconds }
    }

    /// Builds a snapshot *incrementally* from `prev`: only the rows in
    /// `changed` are re-embedded (one batched pass over the delta), the
    /// untouched rows are shared with `prev` chunk-by-chunk via
    /// copy-on-write, and the IVF index re-assigns only the changed
    /// vectors under frozen centroids. Cost is proportional to
    /// `changed.len()`, not catalogue size.
    ///
    /// Exactness contract (pinned by the delta-parity proptests): the
    /// result is bit-identical (f32) / code-identical (int8) to a
    /// frozen-structure full recompute — same k-means centroids, same
    /// quantization anchor — whose inputs differ from `prev` only on
    /// `changed`. Re-embedding is row-local (the GEMM is batch-invariant),
    /// re-quantization is row-local (PR 8's anchored per-row affine
    /// codes), and frozen-centroid re-assignment of an unchanged row
    /// re-derives its existing list, so skipping unchanged rows changes
    /// nothing.
    ///
    /// Frozen centroids drift away from the data as deltas accumulate;
    /// once the cumulative fraction of moved assignments exceeds
    /// [`DRIFT_REBUILD_FRACTION`], the k-means build re-runs over the full
    /// updated table (still cheaper than a full publish — no re-embed).
    pub fn delta_from(
        prev: &ModelSnapshot,
        version: u64,
        model: Arc<Atnn>,
        index: PopularityIndex,
        changed: &[u32],
    ) -> Result<(Self, DeltaReport), DeltaError> {
        let started = Instant::now();
        let n = prev.num_items();
        let dim = model.config().vec_dim;
        let prev_dim = prev.model.config().vec_dim;
        if dim != prev_dim {
            return Err(DeltaError::DimMismatch { prev: prev_dim, offered: dim });
        }
        let mut ids: Vec<u32> = changed.to_vec();
        ids.sort_unstable();
        ids.dedup();
        if let Some(&id) = ids.iter().find(|&&id| id as usize >= n) {
            return Err(DeltaError::IdOutOfRange { id, num_items: n });
        }

        // One batched re-embed over the changed ids only. Forward passes
        // are row-wise and batch-size invariant (single accumulator per
        // output element, ascending k), so each row comes out bit-equal
        // to its position in a whole-catalogue build.
        let mut delta_cold = Matrix::zeros(ids.len(), dim);
        let mut delta_warm = Matrix::zeros(ids.len(), dim);
        for (c, chunk) in ids.chunks(BATCH).enumerate() {
            let profile = prev.data.encode_item_profiles(chunk);
            let stats = prev.data.encode_item_stats(chunk);
            let cold_chunk = model.item_vectors_generated(&profile);
            let warm_chunk = model.item_vectors_full(&profile, &stats);
            for i in 0..chunk.len() {
                delta_cold.row_mut(c * BATCH + i).copy_from_slice(cold_chunk.row(i));
                delta_warm.row_mut(c * BATCH + i).copy_from_slice(warm_chunk.row(i));
            }
        }

        // Frozen-centroid re-assignment of the changed vectors, tracked
        // against the drift budget. The index clone is cheap relative to
        // a build: centroids + lists, no k-means.
        let mut ann = prev.ann.clone();
        let moved = ann.reassign(&ids, &delta_cold);
        let rebuild = ann.drift_fraction() > DRIFT_REBUILD_FRACTION;

        let (tables, ann) = match &prev.tables {
            Tables::F32 { cold, warm } => {
                let mut new_cold = (**cold).clone();
                let mut new_warm = (**warm).clone();
                new_cold.update_rows(&ids, &delta_cold);
                new_warm.update_rows(&ids, &delta_warm);
                let new_cold = Arc::new(new_cold);
                let ann = if rebuild {
                    IvfFlatIndex::build(Arc::new(new_cold.to_matrix()), *prev.ann.params())
                } else {
                    ann
                }
                .with_pool(Arc::clone(&new_cold))
                .expect("updated table keeps the indexed shape");
                (Tables::F32 { cold: new_cold, warm: Arc::new(new_warm) }, ann)
            }
            Tables::Int8 { cold, warm, .. } => {
                // Row-local re-quantization: each row's codes depend only
                // on the row and the (frozen) shared anchor, so changed
                // rows re-quantize in place, exactly.
                let mut new_cold = (**cold).clone();
                let mut new_warm = (**warm).clone();
                new_cold.requantize_rows(&ids, &delta_cold);
                new_warm.requantize_rows(&ids, &delta_warm);
                let new_cold = Arc::new(new_cold);
                let new_warm = Arc::new(new_warm);
                let ann = if rebuild {
                    // Re-train k-means over the codes' dequantized form —
                    // the only f32 view that exists once the tables are
                    // int8 — then serve re-ranks from the codes as usual.
                    IvfFlatIndex::build(Arc::new(new_cold.dequantize()), *prev.ann.params())
                } else {
                    ann
                }
                .with_pool(Arc::clone(&new_cold))
                .expect("updated codes keep the indexed shape");
                let cold_query = new_cold.prepare(index.mean_user_vec());
                let warm_query = new_warm.prepare(index.mean_user_vec());
                (Tables::Int8 { cold: new_cold, warm: new_warm, cold_query, warm_query }, ann)
            }
        };

        let build_seconds = started.elapsed().as_secs_f64();
        SNAPSHOT_BUILD_SECONDS.set(build_seconds);
        SNAPSHOT_BUILD_DELTA_SECONDS.set(build_seconds);
        PUBLISHES_DELTA.incr();
        SNAPSHOT_BYTES.set(tables.storage_bytes() as f64);
        SNAPSHOT_F32_BYTES.set(tables.f32_bytes() as f64);
        let report = DeltaReport {
            changed: ids.len(),
            moved_lists: moved,
            index_rebuilt: rebuild,
            build_seconds,
        };
        let snapshot = ModelSnapshot {
            version,
            data: Arc::clone(&prev.data),
            model,
            index,
            tables,
            ann,
            build_seconds,
        };
        Ok((snapshot, report))
    }

    /// Highest item id this snapshot can score.
    pub fn num_items(&self) -> usize {
        self.data.num_items()
    }

    /// Cold path: the cached generator vector's O(1) dot against the
    /// stored mean user vector (int8 kernel under [`Precision::Int8`]).
    pub fn score_cold(&self, items: &[u32]) -> Vec<f32> {
        match &self.tables {
            Tables::F32 { cold, .. } => {
                items.iter().map(|&i| self.index.score_vector(cold.row(i as usize))).collect()
            }
            Tables::Int8 { cold, cold_query, .. } => items
                .iter()
                .map(|&i| self.index.score_from_dot(cold.dot_prepared(i as usize, cold_query)))
                .collect(),
        }
    }

    /// Warm path: the cached full-encoder vector's dot against the same
    /// mean user vector.
    pub fn score_warm(&self, items: &[u32]) -> Vec<f32> {
        match &self.tables {
            Tables::F32 { warm, .. } => {
                items.iter().map(|&i| self.index.score_vector(warm.row(i as usize))).collect()
            }
            Tables::Int8 { warm, warm_query, .. } => items
                .iter()
                .map(|&i| self.index.score_from_dot(warm.dot_prepared(i as usize, warm_query)))
                .collect(),
        }
    }

    /// Catalogue-wide top-`k` retrieval in **raw dot space** (best first,
    /// ties by ascending id), restricted to ids `keep` accepts. Callers
    /// convert winners to probabilities with
    /// [`PopularityIndex::score_from_dot`] — the sigmoid is monotone, so
    /// converting after selection preserves the exact dot-space order
    /// (converting before could collapse distinct dots to equal `f32`
    /// probabilities and flip id tie-breaks).
    pub fn topk_dots(
        &self,
        k: usize,
        nprobe: usize,
        keep: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f32)> {
        self.ann.topk_filtered(self.index.mean_user_vec(), k, nprobe, keep)
    }

    /// The retrieval index built over the cold embeddings.
    pub fn ann(&self) -> &IvfFlatIndex {
        &self.ann
    }

    /// The cached cold-path (generator) embedding table, or `None` on a
    /// [`Precision::Int8`] snapshot — the f32 rows are dropped after
    /// quantization; use [`ModelSnapshot::quant_tables`] there instead.
    pub fn cold_vecs(&self) -> Option<&Arc<CowMatrix>> {
        match &self.tables {
            Tables::F32 { cold, .. } => Some(cold),
            Tables::Int8 { .. } => None,
        }
    }

    /// The cached warm-path (full-encoder) embedding table; `None` on a
    /// [`Precision::Int8`] snapshot, like [`ModelSnapshot::cold_vecs`].
    pub fn warm_vecs(&self) -> Option<&Arc<CowMatrix>> {
        match &self.tables {
            Tables::F32 { warm, .. } => Some(warm),
            Tables::Int8 { .. } => None,
        }
    }

    /// The quantized cold/warm tables of an [`Precision::Int8`] snapshot
    /// (`None` for f32 snapshots). Used to persist publish-time codes
    /// into an artifact so replicas adopt them bit-identically.
    pub fn quant_tables(&self) -> Option<(&Arc<CowQuantMatrix>, &Arc<CowQuantMatrix>)> {
        match &self.tables {
            Tables::F32 { .. } => None,
            Tables::Int8 { cold, warm, .. } => Some((cold, warm)),
        }
    }

    /// The numeric representation this snapshot serves from.
    pub fn precision(&self) -> Precision {
        match &self.tables {
            Tables::F32 { .. } => Precision::F32,
            Tables::Int8 { .. } => Precision::Int8,
        }
    }

    /// Bytes the cached item tables occupy as served.
    pub fn snapshot_bytes(&self) -> u64 {
        self.tables.storage_bytes() as u64
    }

    /// Bytes the same tables would occupy as raw f32.
    pub fn snapshot_f32_bytes(&self) -> u64 {
        self.tables.f32_bytes() as u64
    }

    /// Serialized form of the ANN index, for persisting into an artifact.
    pub fn encoded_ann(&self) -> Vec<u8> {
        self.ann.encode()
    }

    /// Wall-clock seconds this snapshot spent in cache + index builds.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

/// Rejected publish: the replacement snapshot covers a different item
/// space than the catalogue being served.
///
/// The server's policy router and request validation are sized to the boot
/// snapshot, so a hot swap must be a retrained model over the same
/// catalogue (the paper's periodic-retrain setup). A snapshot with fewer
/// items would let already-validated ids reach a forward pass that cannot
/// score them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemSpaceMismatch {
    /// Items in the catalogue being served.
    pub serving: usize,
    /// Items in the rejected snapshot.
    pub offered: usize,
}

impl std::fmt::Display for ItemSpaceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot covers {} items but the served catalogue has {}",
            self.offered, self.serving
        )
    }
}

impl std::error::Error for ItemSpaceMismatch {}

/// Holds the current [`ModelSnapshot`] and swaps in replacements.
///
/// A sharded server registers one extra [`SwapCell`] per shard; `publish`
/// then fans a single `Arc` of the new snapshot out to the primary cell
/// and every shard cell, so all shards flip to the new version together
/// and share one copy of the weights.
#[derive(Debug)]
pub struct ModelManager {
    current: SwapCell<ModelSnapshot>,
    /// Shard-owned cells `publish` fans out to. Guarded by a mutex only
    /// on the (rare) publish/register path; shard reads go through their
    /// own `Arc<SwapCell>` clone, never through this list.
    shard_cells: Mutex<Vec<Arc<SwapCell<ModelSnapshot>>>>,
    /// Item-space size fixed at construction; every published snapshot
    /// must match it.
    num_items: usize,
}

impl ModelManager {
    /// Starts serving `snapshot`. Its item space becomes the invariant all
    /// later publishes are checked against.
    pub fn new(snapshot: ModelSnapshot) -> Self {
        let num_items = snapshot.num_items();
        ModelManager {
            current: SwapCell::new(snapshot),
            shard_cells: Mutex::new(Vec::new()),
            num_items,
        }
    }

    /// Creates and registers a shard-owned snapshot cell, seeded with the
    /// current snapshot. Every later [`ModelManager::publish`] updates it
    /// atomically alongside the primary cell.
    pub fn register_shard_cell(&self) -> Arc<SwapCell<ModelSnapshot>> {
        let cell = Arc::new(SwapCell::from_arc(self.load()));
        self.shard_cells.lock().unwrap().push(Arc::clone(&cell));
        cell
    }

    /// Unregisters previously registered shard cells (matched by pointer
    /// identity). A server's shutdown path calls this so a manager reused
    /// across serve lifecycles doesn't keep publishing into dead shards.
    pub fn unregister_shard_cells(&self, cells: &[Arc<SwapCell<ModelSnapshot>>]) {
        let mut registered = self.shard_cells.lock().unwrap();
        registered.retain(|c| !cells.iter().any(|dead| Arc::ptr_eq(c, dead)));
    }

    /// Number of shard cells currently registered (test/introspection).
    pub fn shard_cell_count(&self) -> usize {
        self.shard_cells.lock().unwrap().len()
    }

    /// Publishes `snapshot` into a single shard's cell, leaving the
    /// primary and all other shards untouched. This is the canary hook the
    /// scatter-gather tests use to create a deliberately version-skewed
    /// fleet; production swaps go through [`ModelManager::publish`].
    /// Returns `false` if `shard` is out of range.
    pub fn publish_to_shard(
        &self,
        shard: usize,
        snapshot: ModelSnapshot,
    ) -> Result<bool, ItemSpaceMismatch> {
        if snapshot.num_items() != self.num_items {
            return Err(ItemSpaceMismatch {
                serving: self.num_items,
                offered: snapshot.num_items(),
            });
        }
        let registered = self.shard_cells.lock().unwrap();
        match registered.get(shard) {
            Some(cell) => {
                cell.publish_arc(Arc::new(snapshot));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Items in the served catalogue (fixed across hot swaps).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Boots a manager straight from an artifact file.
    pub fn from_artifact_file(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let artifact = ModelArtifact::load_from(path)?;
        Ok(ModelManager::new(ModelSnapshot::from_artifact(&artifact)?))
    }

    /// The current snapshot (refcount bump; never copies the model).
    pub fn load(&self) -> Arc<ModelSnapshot> {
        self.current.load()
    }

    /// The version tag of the current snapshot.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// Publishes a new snapshot. In-flight requests keep the snapshot
    /// they already hold; new requests see the replacement immediately.
    /// One shared `Arc` fans out to the primary cell and every registered
    /// shard cell under the registration lock, so no two `publish` calls
    /// can interleave and leave shards on different versions. Rejects
    /// snapshots whose item space differs from the served catalogue — see
    /// [`ItemSpaceMismatch`].
    pub fn publish(&self, snapshot: ModelSnapshot) -> Result<(), ItemSpaceMismatch> {
        if snapshot.num_items() != self.num_items {
            return Err(ItemSpaceMismatch {
                serving: self.num_items,
                offered: snapshot.num_items(),
            });
        }
        let version = snapshot.version;
        let shared = Arc::new(snapshot);
        {
            let registered = self.shard_cells.lock().unwrap();
            self.current.publish_arc(Arc::clone(&shared));
            for cell in registered.iter() {
                cell.publish_arc(Arc::clone(&shared));
            }
        }
        atnn_obs::emit(&atnn_obs::Event::Swap { version });
        Ok(())
    }

    /// Builds a delta snapshot from the *current* snapshot (see
    /// [`ModelSnapshot::delta_from`]) and publishes it fleet-wide. The
    /// build happens off to the side against the loaded snapshot, so
    /// readers never block; cost is proportional to `changed.len()`.
    pub fn publish_delta(
        &self,
        version: u64,
        model: Arc<Atnn>,
        index: PopularityIndex,
        changed: &[u32],
    ) -> Result<DeltaReport, DeltaError> {
        let prev = self.load();
        let (snapshot, report) = ModelSnapshot::delta_from(&prev, version, model, index, changed)?;
        self.publish(snapshot).map_err(DeltaError::ItemSpace)?;
        Ok(report)
    }

    /// Canary variant of [`ModelManager::publish_delta`]: the delta
    /// snapshot lands in a single shard's cell only (a delta snapshot is
    /// a plain [`ModelSnapshot`], so it rides the same canary hook as a
    /// full one). Returns `Ok(None)` if `shard` is out of range.
    pub fn publish_delta_to_shard(
        &self,
        shard: usize,
        version: u64,
        model: Arc<Atnn>,
        index: PopularityIndex,
        changed: &[u32],
    ) -> Result<Option<DeltaReport>, DeltaError> {
        let prev = self.load();
        let (snapshot, report) = ModelSnapshot::delta_from(&prev, version, model, index, changed)?;
        match self.publish_to_shard(shard, snapshot).map_err(DeltaError::ItemSpace)? {
            true => Ok(Some(report)),
            false => Ok(None),
        }
    }

    /// Reloads from an artifact file and publishes the result. The build
    /// (file read, checksum, dataset regeneration, weight load) happens
    /// before the swap, so readers never observe a half-loaded model; an
    /// artifact over a different catalogue is rejected without swapping.
    /// Returns the published version.
    pub fn reload_from(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        let artifact = ModelArtifact::load_from(path)?;
        let snapshot = ModelSnapshot::from_artifact(&artifact)?;
        let version = snapshot.version;
        self.publish(snapshot).map_err(|_| {
            ArtifactError::Corrupt("artifact item space differs from the served catalogue")
        })?;
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_core::{AtnnConfig, CtrTrainer, TrainOptions};
    use atnn_data::tmall::TmallConfig;

    fn tiny_snapshot(version: u64, epochs: usize) -> (ModelSnapshot, TmallConfig) {
        let cfg = TmallConfig {
            num_users: 60,
            num_items: 120,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(cfg.clone());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        if epochs > 0 {
            let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
            CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        }
        let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        (ModelSnapshot::new(version, data, model, index), cfg)
    }

    #[test]
    fn score_paths_match_direct_model_calls() {
        let (snap, _) = tiny_snapshot(1, 1);
        let items: Vec<u32> = (0..20).collect();
        let cold = snap.score_cold(&items);
        let direct = snap.index.score_new_arrivals(&snap.model, &snap.data, &items);
        assert_eq!(cold, direct);

        let warm = snap.score_warm(&items);
        let profile = snap.data.encode_item_profiles(&items);
        let stats = snap.data.encode_item_stats(&items);
        let vecs = snap.model.item_vectors_full(&profile, &stats);
        let expected: Vec<f32> =
            (0..vecs.rows()).map(|i| snap.index.score_vector(vecs.row(i))).collect();
        assert_eq!(warm, expected);
    }

    #[test]
    fn topk_dots_matches_the_brute_force_oracle() {
        let (snap, _) = tiny_snapshot(1, 1);
        let oracle = atnn_ann::BruteForce::new(Arc::clone(snap.cold_vecs().expect("f32 snapshot")));
        let full = snap.ann().nlist();
        let got = snap.topk_dots(10, full, &|_| true);
        assert_eq!(got, oracle.topk(snap.index.mean_user_vec(), 10, 0));
        // Sigmoid-at-the-front: converting a winner's dot must reproduce
        // the scoring path's probability bit for bit.
        for &(id, d) in &got {
            assert_eq!(snap.index.score_from_dot(d), snap.score_cold(&[id])[0]);
        }
        assert!(snapshot_build_gauge().get() > 0.0, "build cost gauge is set");
    }

    #[test]
    fn publish_swaps_while_held_snapshots_stay_valid() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 1);
        let manager = ModelManager::new(snap_a);
        let held = manager.load();
        assert_eq!(held.version, 1);
        manager.publish(snap_b).unwrap();
        assert_eq!(manager.version(), 2);
        assert_eq!(held.version, 1, "held snapshot unaffected by publish");
    }

    #[test]
    fn publish_rejects_a_different_item_space() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let manager = ModelManager::new(snap_a);
        assert_eq!(manager.num_items(), 120);

        let shrunk_cfg = TmallConfig {
            num_users: 60,
            num_items: 80,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(shrunk_cfg);
        let model = Atnn::new(AtnnConfig::scaled(), &data);
        let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        let shrunk = ModelSnapshot::new(2, data, model, index);

        let err = manager.publish(shrunk).unwrap_err();
        assert_eq!(err, ItemSpaceMismatch { serving: 120, offered: 80 });
        assert_eq!(manager.version(), 1, "rejected publish must not swap");
    }

    #[test]
    fn publish_fans_out_to_registered_shard_cells() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 0);
        let manager = ModelManager::new(snap_a);
        let cell_0 = manager.register_shard_cell();
        let cell_1 = manager.register_shard_cell();
        assert_eq!(manager.shard_cell_count(), 2);
        assert_eq!(cell_0.load().version, 1, "registration seeds the current snapshot");

        manager.publish(snap_b).unwrap();
        let (s0, s1) = (cell_0.load(), cell_1.load());
        assert_eq!((s0.version, s1.version), (2, 2));
        assert!(Arc::ptr_eq(&s0, &s1), "shards share one copy of the snapshot");
        assert!(Arc::ptr_eq(&s0, &manager.load()), "and so does the primary cell");

        manager.unregister_shard_cells(&[Arc::clone(&cell_0), Arc::clone(&cell_1)]);
        assert_eq!(manager.shard_cell_count(), 0);
        let (snap_c, _) = tiny_snapshot(3, 0);
        manager.publish(snap_c).unwrap();
        assert_eq!(cell_0.load().version, 2, "unregistered cells stop receiving publishes");
    }

    #[test]
    fn publish_to_shard_skews_one_cell_until_the_next_full_publish() {
        let (snap_a, _) = tiny_snapshot(1, 0);
        let (snap_b, _) = tiny_snapshot(2, 0);
        let (snap_c, _) = tiny_snapshot(3, 0);
        let manager = ModelManager::new(snap_a);
        let cell_0 = manager.register_shard_cell();
        let cell_1 = manager.register_shard_cell();

        assert!(manager.publish_to_shard(1, snap_b).unwrap());
        assert_eq!(cell_0.load().version, 1);
        assert_eq!(cell_1.load().version, 2, "canary shard runs ahead");
        assert_eq!(manager.version(), 1, "primary cell untouched");
        assert!(!manager.publish_to_shard(9, tiny_snapshot(4, 0).0).unwrap());

        manager.publish(snap_c).unwrap();
        assert_eq!(cell_0.load().version, 3);
        assert_eq!(cell_1.load().version, 3, "full publish heals the skew");
    }

    fn tiny_quantized_snapshot(version: u64, epochs: usize) -> (ModelSnapshot, TmallConfig) {
        let cfg = TmallConfig {
            num_users: 60,
            num_items: 120,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(cfg.clone());
        let mut model = Atnn::new(AtnnConfig::scaled(), &data);
        if epochs > 0 {
            let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
            CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
        }
        let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
        (ModelSnapshot::new_with_precision(version, data, model, index, Precision::Int8), cfg)
    }

    #[test]
    fn quantized_snapshot_scores_within_the_error_bound_and_shrinks_memory() {
        let (f32_snap, _) = tiny_snapshot(1, 1);
        let (q_snap, _) = tiny_quantized_snapshot(1, 1);
        assert_eq!(f32_snap.precision(), Precision::F32);
        assert_eq!(q_snap.precision(), Precision::Int8);
        assert!(q_snap.quant_tables().is_some());

        let items: Vec<u32> = (0..120).collect();
        for (path, exact, quant) in [
            ("cold", f32_snap.score_cold(&items), q_snap.score_cold(&items)),
            ("warm", f32_snap.score_warm(&items), q_snap.score_warm(&items)),
        ] {
            for (i, (e, q)) in exact.iter().zip(&quant).enumerate() {
                // Scores are sigmoids of small dots; the quantized dot is
                // within the per-row scale/2 · ‖query‖₁ bound, far inside
                // this tolerance for a trained tiny model.
                assert!((e - q).abs() < 5e-3, "{path} item {i}: f32 {e} vs int8 {q} drifted");
            }
        }

        // The served tables must be meaningfully smaller than their f32
        // form. dim = AtnnConfig::scaled().vec_dim (small), so the gate
        // here is loose; the 3.5× gate at paper dims lives in the bench.
        assert!(q_snap.snapshot_bytes() * 2 < q_snap.snapshot_f32_bytes());
        assert_eq!(q_snap.snapshot_f32_bytes(), f32_snap.snapshot_bytes());
        assert!(snapshot_bytes_gauge().get() > 0.0, "snapshot bytes gauge is set");
        assert!(snapshot_f32_bytes_gauge().get() > 0.0, "f32 bytes gauge is set");
    }

    #[test]
    fn quantized_topk_is_self_consistent_and_tracks_the_f32_oracle() {
        let (f32_snap, _) = tiny_snapshot(1, 1);
        let (q_snap, _) = tiny_quantized_snapshot(1, 1);
        let full = q_snap.ann().nlist();

        // Sigmoid-at-the-front still holds on the quantized path: a
        // winner's converted dot equals its scoring-path probability.
        let got = q_snap.topk_dots(10, full, &|_| true);
        for &(id, d) in &got {
            assert_eq!(q_snap.index.score_from_dot(d), q_snap.score_cold(&[id])[0]);
        }

        // Full-probe quantized retrieval recalls the f32 oracle's top-k
        // (same trained embeddings, int8 re-rank).
        let oracle = f32_snap.topk_dots(10, full, &|_| true);
        let oracle_ids: std::collections::HashSet<u32> = oracle.iter().map(|&(id, _)| id).collect();
        let hits = got.iter().filter(|(id, _)| oracle_ids.contains(id)).count();
        assert!(hits >= 9, "quantized top-10 recalled only {hits}/10 of the f32 oracle");
    }

    #[test]
    fn f32_table_accessors_are_none_on_a_quantized_snapshot() {
        let (q_snap, _) = tiny_quantized_snapshot(1, 0);
        assert!(q_snap.cold_vecs().is_none(), "int8 snapshot keeps no f32 cold pool");
        assert!(q_snap.warm_vecs().is_none(), "int8 snapshot keeps no f32 warm pool");

        let (snap, _) = tiny_snapshot(1, 0);
        let cold = snap.cold_vecs().expect("f32 snapshot exposes its cold table");
        let warm = snap.warm_vecs().expect("f32 snapshot exposes its warm table");
        assert_eq!((cold.rows(), warm.rows()), (120, 120));
        assert!(snap.quant_tables().is_none(), "and no quantized tables");
    }

    #[test]
    fn quantized_artifact_roundtrip_serves_identical_scores() {
        let (q_snap, data_cfg) = tiny_quantized_snapshot(9, 1);
        let items: Vec<u32> = (0..30).collect();
        let expected_cold = q_snap.score_cold(&items);
        let expected_warm = q_snap.score_warm(&items);
        let expected_top = q_snap.topk_dots(10, q_snap.ann().nlist(), &|_| true);

        let (cold, warm) = q_snap.quant_tables().expect("int8 snapshot");
        let artifact = ModelArtifact::capture(&q_snap.model, &data_cfg, &q_snap.index, 9)
            .with_ann(q_snap.encoded_ann().into())
            .with_quant(cold.to_quantized(), warm.to_quantized());
        let back = ModelArtifact::decode(artifact.encode()).unwrap();
        let reloaded = ModelSnapshot::from_artifact(&back).unwrap();

        assert_eq!(reloaded.precision(), Precision::Int8, "quant section implies int8 serving");
        assert_eq!(reloaded.score_cold(&items), expected_cold);
        assert_eq!(reloaded.score_warm(&items), expected_warm);
        assert_eq!(reloaded.topk_dots(10, reloaded.ann().nlist(), &|_| true), expected_top);
    }

    #[test]
    fn artifact_reload_publishes_identical_scores() {
        let (snap, data_cfg) = tiny_snapshot(7, 1);
        let items: Vec<u32> = (0..15).collect();
        let expected = snap.score_cold(&items);

        let artifact = ModelArtifact::capture(&snap.model, &data_cfg, &snap.index, 8);
        let path =
            std::env::temp_dir().join(format!("atnn_manager_test_{}.atnn", std::process::id()));
        artifact.save_to(&path).unwrap();

        let manager = ModelManager::new(snap);
        let version = manager.reload_from(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(version, 8);
        assert_eq!(manager.load().score_cold(&items), expected, "reload must be bit-identical");
    }

    /// A previous snapshot built from an untrained model plus a trained
    /// replacement model over the *same* catalogue — the delta-publish
    /// setting: new weights, unchanged item space.
    fn delta_fixture(precision: Precision) -> (ModelSnapshot, Arc<Atnn>) {
        let cfg = TmallConfig {
            num_users: 60,
            num_items: 120,
            num_interactions: 1_000,
            ..TmallConfig::tiny()
        };
        let data = TmallDataset::generate(cfg);
        let model_a = Atnn::new(AtnnConfig::scaled(), &data);
        let mut model_b = Atnn::new(AtnnConfig::scaled().with_seed(7), &data);
        let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model_b, &data, None).expect("training runs");
        let index = PopularityIndex::build(&model_a, &data, &(0..40).collect::<Vec<_>>());
        let prev = ModelSnapshot::new_with_precision(1, data, model_a, index, precision);
        (prev, Arc::new(model_b))
    }

    #[test]
    fn delta_patches_changed_rows_to_the_full_rebuild_bitwise() {
        let (prev, model_b) = delta_fixture(Precision::F32);
        let changed: Vec<u32> = vec![5, 17, 18, 19, 60, 119];
        let (delta, report) =
            ModelSnapshot::delta_from(&prev, 2, Arc::clone(&model_b), prev.index.clone(), &changed)
                .unwrap();
        assert_eq!(report.changed, changed.len());
        assert!(Arc::ptr_eq(&delta.data, &prev.data), "catalogue shared, not copied");

        // Oracle: a genuine whole-catalogue rebuild from the new model.
        // Forward passes are batch-invariant, so every changed row must
        // match it bitwise; every unchanged row stays prev's, bitwise.
        let full = ModelSnapshot::new_shared(
            2,
            Arc::clone(&prev.data),
            Arc::clone(&model_b),
            prev.index.clone(),
            Precision::F32,
        );
        for (which, d, f, p) in [
            ("cold", delta.cold_vecs(), full.cold_vecs(), prev.cold_vecs()),
            ("warm", delta.warm_vecs(), full.warm_vecs(), prev.warm_vecs()),
        ] {
            let (d, f, p) = (d.unwrap(), f.unwrap(), p.unwrap());
            for i in 0..prev.num_items() {
                if changed.contains(&(i as u32)) {
                    assert_eq!(d.row(i), f.row(i), "{which} changed row {i} != full rebuild");
                } else {
                    assert_eq!(d.row(i), p.row(i), "{which} unchanged row {i} != previous");
                }
            }
        }
        assert!(snapshot_build_delta_gauge().get() > 0.0, "delta build gauge is set");
        assert!(publishes_delta_counter().get() >= 1);
    }

    /// The incrementality pin: patching S₁ then S₂ must equal patching
    /// S₁ ∪ S₂ in one shot — tables bitwise, IVF structure byte-for-byte,
    /// retrieval (incl. tie order) identical. If the delta path leaked
    /// any dependence on unchanged rows, composition would break. Holds
    /// under frozen centroids, so the sets stay below the drift budget
    /// (a k-means rebuild re-trains the quantizer mid-sequence, which is
    /// a deliberate policy break of pure composition).
    #[test]
    fn delta_composition_is_exact_f32() {
        let (prev, model_b) = delta_fixture(Precision::F32);
        let index = prev.index.clone();
        let s1: Vec<u32> = (0..12).collect();
        let s2: Vec<u32> = (8..20).collect();
        let union: Vec<u32> = (0..20).collect();

        let (step1, r1) =
            ModelSnapshot::delta_from(&prev, 2, Arc::clone(&model_b), index.clone(), &s1).unwrap();
        let (two_step, r2) =
            ModelSnapshot::delta_from(&step1, 3, Arc::clone(&model_b), index.clone(), &s2).unwrap();
        let (one_shot, r3) =
            ModelSnapshot::delta_from(&prev, 3, Arc::clone(&model_b), index, &union).unwrap();
        assert!(
            !r1.index_rebuilt && !r2.index_rebuilt && !r3.index_rebuilt,
            "sets sized below the drift budget must stay incremental"
        );

        let items: Vec<u32> = (0..120).collect();
        assert_eq!(two_step.score_cold(&items), one_shot.score_cold(&items));
        assert_eq!(two_step.score_warm(&items), one_shot.score_warm(&items));
        assert_eq!(
            two_step.cold_vecs().unwrap().to_matrix(),
            one_shot.cold_vecs().unwrap().to_matrix()
        );
        assert_eq!(two_step.encoded_ann(), one_shot.encoded_ann(), "identical IVF bytes");
        let full = one_shot.ann().nlist();
        assert_eq!(
            two_step.topk_dots(20, full, &|_| true),
            one_shot.topk_dots(20, full, &|_| true)
        );
        assert_eq!(two_step.topk_dots(20, 2, &|_| true), one_shot.topk_dots(20, 2, &|_| true));
    }

    #[test]
    fn delta_composition_is_code_identical_int8() {
        let (prev, model_b) = delta_fixture(Precision::Int8);
        let index = prev.index.clone();
        let s1: Vec<u32> = (10..22).collect();
        let s2: Vec<u32> = vec![0, 10, 11, 95, 119];
        let mut union = [s1.clone(), s2.clone()].concat();
        union.sort_unstable();
        union.dedup();

        let (step1, r1) =
            ModelSnapshot::delta_from(&prev, 2, Arc::clone(&model_b), index.clone(), &s1).unwrap();
        let (two_step, r2) =
            ModelSnapshot::delta_from(&step1, 3, Arc::clone(&model_b), index.clone(), &s2).unwrap();
        let (one_shot, r3) =
            ModelSnapshot::delta_from(&prev, 3, Arc::clone(&model_b), index, &union).unwrap();
        assert!(!r1.index_rebuilt && !r2.index_rebuilt && !r3.index_rebuilt);

        let (tc, tw) = two_step.quant_tables().expect("int8 snapshot");
        let (oc, ow) = one_shot.quant_tables().expect("int8 snapshot");
        assert_eq!(tc.to_quantized(), oc.to_quantized(), "cold codes identical");
        assert_eq!(tw.to_quantized(), ow.to_quantized(), "warm codes identical");
        let items: Vec<u32> = (0..120).collect();
        assert_eq!(two_step.score_cold(&items), one_shot.score_cold(&items));
        assert_eq!(two_step.score_warm(&items), one_shot.score_warm(&items));
        assert_eq!(two_step.encoded_ann(), one_shot.encoded_ann());
        let full = one_shot.ann().nlist();
        assert_eq!(
            two_step.topk_dots(20, full, &|_| true),
            one_shot.topk_dots(20, full, &|_| true)
        );
    }

    #[test]
    fn drift_past_the_budget_rebuilds_the_index() {
        let (prev, model_b) = delta_fixture(Precision::F32);
        // Replace every row with a trained model's embeddings: far more
        // than a quarter of the assignments move, so the drift budget
        // trips on the first delta.
        let all: Vec<u32> = (0..120).collect();
        let (delta, report) =
            ModelSnapshot::delta_from(&prev, 2, Arc::clone(&model_b), prev.index.clone(), &all)
                .unwrap();
        assert!(
            report.index_rebuilt,
            "rewriting the whole table moved only {} of 120 assignments",
            report.moved_lists
        );
        assert_eq!(delta.ann().drift(), 0, "a rebuild re-trains the quantizer and clears drift");

        // The rebuilt index serves exact retrieval over the new table.
        let oracle =
            atnn_ann::BruteForce::new(Arc::clone(delta.cold_vecs().expect("f32 snapshot")));
        let got = delta.topk_dots(10, delta.ann().nlist(), &|_| true);
        assert_eq!(got, oracle.topk(delta.index.mean_user_vec(), 10, 0));

        // A small delta stays incremental and keeps its drift.
        let (_, small) =
            ModelSnapshot::delta_from(&prev, 2, Arc::clone(&model_b), prev.index.clone(), &[3])
                .unwrap();
        assert!(!small.index_rebuilt, "one changed row cannot trip the budget");
    }

    #[test]
    fn delta_rejects_bad_ids_and_manager_fans_out() {
        let (prev, model_b) = delta_fixture(Precision::F32);
        let index = prev.index.clone();
        let manager = ModelManager::new(prev);
        let cell = manager.register_shard_cell();

        let report =
            manager.publish_delta(2, Arc::clone(&model_b), index.clone(), &[3, 9, 9]).unwrap();
        assert_eq!(report.changed, 2, "duplicate ids collapse");
        assert_eq!(manager.version(), 2);
        assert_eq!(cell.load().version, 2, "delta publish fans out to shard cells");
        assert!(Arc::ptr_eq(&cell.load(), &manager.load()));

        let err =
            manager.publish_delta(3, Arc::clone(&model_b), index.clone(), &[120]).unwrap_err();
        assert_eq!(err, DeltaError::IdOutOfRange { id: 120, num_items: 120 });
        assert_eq!(manager.version(), 2, "rejected delta must not swap");

        // Canary: the delta lands in one shard only.
        let canary = manager
            .publish_delta_to_shard(0, 4, Arc::clone(&model_b), index.clone(), &[1])
            .unwrap();
        assert!(canary.is_some());
        assert_eq!(cell.load().version, 4);
        assert_eq!(manager.version(), 2, "primary cell untouched by the canary");
        assert!(manager
            .publish_delta_to_shard(9, 5, Arc::clone(&model_b), index, &[1])
            .unwrap()
            .is_none());
    }
}
