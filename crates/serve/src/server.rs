//! The TCP server: a thread-per-connection acceptor over the shared
//! batcher, router, model manager, and telemetry.
//!
//! Each accepted connection gets its own thread that reads length-prefixed
//! request frames, dispatches them, and writes the response frame back.
//! Scoring requests go through the micro-batcher (so concurrent
//! connections coalesce into shared forward passes); everything else is
//! answered inline from lock-free or swap-cell state. The acceptor never
//! waits on the model: a full batch queue turns into an immediate
//! `Overloaded` response.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::batcher::{BatchReply, Batcher};
use crate::config::ServeConfig;
use crate::manager::ModelManager;
use crate::protocol::{write_frame, FrameRead, FrameReader, Request, Response};
use crate::router::{PolicyRouter, ScorePath};
use crate::telemetry::{Endpoint, Telemetry};

/// Backoff before retrying a failed `accept` — persistent errors (e.g. fd
/// exhaustion) must not busy-spin the acceptor at 100% CPU.
const ACCEPT_RETRY_DELAY: std::time::Duration = std::time::Duration::from_millis(50);

/// State shared by the acceptor, every connection thread, and the handle.
struct ServerShared {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    manager: Arc<ModelManager>,
    router: Arc<PolicyRouter>,
    telemetry: Arc<Telemetry>,
    batcher: Batcher,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle (or calling [`shutdown`]) stops
/// the acceptor, drains connection threads, and stops the batch worker.
///
/// [`shutdown`]: ServeHandle::shutdown
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
}

/// Binds `cfg.addr` and starts serving `manager`'s current snapshot.
///
/// The policy router is sized to the manager's fixed item space; the
/// manager rejects hot swaps over a different catalogue (see
/// [`crate::manager::ItemSpaceMismatch`]), so ids the router validated
/// stay scorable across every published snapshot — exactly the paper's
/// periodic-retrain setup.
pub fn serve(cfg: ServeConfig, manager: Arc<ModelManager>) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let router = Arc::new(PolicyRouter::new(manager.num_items(), cfg.warm_threshold));
    let telemetry = Arc::new(Telemetry::new());
    let batcher = Batcher::start(cfg.clone(), Arc::clone(&manager), Arc::clone(&telemetry));
    let shared = Arc::new(ServerShared {
        cfg,
        shutdown: AtomicBool::new(false),
        manager,
        router,
        telemetry,
        batcher,
        connections: Mutex::new(Vec::new()),
    });

    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("atnn-serve-acceptor".to_string())
        .spawn(move || accept_loop(&listener, &acceptor_shared))?;

    Ok(ServeHandle { addr, shared, acceptor: Some(acceptor) })
}

impl ServeHandle {
    /// The bound address (with the resolved port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model manager behind the server — publish here to hot swap.
    pub fn manager(&self) -> &Arc<ModelManager> {
        &self.shared.manager
    }

    /// The live policy router (interaction counters).
    pub fn router(&self) -> &Arc<PolicyRouter> {
        &self.shared.router
    }

    /// The server's telemetry sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Stops accepting, drains connection threads, and stops the batch
    /// worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections =
            std::mem::take(&mut *self.shared.connections.lock().expect("connections lock"));
        for conn in connections {
            let _ = conn.join();
        }
        self.shared.batcher.shutdown();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        reap_finished_connections(shared);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("atnn-serve-conn".to_string())
            .spawn(move || connection_loop(stream, &conn_shared));
        if let Ok(handle) = handle {
            shared.connections.lock().expect("connections lock").push(handle);
        }
    }
}

/// Joins connection threads that already exited, so a long-running server
/// with connection churn doesn't accumulate handles without bound. Joining
/// a finished thread returns immediately.
fn reap_finished_connections(shared: &ServerShared) {
    let mut connections = shared.connections.lock().expect("connections lock");
    let mut i = 0;
    while i < connections.len() {
        if connections[i].is_finished() {
            let _ = connections.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the shutdown poll interval: an idle
    // connection wakes every `read_timeout` to check the flag.
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let mut stream = stream;
    // The stateful reader keeps partial frame bytes across read timeouts:
    // a client pausing mid-frame resumes exactly where it left off instead
    // of desynchronizing the stream.
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.read_frame(&mut stream) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Eof) => return, // peer hung up cleanly
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return, // broken pipe or garbage framing: drop the peer
        };
        let started = Instant::now();
        let (endpoint, response) = match Request::decode(payload) {
            Ok(request) => {
                let endpoint = endpoint_of(&request);
                (endpoint, handle_request(shared, request))
            }
            Err(e) => (Endpoint::Malformed, Response::Error(format!("bad request: {e}"))),
        };
        shared.telemetry.record_request(endpoint, started.elapsed());
        match &response {
            Response::Overloaded => shared.telemetry.record_shed(endpoint),
            Response::Error(_) => shared.telemetry.record_error(endpoint),
            _ => {}
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// The telemetry endpoint a request is accounted under.
fn endpoint_of(request: &Request) -> Endpoint {
    match request {
        Request::Health => Endpoint::Health,
        Request::Stats => Endpoint::Stats,
        Request::ScoreNewArrival { .. } => Endpoint::ScoreNewArrival,
        Request::ScoreWarmItem { .. } => Endpoint::ScoreWarmItem,
        Request::Score { .. } => Endpoint::Score,
        Request::RecordInteractions { .. } => Endpoint::RecordInteractions,
        Request::TopK { .. } => Endpoint::TopK,
    }
}

/// Rejects oversized requests and unknown item ids before they reach the
/// batcher. Returns the error response to send, or `None` when valid.
fn validate_items(shared: &ServerShared, items: &[u32]) -> Option<Response> {
    if items.len() > shared.cfg.max_request_items {
        return Some(Response::Error(format!(
            "request carries {} items, limit is {}",
            items.len(),
            shared.cfg.max_request_items
        )));
    }
    let num_items = shared.router.num_items() as u32;
    if let Some(&bad) = items.iter().find(|&&i| i >= num_items) {
        return Some(Response::Error(format!("item {bad} out of range (0..{num_items})")));
    }
    None
}

/// Scores `items` on one forced path through the batcher.
fn score_path(shared: &ServerShared, path: ScorePath, items: Vec<u32>) -> Response {
    if items.is_empty() {
        return Response::Scores(Vec::new());
    }
    match shared.batcher.submit(path, items) {
        Ok(rx) => match rx.recv() {
            Ok(Ok(scores)) => Response::Scores(scores),
            Ok(Err(msg)) => Response::Error(msg),
            Err(_) => Response::Error("batch worker dropped the job".to_string()),
        },
        Err(_) => Response::Overloaded,
    }
}

/// Policy-routed scoring: splits by the live counters, submits both paths
/// to the batcher concurrently, and merges back into request order.
/// Returns `(scores, warm_flags)` or an error/overload response.
fn score_routed(shared: &ServerShared, items: &[u32]) -> Result<(Vec<f32>, Vec<bool>), Response> {
    let (cold, warm) = shared.router.split(items);
    let mut warm_flags = vec![false; items.len()];
    for &(slot, _) in &warm {
        warm_flags[slot] = true;
    }

    // Submit both paths before waiting on either, so they share a flush.
    let submit = |path: ScorePath,
                  part: &[(usize, u32)]|
     -> Result<Option<mpsc::Receiver<BatchReply>>, Response> {
        if part.is_empty() {
            return Ok(None);
        }
        let ids: Vec<u32> = part.iter().map(|&(_, item)| item).collect();
        shared.batcher.submit(path, ids).map(Some).map_err(|_| Response::Overloaded)
    };
    let cold_rx = submit(ScorePath::Cold, &cold)?;
    let warm_rx = submit(ScorePath::Warm, &warm)?;

    let mut scores = vec![0.0f32; items.len()];
    let mut fill =
        |part: &[(usize, u32)], rx: Option<mpsc::Receiver<BatchReply>>| -> Result<(), Response> {
            let Some(rx) = rx else { return Ok(()) };
            let part_scores = rx
                .recv()
                .map_err(|_| Response::Error("batch worker dropped the job".to_string()))?
                .map_err(Response::Error)?;
            for (&(slot, _), &score) in part.iter().zip(&part_scores) {
                scores[slot] = score;
            }
            Ok(())
        };
    fill(&cold, cold_rx)?;
    fill(&warm, warm_rx)?;
    Ok((scores, warm_flags))
}

fn handle_request(shared: &ServerShared, request: Request) -> Response {
    match request {
        Request::Health => Response::Health { ok: true, model_version: shared.manager.version() },
        Request::Stats => Response::Stats(shared.telemetry.report(shared.manager.version())),
        Request::ScoreNewArrival { items } => validate_items(shared, &items)
            .unwrap_or_else(|| score_path(shared, ScorePath::Cold, items)),
        Request::ScoreWarmItem { items } => validate_items(shared, &items)
            .unwrap_or_else(|| score_path(shared, ScorePath::Warm, items)),
        Request::Score { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return err;
            }
            match score_routed(shared, &items) {
                Ok((scores, warm)) => Response::RoutedScores { scores, warm },
                Err(resp) => resp,
            }
        }
        Request::RecordInteractions { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return err;
            }
            let counts = items.iter().map(|&i| shared.router.record(i)).collect();
            Response::Recorded { counts }
        }
        Request::TopK { items, k } => {
            if let Some(err) = validate_items(shared, &items) {
                return err;
            }
            match score_routed(shared, &items) {
                Ok((scores, _)) => {
                    let mut ranked: Vec<(u32, f32)> = items.into_iter().zip(scores).collect();
                    // Best score first; ties broken by item id for a
                    // deterministic order.
                    ranked.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    ranked.truncate(k as usize);
                    Response::TopK(ranked)
                }
                Err(resp) => resp,
            }
        }
    }
}
