//! The TCP server: an event-driven epoll front over the item-sharded
//! scoring fleet.
//!
//! One or a few event-loop threads (`cfg.event_threads`) own every
//! accepted connection. Each loop runs a level-triggered [`Epoll`] set:
//! `EPOLLIN` drives the stateful [`FrameReader`] incrementally (a client
//! pausing mid-frame costs nothing but its slab slot), decoded requests
//! dispatch inline (`Health`, `Stats`, `RecordInteractions`, validation
//! errors) or scatter to the [`ShardSet`], and completed responses are
//! written from a per-connection output buffer under `EPOLLOUT` — no
//! thread per connection, so thousands of idle or slow connections cost
//! file descriptors, not stacks.
//!
//! Scoring replies arrive on shard worker threads; they land in the
//! owning loop's inbox and an `eventfd` wakeup makes the loop apply them.
//! Responses stay in request order per connection: each request takes a
//! sequenced slot in the connection's pending queue and the writer only
//! releases the contiguous answered prefix, so a pipelining client can
//! keep many requests in flight (bounded by `cfg.max_pipeline`) without
//! ever observing a reordered reply. The acceptor never waits on the
//! model: a full shard queue turns into an immediate `Overloaded`
//! response, and failed `accept` calls back off exponentially instead of
//! spinning.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::ServeConfig;
use crate::manager::ModelManager;
use crate::nio::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::protocol::{write_frame, FrameRead, FrameReader, Request, Response};
use crate::router::{PolicyRouter, ScorePath, SlottedItems};
use atnn_ann::topk_select;

use crate::shard::{ScatterOutcome, ShardSet, TopKOutcome};
use crate::telemetry::{Endpoint, Telemetry};

/// First backoff after a failed `accept`; doubles per consecutive failure.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
/// Backoff ceiling — persistent errors (fd exhaustion) poll at this rate.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Epoll token reserved for the loop's wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Readiness records drained per `epoll_wait`.
const WAIT_BATCH: usize = 256;
/// Output buffered beyond this pauses reading from the connection until
/// the peer drains it (slow-reader backpressure).
const OUT_HIGH_WATER: usize = 256 * 1024;

/// One completed async response bound for a connection.
struct Completion {
    token: u64,
    seq: u64,
    response: Response,
}

/// Cross-thread mailbox of one event loop.
#[derive(Default)]
struct Inbox {
    new_conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The handle other threads use to hand work to an event loop.
struct LoopShared {
    wake: WakeFd,
    inbox: Mutex<Inbox>,
}

impl LoopShared {
    fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().expect("loop inbox poisoned").new_conns.push(stream);
        self.wake.wake();
    }

    fn push_completion(&self, token: u64, seq: u64, response: Response) {
        self.inbox.lock().expect("loop inbox poisoned").completions.push(Completion {
            token,
            seq,
            response,
        });
        self.wake.wake();
    }

    fn take(&self) -> Inbox {
        std::mem::take(&mut *self.inbox.lock().expect("loop inbox poisoned"))
    }
}

/// State shared by the acceptor, the event loops, and the handle.
struct ServerShared {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    manager: Arc<ModelManager>,
    router: Arc<PolicyRouter>,
    telemetry: Arc<Telemetry>,
    shards: ShardSet,
    loops: Vec<Arc<LoopShared>>,
    /// Round-robin cursor for spreading new connections across loops.
    next_loop: AtomicUsize,
}

/// A running server. Dropping the handle (or calling [`shutdown`]) stops
/// the acceptor, the event loops, and the shard workers.
///
/// [`shutdown`]: ServeHandle::shutdown
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    loop_threads: Vec<JoinHandle<()>>,
}

/// Binds `cfg.addr` and starts serving `manager`'s current snapshot.
///
/// The policy router is sized to the manager's fixed item space; the
/// manager rejects hot swaps over a different catalogue (see
/// [`crate::manager::ItemSpaceMismatch`]), so ids the router validated
/// stay scorable across every published snapshot — exactly the paper's
/// periodic-retrain setup.
pub fn serve(cfg: ServeConfig, manager: Arc<ModelManager>) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let router = Arc::new(PolicyRouter::new(manager.num_items(), cfg.warm_threshold));
    let telemetry = Arc::new(Telemetry::with_shards(cfg.shards.max(1)));
    let shards = ShardSet::start(&cfg, &manager, &telemetry);
    let event_threads = cfg.event_threads.max(1);
    let loops: Vec<Arc<LoopShared>> = (0..event_threads)
        .map(|_| {
            Ok(Arc::new(LoopShared { wake: WakeFd::new()?, inbox: Mutex::new(Inbox::default()) }))
        })
        .collect::<io::Result<_>>()?;
    let shared = Arc::new(ServerShared {
        cfg,
        shutdown: AtomicBool::new(false),
        manager,
        router,
        telemetry,
        shards,
        loops,
        next_loop: AtomicUsize::new(0),
    });

    let mut loop_threads = Vec::with_capacity(event_threads);
    for i in 0..event_threads {
        let loop_shared = Arc::clone(&shared);
        loop_threads.push(
            std::thread::Builder::new()
                .name(format!("atnn-serve-loop{i}"))
                .spawn(move || event_loop(&loop_shared, i))?,
        );
    }
    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("atnn-serve-acceptor".to_string())
        .spawn(move || accept_loop(&listener, &acceptor_shared))?;

    Ok(ServeHandle { addr, shared, acceptor: Some(acceptor), loop_threads })
}

impl ServeHandle {
    /// The bound address (with the resolved port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model manager behind the server — publish here to hot swap
    /// every shard at once.
    pub fn manager(&self) -> &Arc<ModelManager> {
        &self.shared.manager
    }

    /// The live policy router (interaction counters).
    pub fn router(&self) -> &Arc<PolicyRouter> {
        &self.shared.router
    }

    /// The server's telemetry sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Number of catalogue shards this server is running.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Stops accepting, drains the event loops, and stops the shard
    /// workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for l in &self.shared.loops {
            l.wake.wake();
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.shards.shutdown();
        // A manager outliving this server (loadgen reuses one across
        // levels) must stop fanning publishes into dead shard cells.
        self.shared.manager.unregister_shard_cells(self.shared.shards.cells());
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Exponential-with-cap: persistent errors (fd exhaustion)
                // must neither busy-spin nor silently disappear.
                shared.telemetry.record_accept_error();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        backoff = ACCEPT_BACKOFF_MIN;
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let i = shared.next_loop.fetch_add(1, Ordering::Relaxed) % shared.loops.len();
        shared.loops[i].push_conn(stream);
    }
}

/// Why a connection is being torn down mid-processing.
enum ConnFate {
    /// Keep serving.
    Alive,
    /// Peer finished its write half cleanly; serve out pending replies,
    /// then close.
    ReadClosed,
    /// Broken pipe, garbage framing, or socket error: drop now.
    Dead,
}

/// One registered connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded-but-unsent response bytes; `out[sent..]` is pending.
    out: Vec<u8>,
    sent: usize,
    /// Response slots in request order; `None` = still scoring. The front
    /// slot has sequence `head_seq`.
    pending: VecDeque<Option<Response>>,
    head_seq: u64,
    next_seq: u64,
    /// The epoll interest mask currently registered for this fd.
    mask: u32,
    /// Peer sent EOF; flush remaining replies, then close.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            sent: 0,
            pending: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            mask: 0,
            read_closed: false,
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.sent
    }

    /// Moves the contiguous answered prefix of `pending` into `out`.
    fn release_ready(&mut self) {
        while let Some(Some(_)) = self.pending.front() {
            let response = self.pending.pop_front().flatten().expect("front is answered");
            self.head_seq += 1;
            // Writing into a Vec<u8> cannot fail.
            write_frame(&mut self.out, &response.encode()).expect("vec write");
        }
    }

    /// Fills the answered slot for `seq` (ignores stale sequences from a
    /// recycled token, which cannot occur — tokens carry a generation —
    /// but cheap to guard).
    fn complete(&mut self, seq: u64, response: Response) {
        let idx = seq.wrapping_sub(self.head_seq) as usize;
        if idx < self.pending.len() {
            self.pending[idx] = Some(response);
        }
    }
}

/// Generation-checked connection storage: a token is `gen << 32 | index`,
/// so a completion aimed at a closed-and-recycled slot misses instead of
/// hitting the wrong connection.
struct Slab {
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Slab { conns: Vec::new(), gens: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, conn: Conn) -> (usize, u64) {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        (idx, token_for(self.gens[idx], idx))
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (gen, idx) = split_token(token);
        if idx >= self.conns.len() || self.gens[idx] != gen {
            return None;
        }
        self.conns[idx].as_mut()
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let (gen, idx) = split_token(token);
        if idx >= self.conns.len() || self.gens[idx] != gen {
            return None;
        }
        let conn = self.conns[idx].take();
        if conn.is_some() {
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
        }
        conn
    }
}

fn token_for(gen: u32, idx: usize) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

fn split_token(token: u64) -> (u32, usize) {
    ((token >> 32) as u32, (token & 0xFFFF_FFFF) as usize)
}

fn event_loop(shared: &Arc<ServerShared>, me: usize) {
    let loop_shared = Arc::clone(&shared.loops[me]);
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(_) => return, // cannot run without an epoll fd
    };
    if epoll.add(loop_shared.wake.fd(), EPOLLIN, WAKE_TOKEN).is_err() {
        return;
    }
    let mut slab = Slab::new();
    let mut events = vec![EpollEvent::zeroed(); WAIT_BATCH];
    let wait_ms = shared.cfg.read_timeout.as_millis().clamp(1, i32::MAX as u128) as i32;

    loop {
        let n = epoll.wait(&mut events, wait_ms).unwrap_or(0);
        // Drain the wake fd BEFORE taking the inbox: a producer pushes
        // then wakes, so anything pushed after the take leaves the fd
        // readable and the next wait returns immediately — no lost wake.
        for ev in &events[..n] {
            if ev.data == WAKE_TOKEN {
                loop_shared.wake.drain();
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops the slab; in-flight completions miss by design
        }
        let inbox = loop_shared.take();
        for stream in inbox.new_conns {
            register_conn(&epoll, &mut slab, stream);
        }
        for c in inbox.completions {
            if let Some(conn) = slab.get_mut(c.token) {
                conn.complete(c.seq, c.response);
            }
            service_conn(shared, &epoll, &mut slab, c.token);
        }
        for ev in events.iter().take(n) {
            let (token, readiness) = (ev.data, ev.events);
            if token == WAKE_TOKEN {
                continue;
            }
            if readiness & (EPOLLERR | EPOLLHUP) != 0 {
                drop(slab.remove(token));
                continue;
            }
            if readiness & EPOLLIN != 0 {
                read_conn(shared, &loop_shared, &mut slab, token);
            }
            service_conn(shared, &epoll, &mut slab, token);
        }
    }
}

/// Puts a freshly accepted socket under the loop's epoll set. Data may
/// already be buffered on it; the level-triggered set reports that on the
/// next wait, so registration itself does no reads.
fn register_conn(epoll: &Epoll, slab: &mut Slab, stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let fd = stream.as_raw_fd();
    let (_idx, token) = slab.insert(Conn::new(stream));
    if epoll.add(fd, EPOLLIN, token).is_err() {
        slab.remove(token);
        return;
    }
    if let Some(conn) = slab.get_mut(token) {
        conn.mask = EPOLLIN;
    }
}

/// Drives the frame reader until the socket runs dry, the pipeline limit
/// pauses reading, or the peer goes away.
fn read_conn(
    shared: &Arc<ServerShared>,
    loop_shared: &Arc<LoopShared>,
    slab: &mut Slab,
    token: u64,
) {
    let fate = loop {
        let Some(conn) = slab.get_mut(token) else { return };
        if conn.read_closed {
            break ConnFate::ReadClosed;
        }
        if conn.pending.len() >= shared.cfg.max_pipeline || conn.out_pending() >= OUT_HIGH_WATER {
            break ConnFate::Alive; // paused; interest update drops EPOLLIN
        }
        let payload = match conn.reader.read_frame(&mut conn.stream) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Idle) => break ConnFate::Alive, // WouldBlock
            Ok(FrameRead::Eof) => break ConnFate::ReadClosed,
            Err(_) => break ConnFate::Dead, // garbage framing / io error
        };
        let started = Instant::now();
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(None);
        match Request::decode(payload) {
            Ok(request) => {
                if let Some(response) = dispatch(shared, loop_shared, token, seq, started, request)
                {
                    // Inline answer: fill the slot we just opened.
                    let Some(conn) = slab.get_mut(token) else { return };
                    conn.complete(seq, response);
                    conn.release_ready();
                }
            }
            Err(e) => {
                let response = Response::Error(format!("bad request: {e}"));
                shared.telemetry.record_request(Endpoint::Malformed, started.elapsed());
                shared.telemetry.record_error(Endpoint::Malformed);
                let Some(conn) = slab.get_mut(token) else { return };
                conn.complete(seq, response);
                conn.release_ready();
            }
        }
    };
    match fate {
        ConnFate::Alive => {}
        ConnFate::ReadClosed => {
            if let Some(conn) = slab.get_mut(token) {
                conn.read_closed = true;
            }
        }
        ConnFate::Dead => {
            drop(slab.remove(token));
        }
    }
}

/// Flushes buffered output, closes drained read-closed connections, and
/// reconciles the epoll interest mask with the connection's state.
fn service_conn(shared: &Arc<ServerShared>, epoll: &Epoll, slab: &mut Slab, token: u64) {
    let close = {
        let Some(conn) = slab.get_mut(token) else { return };
        conn.release_ready();
        let mut close = false;
        // Write as much as the socket accepts; level-triggered EPOLLOUT
        // re-reports while out bytes remain.
        while conn.out_pending() > 0 {
            match conn.stream.write(&conn.out[conn.sent..]) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => conn.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if conn.sent == conn.out.len() {
            conn.out.clear();
            conn.sent = 0;
        } else if conn.sent >= OUT_HIGH_WATER {
            conn.out.drain(..conn.sent);
            conn.sent = 0;
        }
        close |= conn.read_closed && conn.pending.is_empty() && conn.out_pending() == 0;

        if !close {
            let mut mask = 0u32;
            let read_paused = conn.pending.len() >= shared.cfg.max_pipeline
                || conn.out_pending() >= OUT_HIGH_WATER;
            if !conn.read_closed && !read_paused {
                mask |= EPOLLIN;
            }
            if conn.out_pending() > 0 {
                mask |= EPOLLOUT;
            }
            if mask != conn.mask {
                let fd = conn.stream.as_raw_fd();
                if epoll.modify(fd, mask, token).is_err() {
                    close = true;
                } else {
                    conn.mask = mask;
                }
            }
        }
        close
    };
    if close {
        drop(slab.remove(token));
    }
}

/// The telemetry endpoint a request is accounted under.
fn endpoint_of(request: &Request) -> Endpoint {
    match request {
        Request::Health => Endpoint::Health,
        Request::Stats => Endpoint::Stats,
        Request::ScoreNewArrival { .. } => Endpoint::ScoreNewArrival,
        Request::ScoreWarmItem { .. } => Endpoint::ScoreWarmItem,
        Request::Score { .. } => Endpoint::Score,
        Request::RecordInteractions { .. } => Endpoint::RecordInteractions,
        Request::TopK { .. } => Endpoint::TopK,
        Request::TopKAll { .. } => Endpoint::TopKAll,
    }
}

/// Rejects oversized requests and unknown item ids before they reach the
/// shards. Returns the error response to send, or `None` when valid.
fn validate_items(shared: &ServerShared, items: &[u32]) -> Option<Response> {
    if items.len() > shared.cfg.max_request_items {
        return Some(Response::Error(format!(
            "request carries {} items, limit is {}",
            items.len(),
            shared.cfg.max_request_items
        )));
    }
    let num_items = shared.router.num_items() as u32;
    if let Some(&bad) = items.iter().find(|&&i| i >= num_items) {
        return Some(Response::Error(format!("item {bad} out of range (0..{num_items})")));
    }
    None
}

/// Handles one decoded request. Returns `Some(response)` for inline
/// answers; `None` means the request was scattered to the shards and the
/// response will arrive through the loop's inbox under (`token`, `seq`).
fn dispatch(
    shared: &Arc<ServerShared>,
    loop_shared: &Arc<LoopShared>,
    token: u64,
    seq: u64,
    started: Instant,
    request: Request,
) -> Option<Response> {
    let endpoint = endpoint_of(&request);
    let inline = |response: Response| {
        shared.telemetry.record_request(endpoint, started.elapsed());
        match &response {
            Response::Overloaded => shared.telemetry.record_shed(endpoint),
            Response::Error(_) => shared.telemetry.record_error(endpoint),
            _ => {}
        }
        Some(response)
    };
    match request {
        Request::Health => {
            inline(Response::Health { ok: true, model_version: shared.manager.version() })
        }
        Request::Stats => {
            let snap = shared.manager.load();
            let mut report = shared.telemetry.report(snap.version);
            report.snapshot_bytes = snap.snapshot_bytes();
            report.snapshot_f32_bytes = snap.snapshot_f32_bytes();
            report.publishes_full = crate::manager::publishes_full_counter().get();
            report.publishes_delta = crate::manager::publishes_delta_counter().get();
            report.last_full_build_seconds = crate::manager::snapshot_build_full_gauge().get();
            report.last_delta_build_seconds = crate::manager::snapshot_build_delta_gauge().get();
            inline(Response::Stats(report))
        }
        Request::RecordInteractions { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return inline(err);
            }
            let counts = items.iter().map(|&i| shared.router.record(i)).collect();
            inline(Response::Recorded { counts })
        }
        Request::ScoreNewArrival { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return inline(err);
            }
            let slotted: SlottedItems = items.into_iter().enumerate().collect();
            let n = slotted.len();
            scatter_async(shared, loop_shared, token, seq, started, endpoint, |outcome| {
                scores_response(outcome, Response::Scores)
            })(vec![(ScorePath::Cold, slotted)], n);
            None
        }
        Request::ScoreWarmItem { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return inline(err);
            }
            let slotted: SlottedItems = items.into_iter().enumerate().collect();
            let n = slotted.len();
            scatter_async(shared, loop_shared, token, seq, started, endpoint, |outcome| {
                scores_response(outcome, Response::Scores)
            })(vec![(ScorePath::Warm, slotted)], n);
            None
        }
        Request::Score { items } => {
            if let Some(err) = validate_items(shared, &items) {
                return inline(err);
            }
            let (cold, warm) = shared.router.split(&items);
            let mut warm_flags = vec![false; items.len()];
            for &(slot, _) in &warm {
                warm_flags[slot] = true;
            }
            let n = items.len();
            scatter_async(shared, loop_shared, token, seq, started, endpoint, move |outcome| {
                scores_response(outcome, move |scores| Response::RoutedScores {
                    scores,
                    warm: warm_flags,
                })
            })(vec![(ScorePath::Cold, cold), (ScorePath::Warm, warm)], n);
            None
        }
        Request::TopK { items, k } => {
            if let Some(err) = validate_items(shared, &items) {
                return inline(err);
            }
            let (cold, warm) = shared.router.split(&items);
            let n = items.len();
            scatter_async(shared, loop_shared, token, seq, started, endpoint, move |outcome| {
                scores_response(outcome, move |scores| {
                    Response::TopK(topk_select(items.into_iter().zip(scores), k as usize))
                })
            })(vec![(ScorePath::Cold, cold), (ScorePath::Warm, warm)], n);
            None
        }
        Request::TopKAll { k } => {
            if k as usize > shared.cfg.max_request_items {
                return inline(Response::Error(format!(
                    "top-k of {k} exceeds the {} item limit",
                    shared.cfg.max_request_items
                )));
            }
            let telemetry = Arc::clone(&shared.telemetry);
            let manager = Arc::clone(&shared.manager);
            let ls = Arc::clone(loop_shared);
            shared.shards.scatter_topk(k as usize, move |outcome| {
                let response = match outcome {
                    TopKOutcome::Winners(winners) => {
                        // Dots become probabilities only after the merge
                        // (sigmoid can collapse distinct dots into equal
                        // f32s, which would corrupt cross-shard
                        // tie-breaks); only the k winners pay for it.
                        let snapshot = manager.load();
                        Response::TopK(
                            winners
                                .into_iter()
                                .map(|(id, dot)| (id, snapshot.index.score_from_dot(dot)))
                                .collect(),
                        )
                    }
                    TopKOutcome::Overloaded => Response::Overloaded,
                    TopKOutcome::Error(msg) => Response::Error(msg),
                };
                telemetry.record_request(endpoint, started.elapsed());
                match &response {
                    Response::Overloaded => telemetry.record_shed(endpoint),
                    Response::Error(_) => telemetry.record_error(endpoint),
                    _ => {}
                }
                ls.push_completion(token, seq, response);
            });
            None
        }
    }
}

/// Maps a gather outcome into a response via `ok` for the scores case.
fn scores_response(outcome: ScatterOutcome, ok: impl FnOnce(Vec<f32>) -> Response) -> Response {
    match outcome {
        ScatterOutcome::Scores(scores) => ok(scores),
        ScatterOutcome::Overloaded => Response::Overloaded,
        ScatterOutcome::Error(msg) => Response::Error(msg),
    }
}

/// Builds the scatter entry point for one request: the returned closure
/// scatters the parts, and the shard that completes the gather records
/// telemetry and posts the response into the owning loop's inbox.
fn scatter_async<'a, F>(
    shared: &'a Arc<ServerShared>,
    loop_shared: &Arc<LoopShared>,
    token: u64,
    seq: u64,
    started: Instant,
    endpoint: Endpoint,
    to_response: F,
) -> impl FnOnce(Vec<(ScorePath, SlottedItems)>, usize) + 'a
where
    F: FnOnce(ScatterOutcome) -> Response + Send + 'static,
{
    let telemetry = Arc::clone(&shared.telemetry);
    let ls = Arc::clone(loop_shared);
    move |parts, total_slots| {
        shared.shards.scatter(parts, total_slots, move |outcome| {
            let response = to_response(outcome);
            telemetry.record_request(endpoint, started.elapsed());
            match &response {
                Response::Overloaded => telemetry.record_shed(endpoint),
                Response::Error(_) => telemetry.record_error(endpoint),
                _ => {}
            }
            ls.push_completion(token, seq, response);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atnn_ann::best_first;

    #[test]
    fn tokens_roundtrip_generation_and_index() {
        let token = token_for(7, 123);
        assert_eq!(split_token(token), (7, 123));
        assert_ne!(token_for(8, 123), token, "recycled slot gets a fresh token");
        assert_ne!(token_for(7, 124), token);
    }

    #[test]
    fn slab_generation_guards_stale_tokens() {
        let mut slab = Slab::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let make_conn = || {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            (c, Conn::new(s))
        };
        let (_c1, conn1) = make_conn();
        let (idx1, token1) = slab.insert(conn1);
        assert!(slab.get_mut(token1).is_some());
        assert!(slab.remove(token1).is_some());
        assert!(slab.get_mut(token1).is_none(), "removed token is dead");

        let (_c2, conn2) = make_conn();
        let (idx2, token2) = slab.insert(conn2);
        assert_eq!(idx1, idx2, "slot recycled");
        assert_ne!(token1, token2, "but under a fresh generation");
        assert!(slab.get_mut(token1).is_none(), "stale token misses the recycled slot");
        assert!(slab.get_mut(token2).is_some());
    }

    #[test]
    fn pending_queue_releases_only_the_answered_prefix() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        for _ in 0..3 {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.pending.push_back(None);
            let _ = seq;
        }
        // Answer out of order: 2, then 0, then 1.
        conn.complete(2, Response::Health { ok: true, model_version: 2 });
        conn.release_ready();
        assert_eq!(conn.out_pending(), 0, "head still unanswered: nothing released");
        conn.complete(0, Response::Health { ok: true, model_version: 0 });
        conn.release_ready();
        assert!(conn.out_pending() > 0, "head answered: released");
        assert_eq!(conn.pending.len(), 2, "seq 1 and 2 still queued");
        conn.complete(1, Response::Health { ok: true, model_version: 1 });
        conn.release_ready();
        assert!(conn.pending.is_empty(), "contiguous prefix all released");
        assert_eq!(conn.head_seq, 3);
    }

    #[test]
    fn topk_select_matches_full_sort_truncate() {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for n in [0usize, 1, 5, 64, 257] {
            for k in [0usize, 1, 3, 10, 64, 300] {
                let ranked: Vec<(u32, f32)> = (0..n)
                    .map(|_| {
                        // Coarse scores force plenty of exact ties.
                        ((next() % 50) as u32, ((next() % 7) as f32) * 0.5)
                    })
                    .collect();
                let mut reference = ranked.clone();
                reference.sort_by(best_first);
                reference.truncate(k);
                assert_eq!(topk_select(ranked, k), reference, "n={n} k={k}");
            }
        }
    }
}
