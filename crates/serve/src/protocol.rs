//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; the payload's first byte is the opcode, the rest is the
//! op-specific body. Everything is fixed-width little-endian — no text
//! parsing on the hot path, and `f32` scores travel bit-exact, so a served
//! score can be compared to a direct model call with `==`.
//!
//! Request opcodes: `Health`, `Stats`, `ScoreNewArrival` (forced cold
//! path), `ScoreWarmItem` (forced warm path), `Score` (policy-routed),
//! `RecordInteractions` (feeds the router's counters), `TopK` (routed
//! ranking). Responses mirror them, plus `Overloaded` (load shed by the
//! micro-batcher) and `Error`.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frames larger than this are rejected — a corrupt length prefix must not
/// make the server allocate gigabytes.
pub const MAX_FRAME: usize = 8 << 20;

/// Errors from framing and (de)serialization.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent a malformed frame or payload.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol io error: {e}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; returns the served model version.
    Health,
    /// Telemetry snapshot.
    Stats,
    /// Score new arrivals on the cold path: generator vectors + the O(1)
    /// mean-user-vector index (paper §IV-D before the switch).
    ScoreNewArrival {
        /// Item ids to score.
        items: Vec<u32>,
    },
    /// Score warm items on the full encoder path (profile + accrued
    /// statistics — after the switch).
    ScoreWarmItem {
        /// Item ids to score.
        items: Vec<u32>,
    },
    /// Policy-routed scoring: each item goes cold or warm according to the
    /// server's live interaction counters.
    Score {
        /// Item ids to score.
        items: Vec<u32>,
    },
    /// Report observed interactions; bumps the per-item counters that
    /// drive the cold→warm switch.
    RecordInteractions {
        /// One entry per observed interaction (repeats allowed).
        items: Vec<u32>,
    },
    /// Rank candidate items (policy-routed) and return the top `k`.
    TopK {
        /// Candidate item ids.
        items: Vec<u32>,
        /// How many winners to return.
        k: u32,
    },
    /// Rank the **whole catalogue** and return the top `k`, served by the
    /// ANN retrieval index (probe width set by the server's `nprobe`
    /// configuration). Answers with [`Response::TopK`].
    TopKAll {
        /// How many winners to return.
        k: u32,
    },
}

/// Per-endpoint telemetry in a [`Response::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointStats {
    /// Endpoint name (snake_case, stable).
    pub name: String,
    /// Requests answered (including errors and sheds).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Requests shed with [`Response::Overloaded`].
    pub shed: u64,
    /// Median service latency, nanoseconds (bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile service latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile service latency, nanoseconds.
    pub p99_ns: u64,
}

/// Per-shard batcher telemetry in a [`Response::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Batched forward passes this shard executed.
    pub batches: u64,
    /// Items scored through this shard's batched forward passes.
    pub batched_items: u64,
    /// Jobs accepted into this shard's queue.
    pub dispatched: u64,
    /// Jobs shed at this shard's queue bound.
    pub shed: u64,
    /// Items waiting in this shard's queue at snapshot time.
    pub queue_depth: u64,
}

/// The full telemetry snapshot returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Version tag of the currently served model snapshot.
    pub model_version: u64,
    /// Batched forward passes executed across all shards.
    pub batches: u64,
    /// Total items scored through batched forward passes, all shards.
    pub batched_items: u64,
    /// Failed `accept` calls observed by the acceptor (each one also
    /// backed off exponentially; see the server's accept loop).
    pub accept_errors: u64,
    /// Bytes the served snapshot's embedding tables occupy in their
    /// served representation (int8 codes + affine parameters on a
    /// quantized snapshot) — the `atnn.serve.snapshot_bytes` gauge.
    pub snapshot_bytes: u64,
    /// Bytes the same tables would occupy as raw f32; the ratio against
    /// `snapshot_bytes` is the quantization memory win (1× on f32
    /// snapshots).
    pub snapshot_f32_bytes: u64,
    /// Full snapshot builds (whole-catalogue re-embed + index build)
    /// since process start — the `atnn.serve.publishes_full` counter.
    pub publishes_full: u64,
    /// Delta snapshot builds (changed rows only) since process start —
    /// the `atnn.serve.publishes_delta` counter.
    pub publishes_delta: u64,
    /// Wall-clock seconds of the most recent full snapshot build (0.0 if
    /// none happened in this process).
    pub last_full_build_seconds: f64,
    /// Wall-clock seconds of the most recent delta snapshot build (0.0
    /// if none happened in this process).
    pub last_delta_build_seconds: f64,
    /// Per-endpoint counters and latency quantiles.
    pub endpoints: Vec<EndpointStats>,
    /// Per-shard batcher counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl StatsReport {
    /// The stats row for `name`, if present.
    pub fn endpoint(&self, name: &str) -> Option<&EndpointStats> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    /// Mean micro-batch size (items per batched forward pass).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_items as f64 / self.batches as f64
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness + the served model version.
    Health {
        /// Always true when the server answered at all.
        ok: bool,
        /// Version tag of the current model snapshot.
        model_version: u64,
    },
    /// Telemetry snapshot.
    Stats(StatsReport),
    /// Scores, one per requested item, in request order.
    Scores(Vec<f32>),
    /// Policy-routed scores plus the path each item took (`true` = warm).
    RoutedScores {
        /// Scores in request order.
        scores: Vec<f32>,
        /// Whether each item was routed to the warm (full-tower) path.
        warm: Vec<bool>,
    },
    /// Interaction counters recorded.
    Recorded {
        /// Counter total after the bump, per item, in request order.
        counts: Vec<u32>,
    },
    /// `(item, score)` winners, best first.
    TopK(Vec<(u32, f32)>),
    /// The micro-batch queue was full; retry later (load shed).
    Overloaded,
    /// The request was invalid (unknown item, oversized batch, ...).
    Error(String),
}

const OP_HEALTH: u8 = 1;
const OP_STATS: u8 = 2;
const OP_SCORE_NEW: u8 = 3;
const OP_SCORE_WARM: u8 = 4;
const OP_SCORE: u8 = 5;
const OP_RECORD: u8 = 6;
const OP_TOPK: u8 = 7;
const OP_TOPK_ALL: u8 = 8;

const RESP_HEALTH: u8 = 101;
const RESP_STATS: u8 = 102;
const RESP_SCORES: u8 = 103;
const RESP_ROUTED: u8 = 104;
const RESP_RECORDED: u8 = 105;
const RESP_TOPK: u8 = 106;
const RESP_OVERLOADED: u8 = 107;
const RESP_ERROR: u8 = 108;

fn put_items(items: &[u32], buf: &mut BytesMut) {
    buf.put_u32_le(items.len() as u32);
    for &i in items {
        buf.put_u32_le(i);
    }
}

fn get_items(buf: &mut Bytes) -> Result<Vec<u32>, ProtocolError> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n * 4 {
        return Err(ProtocolError::Malformed("item list truncated"));
    }
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Malformed("field truncated"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, ProtocolError> {
    if buf.remaining() < 8 {
        return Err(ProtocolError::Malformed("field truncated"));
    }
    Ok(buf.get_u64_le())
}

fn put_string(s: &str, buf: &mut BytesMut) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, ProtocolError> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(ProtocolError::Malformed("string truncated"));
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| ProtocolError::Malformed("string not UTF-8"))
}

impl Request {
    /// Serializes the request payload (without the frame length prefix).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Request::Health => buf.put_u8(OP_HEALTH),
            Request::Stats => buf.put_u8(OP_STATS),
            Request::ScoreNewArrival { items } => {
                buf.put_u8(OP_SCORE_NEW);
                put_items(items, &mut buf);
            }
            Request::ScoreWarmItem { items } => {
                buf.put_u8(OP_SCORE_WARM);
                put_items(items, &mut buf);
            }
            Request::Score { items } => {
                buf.put_u8(OP_SCORE);
                put_items(items, &mut buf);
            }
            Request::RecordInteractions { items } => {
                buf.put_u8(OP_RECORD);
                put_items(items, &mut buf);
            }
            Request::TopK { items, k } => {
                buf.put_u8(OP_TOPK);
                put_items(items, &mut buf);
                buf.put_u32_le(*k);
            }
            Request::TopKAll { k } => {
                buf.put_u8(OP_TOPK_ALL);
                buf.put_u32_le(*k);
            }
        }
        buf.freeze()
    }

    /// Parses a request payload.
    pub fn decode(mut buf: Bytes) -> Result<Self, ProtocolError> {
        if buf.remaining() < 1 {
            return Err(ProtocolError::Malformed("empty payload"));
        }
        let op = buf.get_u8();
        let req = match op {
            OP_HEALTH => Request::Health,
            OP_STATS => Request::Stats,
            OP_SCORE_NEW => Request::ScoreNewArrival { items: get_items(&mut buf)? },
            OP_SCORE_WARM => Request::ScoreWarmItem { items: get_items(&mut buf)? },
            OP_SCORE => Request::Score { items: get_items(&mut buf)? },
            OP_RECORD => Request::RecordInteractions { items: get_items(&mut buf)? },
            OP_TOPK => {
                let items = get_items(&mut buf)?;
                let k = get_u32(&mut buf)?;
                Request::TopK { items, k }
            }
            OP_TOPK_ALL => Request::TopKAll { k: get_u32(&mut buf)? },
            _ => return Err(ProtocolError::Malformed("unknown request opcode")),
        };
        if buf.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(req)
    }

    /// The telemetry endpoint name this request is accounted under.
    pub fn endpoint_name(&self) -> &'static str {
        match self {
            Request::Health => "health",
            Request::Stats => "stats",
            Request::ScoreNewArrival { .. } => "score_new_arrival",
            Request::ScoreWarmItem { .. } => "score_warm_item",
            Request::Score { .. } => "score",
            Request::RecordInteractions { .. } => "record_interactions",
            Request::TopK { .. } => "topk",
            Request::TopKAll { .. } => "topk_all",
        }
    }
}

impl Response {
    /// Serializes the response payload (without the frame length prefix).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Response::Health { ok, model_version } => {
                buf.put_u8(RESP_HEALTH);
                buf.put_u8(*ok as u8);
                buf.put_u64_le(*model_version);
            }
            Response::Stats(report) => {
                buf.put_u8(RESP_STATS);
                buf.put_u64_le(report.model_version);
                buf.put_u64_le(report.batches);
                buf.put_u64_le(report.batched_items);
                buf.put_u64_le(report.accept_errors);
                buf.put_u64_le(report.snapshot_bytes);
                buf.put_u64_le(report.snapshot_f32_bytes);
                buf.put_u64_le(report.publishes_full);
                buf.put_u64_le(report.publishes_delta);
                // f64 gauges travel as their IEEE-754 bit patterns.
                buf.put_u64_le(report.last_full_build_seconds.to_bits());
                buf.put_u64_le(report.last_delta_build_seconds.to_bits());
                buf.put_u32_le(report.endpoints.len() as u32);
                for e in &report.endpoints {
                    put_string(&e.name, &mut buf);
                    buf.put_u64_le(e.requests);
                    buf.put_u64_le(e.errors);
                    buf.put_u64_le(e.shed);
                    buf.put_u64_le(e.p50_ns);
                    buf.put_u64_le(e.p95_ns);
                    buf.put_u64_le(e.p99_ns);
                }
                buf.put_u32_le(report.shards.len() as u32);
                for s in &report.shards {
                    buf.put_u64_le(s.batches);
                    buf.put_u64_le(s.batched_items);
                    buf.put_u64_le(s.dispatched);
                    buf.put_u64_le(s.shed);
                    buf.put_u64_le(s.queue_depth);
                }
            }
            Response::Scores(scores) => {
                buf.put_u8(RESP_SCORES);
                buf.put_u32_le(scores.len() as u32);
                for &s in scores {
                    buf.put_f32_le(s);
                }
            }
            Response::RoutedScores { scores, warm } => {
                buf.put_u8(RESP_ROUTED);
                buf.put_u32_le(scores.len() as u32);
                for &s in scores {
                    buf.put_f32_le(s);
                }
                for &w in warm {
                    buf.put_u8(w as u8);
                }
            }
            Response::Recorded { counts } => {
                buf.put_u8(RESP_RECORDED);
                buf.put_u32_le(counts.len() as u32);
                for &c in counts {
                    buf.put_u32_le(c);
                }
            }
            Response::TopK(winners) => {
                buf.put_u8(RESP_TOPK);
                buf.put_u32_le(winners.len() as u32);
                for &(item, score) in winners {
                    buf.put_u32_le(item);
                    buf.put_f32_le(score);
                }
            }
            Response::Overloaded => buf.put_u8(RESP_OVERLOADED),
            Response::Error(msg) => {
                buf.put_u8(RESP_ERROR);
                put_string(msg, &mut buf);
            }
        }
        buf.freeze()
    }

    /// Parses a response payload.
    pub fn decode(mut buf: Bytes) -> Result<Self, ProtocolError> {
        if buf.remaining() < 1 {
            return Err(ProtocolError::Malformed("empty payload"));
        }
        let op = buf.get_u8();
        let resp = match op {
            RESP_HEALTH => {
                if buf.remaining() < 1 {
                    return Err(ProtocolError::Malformed("health truncated"));
                }
                let ok = buf.get_u8() != 0;
                Response::Health { ok, model_version: get_u64(&mut buf)? }
            }
            RESP_STATS => {
                let model_version = get_u64(&mut buf)?;
                let batches = get_u64(&mut buf)?;
                let batched_items = get_u64(&mut buf)?;
                let accept_errors = get_u64(&mut buf)?;
                let snapshot_bytes = get_u64(&mut buf)?;
                let snapshot_f32_bytes = get_u64(&mut buf)?;
                let publishes_full = get_u64(&mut buf)?;
                let publishes_delta = get_u64(&mut buf)?;
                let last_full_build_seconds = f64::from_bits(get_u64(&mut buf)?);
                let last_delta_build_seconds = f64::from_bits(get_u64(&mut buf)?);
                let n = get_u32(&mut buf)? as usize;
                let mut endpoints = Vec::with_capacity(n);
                for _ in 0..n {
                    endpoints.push(EndpointStats {
                        name: get_string(&mut buf)?,
                        requests: get_u64(&mut buf)?,
                        errors: get_u64(&mut buf)?,
                        shed: get_u64(&mut buf)?,
                        p50_ns: get_u64(&mut buf)?,
                        p95_ns: get_u64(&mut buf)?,
                        p99_ns: get_u64(&mut buf)?,
                    });
                }
                let ns = get_u32(&mut buf)? as usize;
                let mut shards = Vec::with_capacity(ns);
                for _ in 0..ns {
                    shards.push(ShardStats {
                        batches: get_u64(&mut buf)?,
                        batched_items: get_u64(&mut buf)?,
                        dispatched: get_u64(&mut buf)?,
                        shed: get_u64(&mut buf)?,
                        queue_depth: get_u64(&mut buf)?,
                    });
                }
                Response::Stats(StatsReport {
                    model_version,
                    batches,
                    batched_items,
                    accept_errors,
                    snapshot_bytes,
                    snapshot_f32_bytes,
                    publishes_full,
                    publishes_delta,
                    last_full_build_seconds,
                    last_delta_build_seconds,
                    endpoints,
                    shards,
                })
            }
            RESP_SCORES => {
                let n = get_u32(&mut buf)? as usize;
                if buf.remaining() < n * 4 {
                    return Err(ProtocolError::Malformed("scores truncated"));
                }
                Response::Scores((0..n).map(|_| buf.get_f32_le()).collect())
            }
            RESP_ROUTED => {
                let n = get_u32(&mut buf)? as usize;
                if buf.remaining() < n * 5 {
                    return Err(ProtocolError::Malformed("routed scores truncated"));
                }
                let scores = (0..n).map(|_| buf.get_f32_le()).collect();
                let warm = (0..n).map(|_| buf.get_u8() != 0).collect();
                Response::RoutedScores { scores, warm }
            }
            RESP_RECORDED => {
                let n = get_u32(&mut buf)? as usize;
                if buf.remaining() < n * 4 {
                    return Err(ProtocolError::Malformed("counts truncated"));
                }
                Response::Recorded { counts: (0..n).map(|_| buf.get_u32_le()).collect() }
            }
            RESP_TOPK => {
                let n = get_u32(&mut buf)? as usize;
                if buf.remaining() < n * 8 {
                    return Err(ProtocolError::Malformed("topk truncated"));
                }
                Response::TopK((0..n).map(|_| (buf.get_u32_le(), buf.get_f32_le())).collect())
            }
            RESP_OVERLOADED => Response::Overloaded,
            RESP_ERROR => Response::Error(get_string(&mut buf)?),
            _ => return Err(ProtocolError::Malformed("unknown response opcode")),
        };
        if buf.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer hung up between requests).
///
/// For sockets with a read timeout use [`FrameReader`] instead: this
/// function treats `WouldBlock`/`TimedOut` as an error and any bytes it
/// already consumed are lost, so retrying it mid-frame desynchronizes the
/// stream.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Malformed("frame too large"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Bytes),
    /// Clean EOF at a frame boundary (the peer hung up between requests).
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`). Any partial bytes of
    /// the next frame stay buffered; call again to resume where the stream
    /// left off.
    Idle,
}

/// Stateful frame reader for sockets with a read timeout.
///
/// A timeout can fire anywhere — including in the middle of a frame's
/// length prefix or payload. This reader keeps whatever it has consumed so
/// far across calls, so a timeout never discards partial bytes and the
/// next call resumes mid-frame instead of misparsing payload bytes as a
/// new length prefix.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_have: usize,
    /// Allocated once the length prefix is complete; `None` while the
    /// prefix itself is still being read.
    payload: Option<Vec<u8>>,
    payload_have: usize,
}

/// Outcome of one buffer-filling attempt.
enum Fill {
    Done,
    Timeout,
    Eof,
}

/// Reads into `buf[*have..]` until full, EOF, or a timeout, advancing
/// `have` past every successfully consumed byte.
fn fill(r: &mut impl Read, buf: &mut [u8], have: &mut usize) -> Result<Fill, ProtocolError> {
    while *have < buf.len() {
        match r.read(&mut buf[*have..]) {
            Ok(0) => return Ok(Fill::Eof),
            Ok(n) => *have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(Fill::Timeout)
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Done)
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether partial bytes of an unfinished frame are buffered.
    pub fn mid_frame(&self) -> bool {
        self.header_have > 0 || self.payload.is_some()
    }

    /// Reads one frame, resuming from any partial bytes buffered by an
    /// earlier timed-out call. EOF mid-frame is an error; EOF at a frame
    /// boundary is [`FrameRead::Eof`].
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<FrameRead, ProtocolError> {
        if self.payload.is_none() {
            match fill(r, &mut self.header, &mut self.header_have)? {
                Fill::Timeout => return Ok(FrameRead::Idle),
                Fill::Eof => {
                    if self.header_have == 0 {
                        return Ok(FrameRead::Eof);
                    }
                    return Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside a frame length prefix",
                    )));
                }
                Fill::Done => {
                    let len = u32::from_le_bytes(self.header) as usize;
                    if len > MAX_FRAME {
                        return Err(ProtocolError::Malformed("frame too large"));
                    }
                    self.payload = Some(vec![0u8; len]);
                    self.payload_have = 0;
                }
            }
        }
        let payload = self.payload.as_mut().expect("payload allocated above");
        match fill(r, payload, &mut self.payload_have)? {
            Fill::Timeout => Ok(FrameRead::Idle),
            Fill::Eof => Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside a frame payload",
            ))),
            Fill::Done => {
                let frame = self.payload.take().expect("payload present");
                self.header_have = 0;
                self.payload_have = 0;
                Ok(FrameRead::Frame(Bytes::from(frame)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        assert_eq!(Request::decode(req.encode()).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::ScoreNewArrival { items: vec![1, 2, 3] });
        roundtrip_request(Request::ScoreWarmItem { items: vec![] });
        roundtrip_request(Request::Score { items: vec![9, 9, 9] });
        roundtrip_request(Request::RecordInteractions { items: vec![0, u32::MAX] });
        roundtrip_request(Request::TopK { items: vec![5, 4, 3], k: 2 });
        roundtrip_request(Request::TopKAll { k: 12 });
        roundtrip_request(Request::TopKAll { k: 0 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Health { ok: true, model_version: 7 });
        roundtrip_response(Response::Scores(vec![0.25, f32::MIN_POSITIVE, 1.0]));
        roundtrip_response(Response::RoutedScores {
            scores: vec![0.5, 0.75],
            warm: vec![true, false],
        });
        roundtrip_response(Response::Recorded { counts: vec![1, 2, 3] });
        roundtrip_response(Response::TopK(vec![(3, 0.9), (1, 0.1)]));
        roundtrip_response(Response::Overloaded);
        roundtrip_response(Response::Error("bad item".into()));
        roundtrip_response(Response::Stats(StatsReport {
            model_version: 2,
            batches: 10,
            batched_items: 55,
            accept_errors: 3,
            snapshot_bytes: 4_096,
            snapshot_f32_bytes: 16_384,
            publishes_full: 2,
            publishes_delta: 17,
            last_full_build_seconds: 1.25,
            last_delta_build_seconds: 0.0625,
            endpoints: vec![EndpointStats {
                name: "score".into(),
                requests: 100,
                errors: 1,
                shed: 2,
                p50_ns: 1_000,
                p95_ns: 5_000,
                p99_ns: 9_000,
            }],
            shards: vec![
                ShardStats {
                    batches: 6,
                    batched_items: 30,
                    dispatched: 40,
                    shed: 1,
                    queue_depth: 7,
                },
                ShardStats {
                    batches: 4,
                    batched_items: 25,
                    dispatched: 31,
                    shed: 0,
                    queue_depth: 0,
                },
            ],
        }));
    }

    #[test]
    fn scores_travel_bit_exact() {
        let scores = vec![0.1f32, 1.0 / 3.0, 0.9999999];
        let Response::Scores(back) =
            Response::decode(Response::Scores(scores.clone()).encode()).unwrap()
        else {
            panic!("wrong variant");
        };
        for (a, b) in scores.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(Bytes::from_static(b"")).is_err());
        assert!(Request::decode(Bytes::from_static(b"\xff")).is_err());
        // Truncated item list.
        assert!(
            Request::decode(Bytes::from_static(b"\x03\x02\x00\x00\x00\x01\x00\x00\x00")).is_err()
        );
        // Trailing garbage.
        assert!(Request::decode(Bytes::from_static(b"\x01\x00")).is_err());
        assert!(Response::decode(Bytes::from_static(b"\xee")).is_err());
    }

    /// Serves `data` in `chunk`-byte slices with a `WouldBlock` timeout
    /// between every chunk — the worst-case dribbling client.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl std::io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_after_mid_frame_timeouts() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Score { items: vec![7, 8, 9] }.encode()).unwrap();
        write_frame(&mut wire, &Request::Health.encode()).unwrap();
        // One byte per read, a timeout before each: every length prefix and
        // payload is split across many timed-out calls.
        let mut r = Dribble { data: wire, pos: 0, chunk: 1, ready: false };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_frame(&mut r).unwrap() {
                FrameRead::Frame(payload) => frames.push(payload),
                FrameRead::Idle => continue,
                FrameRead::Eof => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            Request::decode(frames[0].clone()).unwrap(),
            Request::Score { items: vec![7, 8, 9] }
        );
        assert_eq!(Request::decode(frames[1].clone()).unwrap(), Request::Health);
    }

    #[test]
    fn frame_reader_reports_mid_frame_state_and_bad_eof() {
        // 4-byte prefix announcing 10 payload bytes, but only 2 arrive.
        let mut truncated = 10u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(b"ab");
        let mut r = Dribble { data: truncated, pos: 0, chunk: 3, ready: false };
        let mut reader = FrameReader::new();
        loop {
            match reader.read_frame(&mut r) {
                Ok(FrameRead::Idle) => continue,
                Err(ProtocolError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
                    break;
                }
                other => panic!("expected eof-mid-frame error, got {other:?}"),
            }
        }

        // Clean EOF at a boundary is not an error.
        let mut empty = Dribble { data: Vec::new(), pos: 0, chunk: 1, ready: true };
        assert!(matches!(FrameReader::new().read_frame(&mut empty).unwrap(), FrameRead::Eof));

        // A reader that consumed part of a prefix knows it is mid-frame.
        let mut partial = Dribble { data: vec![1, 0], pos: 0, chunk: 2, ready: true };
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        assert!(matches!(reader.read_frame(&mut partial).unwrap(), FrameRead::Idle));
        assert!(reader.mid_frame());
    }

    #[test]
    fn frame_reader_rejects_oversize_prefix() {
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            FrameReader::new().read_frame(&mut r),
            Err(ProtocolError::Malformed("frame too large"))
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_ref(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut r).is_err());
    }
}
