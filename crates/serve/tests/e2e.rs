//! End-to-end serving tests over real TCP: a trained model behind the full
//! server stack, scored through the wire protocol, checked bit-for-bit
//! against direct model calls. The kernels are bit-identical regardless of
//! batch composition (see `atnn_tensor::pool`), so every comparison here
//! is exact `==`, not a tolerance.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atnn_core::{Atnn, AtnnConfig, CtrTrainer, ModelArtifact, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::protocol::{read_frame, write_frame};
use atnn_serve::{
    serve, shard_of, ModelManager, ModelSnapshot, Precision, Request, Response, ServeClient,
    ServeConfig, ServeHandle,
};

fn tiny_data_config() -> TmallConfig {
    TmallConfig { num_users: 60, num_items: 150, num_interactions: 1_200, ..TmallConfig::tiny() }
}

/// Trains a snapshot on the shared tiny dataset. More epochs → different
/// weights, which is how the hot-swap test tells versions apart.
fn snapshot(version: u64, epochs: usize) -> ModelSnapshot {
    let data = TmallDataset::generate(tiny_data_config());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    if epochs > 0 {
        let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    }
    let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
    ModelSnapshot::new(version, data, model, index)
}

fn start_server(cfg: ServeConfig, snap: ModelSnapshot) -> (ServeHandle, Arc<ModelManager>) {
    let manager = Arc::new(ModelManager::new(snap));
    let handle = serve(cfg, Arc::clone(&manager)).expect("bind ephemeral port");
    (handle, manager)
}

#[test]
fn mixed_cold_warm_traffic_matches_direct_model_calls() {
    let (mut handle, manager) = start_server(ServeConfig::default(), snapshot(1, 1));
    let snap = manager.load();
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    assert_eq!(client.health().unwrap(), 1);

    // Warm items 0..5 past the default threshold via the wire.
    let warm_items: Vec<u32> = (0..5).collect();
    for _ in 0..ServeConfig::default().warm_threshold {
        client.record_interactions(&warm_items).unwrap();
    }

    // Forced paths are exact.
    let items: Vec<u32> = (0..20).collect();
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, snap.score_cold(&items)),
        other => panic!("unexpected {other:?}"),
    }
    match client.score_warm_item(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, snap.score_warm(&items)),
        other => panic!("unexpected {other:?}"),
    }

    // Policy-routed scoring: items 0..5 take the warm path, the rest cold,
    // each slot matching the corresponding direct call exactly.
    match client.score(&items).unwrap() {
        Response::RoutedScores { scores, warm } => {
            let cold_direct = snap.score_cold(&items);
            let warm_direct = snap.score_warm(&items);
            for (i, item) in items.iter().enumerate() {
                let expect_warm = *item < 5;
                assert_eq!(warm[i], expect_warm, "routing of item {item}");
                let expected = if expect_warm { warm_direct[i] } else { cold_direct[i] };
                assert_eq!(scores[i], expected, "score of item {item}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn topk_returns_best_routed_scores_in_order() {
    let (mut handle, manager) = start_server(ServeConfig::default(), snapshot(1, 1));
    let snap = manager.load();
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    let items: Vec<u32> = (10..40).collect();
    let direct = snap.score_cold(&items);
    match client.topk(&items, 5).unwrap() {
        Response::TopK(winners) => {
            assert_eq!(winners.len(), 5);
            let mut ranked: Vec<(u32, f32)> = items.iter().copied().zip(direct).collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            assert_eq!(winners, ranked[..5].to_vec());
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn invalid_requests_get_errors_and_stats_account_traffic() {
    let cfg = ServeConfig { max_request_items: 16, ..ServeConfig::default() };
    let (mut handle, _manager) = start_server(cfg, snapshot(3, 0));
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    // Unknown item id.
    match client.score_new_arrival(&[9_999]).unwrap() {
        Response::Error(msg) => assert!(msg.contains("out of range"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    // Oversized request.
    let big: Vec<u32> = (0..17).collect();
    match client.score(&big).unwrap() {
        Response::Error(msg) => assert!(msg.contains("limit"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    // Valid traffic for the counters.
    client.score_new_arrival(&[1, 2, 3]).unwrap();
    client.score_new_arrival(&[4]).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.model_version, 3);
    let cold = stats.endpoint("score_new_arrival").unwrap();
    assert_eq!(cold.requests, 3, "two ok + one error");
    assert_eq!(cold.errors, 1);
    assert!(cold.p50_ns > 0, "latency histogram populated");
    assert_eq!(stats.endpoint("score").unwrap().errors, 1);
    assert!(stats.batches >= 2, "scoring went through the batcher");
    handle.shutdown();
}

#[test]
fn saturated_queue_sheds_with_overloaded_over_the_wire() {
    // A queue smaller than one request: every scoring request sheds, which
    // exercises the full TCP shed path deterministically.
    let cfg = ServeConfig { queue_capacity: 4, ..ServeConfig::default() };
    let (mut handle, _manager) = start_server(cfg, snapshot(1, 0));
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    let items: Vec<u32> = (0..8).collect();
    match client.score_new_arrival(&items).unwrap() {
        Response::Overloaded => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Small requests still fit and succeed.
    match client.score_new_arrival(&[0, 1]).unwrap() {
        Response::Scores(scores) => assert_eq!(scores.len(), 2),
        other => panic!("unexpected {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.endpoint("score_new_arrival").unwrap().shed, 1);
    handle.shutdown();
}

#[test]
fn client_pausing_mid_frame_stays_synchronized() {
    // A read timeout far shorter than the client's mid-frame pauses: the
    // server must buffer the partial frame across timeouts instead of
    // discarding consumed bytes and misparsing the remainder.
    let cfg = ServeConfig { read_timeout: Duration::from_millis(5), ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 1));
    let snap = manager.load();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let items: Vec<u32> = (0..6).collect();
    let payload = Request::ScoreNewArrival { items: items.clone() }.encode();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);

    // Dribble the frame in three writes: mid-length-prefix, mid-payload,
    // rest — each pause several read timeouts long.
    for part in [&frame[..2], &frame[2..7], &frame[7..]] {
        stream.write_all(part).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    match Response::decode(read_frame(&mut stream).unwrap().unwrap()).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, snap.score_cold(&items)),
        other => panic!("unexpected {other:?}"),
    }

    // The same connection keeps working — the stream never desynchronized.
    write_frame(&mut stream, &Request::Health.encode()).unwrap();
    match Response::decode(read_frame(&mut stream).unwrap().unwrap()).unwrap() {
        Response::Health { ok, model_version } => {
            assert!(ok);
            assert_eq!(model_version, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn malformed_frames_are_accounted_separately_from_real_endpoints() {
    let (mut handle, _manager) = start_server(ServeConfig::default(), snapshot(1, 0));

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    write_frame(&mut stream, &[0xff]).unwrap(); // unknown opcode
    match Response::decode(read_frame(&mut stream).unwrap().unwrap()).unwrap() {
        Response::Error(msg) => assert!(msg.contains("bad request"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }

    let mut client = ServeClient::connect(handle.local_addr()).unwrap();
    client.health().unwrap();
    let stats = client.stats().unwrap();
    let malformed = stats.endpoint("malformed").unwrap();
    assert_eq!((malformed.requests, malformed.errors), (1, 1));
    let health = stats.endpoint("health").unwrap();
    assert_eq!(health.errors, 0, "malformed traffic must not pollute health");
    handle.shutdown();
}

#[test]
fn hot_swap_mid_load_serves_both_versions_and_never_errors() {
    // Single shard: one batch scores the whole request against one
    // snapshot load, so every answer is exactly one model version.
    hot_swap_mid_load(ServeConfig::default(), true);
}

#[test]
fn sharded_hot_swap_mid_load_keeps_every_slot_on_a_published_version() {
    // Under scatter-gather a request can straddle the publish instant:
    // shard A scores its bucket before the flip, shard B after. That is
    // the same semantics a per-shard canary creates on purpose, so the
    // invariant is per slot, not per response: each slot is bit-exactly
    // one of the two published versions — never a blend within a slot,
    // never an error — and the fleet converges to v2.
    hot_swap_mid_load(ServeConfig { shards: 3, event_threads: 2, ..ServeConfig::default() }, false);
}

#[test]
fn sharded_delta_publish_mid_load_keeps_every_slot_on_a_published_version() {
    // Same invariant as the full hot-swap test, but the mid-load publish
    // is a *delta*: a trained replacement model patched in over 30
    // changed items through `ModelManager::publish_delta`. Every slot of
    // every in-flight scatter-gather must land bit-exactly on one of the
    // two published versions — zero errored slots — and new connections
    // converge to the delta snapshot.
    let cfg = ServeConfig { shards: 3, event_threads: 2, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 0));
    let v1 = manager.load();

    // The replacement model, trained over the same catalogue.
    let data = TmallDataset::generate(tiny_data_config());
    let mut model_b = Atnn::new(AtnnConfig::scaled().with_seed(5), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model_b, &data, None).expect("training runs");
    let model_b = Arc::new(model_b);
    let changed: Vec<u32> = (0..30).collect();

    // Delta builds are deterministic, so an oracle built from the same
    // previous snapshot predicts the published scores bit-for-bit.
    let (oracle, _) =
        ModelSnapshot::delta_from(&v1, 2, Arc::clone(&model_b), v1.index.clone(), &changed)
            .expect("valid delta");
    let items: Vec<u32> = (0..10).collect();
    let v1_scores = v1.score_cold(&items);
    let v2_scores = oracle.score_cold(&items);
    assert_ne!(v1_scores, v2_scores, "the delta must actually move the queried rows");

    let addr = handle.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let requests_ok = Arc::new(AtomicU64::new(0));
    let saw_v2 = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..3 {
            let stop = Arc::clone(&stop);
            let requests_ok = Arc::clone(&requests_ok);
            let saw_v2 = Arc::clone(&saw_v2);
            let (items, v1_scores, v2_scores) = (&items, &v1_scores, &v2_scores);
            workers.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                while !stop.load(Ordering::Relaxed) {
                    match client.score_new_arrival(items).expect("request failed during delta") {
                        Response::Scores(scores) => {
                            if &scores == v2_scores {
                                saw_v2.store(true, Ordering::Relaxed);
                            } else {
                                for (i, &s) in scores.iter().enumerate() {
                                    assert!(
                                        s == v1_scores[i] || s == v2_scores[i],
                                        "slot {i} matches neither version: {s}"
                                    );
                                }
                            }
                            requests_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected response during delta publish: {other:?}"),
                    }
                }
            }));
        }

        std::thread::sleep(Duration::from_millis(50));
        let report = manager
            .publish_delta(2, Arc::clone(&model_b), v1.index.clone(), &changed)
            .expect("delta publish accepted");
        assert_eq!(report.changed, 30);
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker panicked");
        }
    });

    assert!(requests_ok.load(Ordering::Relaxed) > 0, "no traffic flowed");
    assert!(saw_v2.load(Ordering::Relaxed), "post-publish scores never reflected the delta");
    assert_eq!(manager.version(), 2);

    // New connections see exactly the oracle's scores — and an unchanged
    // item still scores bit-identically to v1 (its row was never touched).
    let mut client = ServeClient::connect(addr).unwrap();
    assert_eq!(client.health().unwrap(), 2);
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, v2_scores),
        other => panic!("unexpected {other:?}"),
    }
    let untouched: Vec<u32> = (140..150).collect();
    match client.score_new_arrival(&untouched).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, v1.score_cold(&untouched)),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

fn hot_swap_mid_load(cfg: ServeConfig, atomic_across_shards: bool) {
    let (mut handle, manager) = start_server(cfg, snapshot(1, 0));
    let v1 = manager.load();
    let v2_snap = snapshot(2, 2);
    let items: Vec<u32> = (0..10).collect();
    let v1_scores = v1.score_cold(&items);
    let v2_scores = v2_snap.score_cold(&items);
    assert_ne!(v1_scores, v2_scores, "retraining must actually move the weights");

    let addr = handle.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let requests_ok = Arc::new(AtomicU64::new(0));
    let saw_v2 = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..3 {
            let stop = Arc::clone(&stop);
            let requests_ok = Arc::clone(&requests_ok);
            let saw_v2 = Arc::clone(&saw_v2);
            let (items, v1_scores, v2_scores) = (&items, &v1_scores, &v2_scores);
            workers.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                while !stop.load(Ordering::Relaxed) {
                    match client.score_new_arrival(items).expect("request failed during swap") {
                        Response::Scores(scores) => {
                            if &scores == v2_scores {
                                saw_v2.store(true, Ordering::Relaxed);
                            } else if atomic_across_shards {
                                // Single shard: every answer is exactly one
                                // model version — never a blend.
                                assert_eq!(&scores, v1_scores, "torn or unknown scores");
                            } else {
                                // Sharded: each slot is one version or the
                                // other, bit-exactly — never garbage.
                                for (i, &s) in scores.iter().enumerate() {
                                    assert!(
                                        s == v1_scores[i] || s == v2_scores[i],
                                        "slot {i} matches neither version: {s}"
                                    );
                                }
                            }
                            requests_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected response during swap: {other:?}"),
                    }
                }
            }));
        }

        // Let traffic flow, then publish the retrained snapshot mid-load.
        std::thread::sleep(Duration::from_millis(50));
        manager.publish(v2_snap).expect("same catalogue, publish accepted");
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker panicked");
        }
    });

    assert!(requests_ok.load(Ordering::Relaxed) > 0, "no traffic flowed");
    assert!(saw_v2.load(Ordering::Relaxed), "post-swap scores never reflected the new weights");
    assert_eq!(manager.version(), 2);

    // New connections see only v2.
    let mut client = ServeClient::connect(addr).unwrap();
    assert_eq!(client.health().unwrap(), 2);
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, v2_scores),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn artifact_reload_through_manager_swaps_the_served_model() {
    let (mut handle, manager) = start_server(ServeConfig::default(), snapshot(1, 0));
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();
    assert_eq!(client.health().unwrap(), 1);

    // A "training job" writes a fresh artifact...
    let retrained = snapshot(9, 2);
    let artifact =
        ModelArtifact::capture(&retrained.model, &tiny_data_config(), &retrained.index, 9);
    let path = std::env::temp_dir().join(format!("atnn_e2e_reload_{}.atnn", std::process::id()));
    artifact.save_to(&path).unwrap();

    // ...and the running server reloads it without restarting.
    let items: Vec<u32> = (0..12).collect();
    let expected = retrained.score_cold(&items);
    assert_eq!(manager.reload_from(&path).unwrap(), 9);
    std::fs::remove_file(&path).unwrap();

    assert_eq!(client.health().unwrap(), 9, "existing connection sees the new version");
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, expected),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Sharded serving: scatter-gather correctness, pipelining, slow clients.
// ---------------------------------------------------------------------------

#[test]
fn sharded_scoring_is_bit_identical_to_direct_calls() {
    let cfg = ServeConfig { shards: 3, event_threads: 2, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 1));
    let snap = manager.load();
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    let warm_items: Vec<u32> = (0..5).collect();
    for _ in 0..ServeConfig::default().warm_threshold {
        client.record_interactions(&warm_items).unwrap();
    }

    // Items spread over all three shards; the gathered answer must be the
    // same bits as one snapshot scoring everything in a single pass.
    let items: Vec<u32> = (0..20).collect();
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, snap.score_cold(&items)),
        other => panic!("unexpected {other:?}"),
    }
    match client.score(&items).unwrap() {
        Response::RoutedScores { scores, warm } => {
            let cold_direct = snap.score_cold(&items);
            let warm_direct = snap.score_warm(&items);
            for (i, item) in items.iter().enumerate() {
                let expect_warm = *item < 5;
                assert_eq!(warm[i], expect_warm, "routing of item {item}");
                let expected = if expect_warm { warm_direct[i] } else { cold_direct[i] };
                assert_eq!(scores[i], expected, "score of item {item}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    match client.topk(&items, 7).unwrap() {
        Response::TopK(winners) => {
            let cold = snap.score_cold(&items);
            let warm = snap.score_warm(&items);
            let mut ranked: Vec<(u32, f32)> = items
                .iter()
                .map(|&it| (it, if it < 5 { warm[it as usize] } else { cold[it as usize] }))
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            assert_eq!(winners, ranked[..7].to_vec());
        }
        other => panic!("unexpected {other:?}"),
    }

    // Per-shard telemetry: every shard the hash touched actually dispatched.
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 3);
    let touched: HashSet<usize> = items.iter().map(|&it| shard_of(it, 3)).collect();
    assert!(touched.len() >= 2, "items 0..20 all hashed to one shard — widen the range");
    for &s in &touched {
        assert!(stats.shards[s].dispatched > 0, "shard {s} never dispatched");
    }
    assert_eq!(stats.accept_errors, 0);
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_strictly_in_order() {
    // Inline endpoints (Health) complete immediately; scoring completes on
    // a shard thread later. The connection must still answer in arrival
    // order — a server that released whichever finished first would emit
    // the Health replies ahead of the Scores.
    let cfg = ServeConfig { shards: 2, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 1));
    let snap = manager.load();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut requests = Vec::new();
    for item in 0..6u32 {
        requests.push(Request::ScoreNewArrival { items: vec![item] });
        requests.push(Request::Health);
    }
    for req in &requests {
        write_frame(&mut stream, &req.encode()).unwrap();
    }
    for (i, req) in requests.iter().enumerate() {
        let resp = Response::decode(read_frame(&mut stream).unwrap().unwrap()).unwrap();
        match (req, resp) {
            (Request::ScoreNewArrival { items }, Response::Scores(scores)) => {
                assert_eq!(scores, snap.score_cold(items), "slot {i}");
            }
            (Request::Health, Response::Health { ok, model_version }) => {
                assert!(ok, "slot {i}");
                assert_eq!(model_version, 1, "slot {i}");
            }
            (req, resp) => panic!("slot {i}: {req:?} answered with {resp:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn per_shard_canary_swap_routes_by_item_hash() {
    let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 1));
    let v1 = manager.load();
    let v2 = snapshot(2, 2);
    let items: Vec<u32> = (0..30).collect();
    let v1_scores = v1.score_cold(&items);
    let v2_scores = v2.score_cold(&items);
    assert_ne!(v1_scores, v2_scores, "retraining must actually move the weights");

    // Canary the retrained model onto shard 1 only.
    assert!(manager.publish_to_shard(1, v2).unwrap());
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();
    assert_eq!(client.health().unwrap(), 1, "a canary must not bump the fleet version");

    // Each item scores with exactly the version of the shard it hashes to.
    for (i, &item) in items.iter().enumerate() {
        let expected = if shard_of(item, 3) == 1 { v2_scores[i] } else { v1_scores[i] };
        match client.score_new_arrival(&[item]).unwrap() {
            Response::Scores(scores) => assert_eq!(scores, vec![expected], "item {item}"),
            other => panic!("unexpected {other:?}"),
        }
    }
    let canaried = items.iter().filter(|&&it| shard_of(it, 3) == 1).count();
    assert!(
        canaried > 0 && canaried < items.len(),
        "hash put {canaried}/30 items on the canary shard — test proves nothing"
    );

    // A full publish erases the skew: every shard flips together.
    manager.publish(snapshot(2, 2)).unwrap();
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, v2_scores),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn sharded_topk_all_at_full_probe_matches_the_exact_oracle() {
    // `nprobe` far above `nlist` clamps to a full probe, which is an
    // exact exactly-once scan — so the sharded, ANN-served answer must be
    // bit-identical to the single-snapshot oracle, sigmoid applied to the
    // merged dot-space winners only.
    let cfg =
        ServeConfig { shards: 3, event_threads: 2, nprobe: usize::MAX, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 1));
    let snap = manager.load();
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    for k in [1usize, 7, 40, 150, 200] {
        let expected: Vec<(u32, f32)> = snap
            .topk_dots(k, usize::MAX, &|_| true)
            .into_iter()
            .map(|(id, dot)| (id, snap.index.score_from_dot(dot)))
            .collect();
        assert_eq!(expected.len(), k.min(150), "oracle covers the catalogue");
        match client.topk_all(k as u32).unwrap() {
            Response::TopK(winners) => assert_eq!(winners, expected, "k={k}"),
            other => panic!("k={k}: unexpected {other:?}"),
        }
    }

    // Winner scores are the real cold scores of those items.
    match client.topk_all(5).unwrap() {
        Response::TopK(winners) => {
            for &(id, score) in &winners {
                assert_eq!(score, snap.score_cold(&[id])[0], "item {id}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }

    // Oversized k is rejected before touching the shards.
    match client.topk_all(ServeConfig::default().max_request_items as u32 + 1).unwrap() {
        Response::Error(msg) => assert!(msg.contains("limit"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
    let stats = client.stats().unwrap();
    let ep = stats.endpoint("topk_all").unwrap();
    assert_eq!(ep.requests, 7, "6 retrievals + 1 rejected");
    assert_eq!(ep.errors, 1);
    handle.shutdown();
}

/// Same trained tiny model as [`snapshot`], served from int8 tables.
fn quantized_snapshot(version: u64, epochs: usize) -> ModelSnapshot {
    let data = TmallDataset::generate(tiny_data_config());
    let mut model = Atnn::new(AtnnConfig::scaled(), &data);
    if epochs > 0 {
        let opts = TrainOptions::builder().epochs(epochs).build().expect("valid options");
        CtrTrainer::new(opts).train(&mut model, &data, None).expect("training runs");
    }
    let index = PopularityIndex::build(&model, &data, &(0..40).collect::<Vec<_>>());
    ModelSnapshot::new_with_precision(version, data, model, index, Precision::Int8)
}

#[test]
fn quantized_fleet_serves_int8_tables_end_to_end() {
    // A 3-shard fleet over an int8 snapshot: every endpoint answers from
    // the quantized tables. Wire responses are compared bit-for-bit
    // against the *same quantized snapshot's* direct calls (determinism
    // through the fleet), and within tolerance of an f32 twin trained
    // identically (quantization error bound).
    let cfg =
        ServeConfig { shards: 3, event_threads: 2, nprobe: usize::MAX, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, quantized_snapshot(1, 1));
    let snap = manager.load();
    assert_eq!(snap.precision(), Precision::Int8);
    let f32_twin = snapshot(1, 1);
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    let items: Vec<u32> = (0..150).collect();
    let direct_cold = snap.score_cold(&items);
    let direct_warm = snap.score_warm(&items);
    match client.score_new_arrival(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, direct_cold, "fleet is deterministic"),
        other => panic!("unexpected {other:?}"),
    }
    match client.score_warm_item(&items).unwrap() {
        Response::Scores(scores) => assert_eq!(scores, direct_warm),
        other => panic!("unexpected {other:?}"),
    }
    for (i, (q, e)) in direct_cold.iter().zip(f32_twin.score_cold(&items)).enumerate() {
        assert!((q - e).abs() < 5e-3, "cold item {i}: int8 {q} vs f32 {e}");
    }

    // Catalogue-wide retrieval: the scatter-gather answer equals the
    // quantized snapshot's own full-probe ranking (sigmoid at the front),
    // and recalls the f32 oracle's winners.
    let expected: Vec<(u32, f32)> = snap
        .topk_dots(10, usize::MAX, &|_| true)
        .into_iter()
        .map(|(id, dot)| (id, snap.index.score_from_dot(dot)))
        .collect();
    let winners = match client.topk_all(10).unwrap() {
        Response::TopK(w) => w,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(winners, expected, "sharded int8 TopKAll is deterministic");
    let oracle: HashSet<u32> =
        f32_twin.topk_dots(10, usize::MAX, &|_| true).into_iter().map(|(id, _)| id).collect();
    let hits = winners.iter().filter(|(id, _)| oracle.contains(id)).count();
    assert!(hits >= 9, "int8 top-10 recalled only {hits}/10 of the f32 oracle");

    // The stats endpoint reports the compressed footprint.
    let stats = client.stats().unwrap();
    assert_eq!(stats.snapshot_bytes, snap.snapshot_bytes());
    assert_eq!(stats.snapshot_f32_bytes, snap.snapshot_f32_bytes());
    assert!(
        stats.snapshot_bytes * 2 < stats.snapshot_f32_bytes,
        "quantized tables must be reported compressed: {} vs {}",
        stats.snapshot_bytes,
        stats.snapshot_f32_bytes
    );
    handle.shutdown();
}

#[test]
fn artifact_ann_section_round_trips_bit_identical_topk_responses() {
    // Three servers over the same trained model: the live snapshot, an
    // artifact carrying the persisted ANN index, and a legacy-style
    // artifact without one (build-at-load fallback). The index build is
    // fully deterministic, so all three must answer TopKAll with the same
    // bits.
    let snap = snapshot(1, 1);
    let with_index = ModelArtifact::capture(&snap.model, &tiny_data_config(), &snap.index, 1)
        .with_ann(snap.encoded_ann().into());
    assert!(with_index.ann().is_some());
    let without_index = ModelArtifact::capture(&snap.model, &tiny_data_config(), &snap.index, 1);

    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let path_with = tmp.join(format!("atnn_e2e_ann_{pid}.atnn"));
    let path_without = tmp.join(format!("atnn_e2e_noann_{pid}.atnn"));
    with_index.save_to(&path_with).unwrap();
    without_index.save_to(&path_without).unwrap();

    let reloaded = ModelArtifact::load_from(&path_with).unwrap();
    assert_eq!(reloaded.ann(), with_index.ann(), "ann blob survives the file round trip");

    let (mut h_live, _m) = start_server(ServeConfig::default(), snap);
    let (mut h_with, _m) =
        start_server(ServeConfig::default(), ModelSnapshot::from_artifact(&reloaded).unwrap());
    let (mut h_without, _m) = start_server(
        ServeConfig::default(),
        ModelSnapshot::from_artifact(&ModelArtifact::load_from(&path_without).unwrap()).unwrap(),
    );
    std::fs::remove_file(&path_with).unwrap();
    std::fs::remove_file(&path_without).unwrap();

    let mut live = ServeClient::connect(h_live.local_addr()).unwrap();
    let mut with = ServeClient::connect(h_with.local_addr()).unwrap();
    let mut without = ServeClient::connect(h_without.local_addr()).unwrap();
    for k in [1u32, 10, 64] {
        let reference = match live.topk_all(k).unwrap() {
            Response::TopK(w) => w,
            other => panic!("k={k}: unexpected {other:?}"),
        };
        assert_eq!(reference.len(), k as usize);
        match with.topk_all(k).unwrap() {
            Response::TopK(w) => assert_eq!(w, reference, "persisted index, k={k}"),
            other => panic!("k={k}: unexpected {other:?}"),
        }
        match without.topk_all(k).unwrap() {
            Response::TopK(w) => assert_eq!(w, reference, "build-at-load fallback, k={k}"),
            other => panic!("k={k}: unexpected {other:?}"),
        }
    }
    h_live.shutdown();
    h_with.shutdown();
    h_without.shutdown();
}

/// Caps every read at one byte: the pathological slow client.
struct OneByteReader<R>(R);

impl<R: Read> Read for OneByteReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(1);
        self.0.read(&mut buf[..n])
    }
}

#[test]
fn dribbling_reader_does_not_stall_other_connections() {
    // One event thread on purpose: the slow and fast connections share it,
    // so any blocking write (or busy-wait on the clogged socket) shows up
    // as the fast client stalling.
    let cfg = ServeConfig {
        shards: 2,
        event_threads: 1,
        queue_capacity: 1_000_000,
        ..ServeConfig::default()
    };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 0));
    let snap = manager.load();
    let addr = handle.local_addr();

    // The slow connection pipelines enough replies (~300 KiB) to overflow
    // both the per-connection out buffer high-water mark and the socket's
    // send buffer, while reading nothing back yet.
    const PIPELINED: usize = 400;
    let items: Vec<u32> = (0..150).collect();
    let slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let mut writer_stream = slow.try_clone().unwrap();
    let payload = Request::ScoreNewArrival { items: items.clone() }.encode();
    let writer = std::thread::spawn(move || {
        for _ in 0..PIPELINED {
            write_frame(&mut writer_stream, &payload).unwrap();
        }
    });
    std::thread::sleep(Duration::from_millis(100));

    // Meanwhile a well-behaved client on the same event thread must keep
    // getting answers. A stalled loop turns this into a multi-minute hang.
    let started = Instant::now();
    let mut fast = ServeClient::connect(addr).unwrap();
    for _ in 0..50 {
        match fast.score_new_arrival(&[0, 1, 2]).unwrap() {
            Response::Scores(scores) => assert_eq!(scores, snap.score_cold(&[0, 1, 2])),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "event loop stalled behind the slow reader: {:?}",
        started.elapsed()
    );

    // Now drain the clogged connection one byte per read() call. Every
    // reply must come back intact, in order, and bit-exact.
    let expected = snap.score_cold(&items);
    let mut one = OneByteReader(slow);
    for i in 0..PIPELINED {
        match Response::decode(read_frame(&mut one).unwrap().unwrap()).unwrap() {
            Response::Scores(scores) => assert_eq!(scores, expected, "reply {i}"),
            other => panic!("reply {i}: unexpected {other:?}"),
        }
    }
    writer.join().unwrap();
    handle.shutdown();
}

#[test]
fn proptest_sharded_score_and_topk_match_brute_force() {
    use proptest::collection;
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    // One catalogue behind four shards; property-based generation drives
    // the request composition (which items, how many, what k — duplicates
    // included). The reference is the snapshot scoring everything in one
    // pass plus a full sort — the gathered answer must match it bit for
    // bit, for every composition.
    let cfg = ServeConfig { shards: 4, event_threads: 2, ..ServeConfig::default() };
    let (mut handle, manager) = start_server(cfg, snapshot(1, 0));
    let snap = manager.load();
    let mut client = ServeClient::connect(handle.local_addr()).unwrap();

    let strategy = (collection::vec(0u32..150, 1..=64), 0u32..71);
    let mut rng = TestRng::from_name("proptest_sharded_score_and_topk_match_brute_force");
    for case in 0..24 {
        let (items, k) = strategy.sample(&mut rng);
        let direct = snap.score_cold(&items);
        match client.score(&items).unwrap() {
            Response::RoutedScores { scores, warm } => {
                assert_eq!(scores, direct, "case {case}: {items:?}");
                assert!(warm.iter().all(|&w| !w), "case {case}: nothing was warmed");
            }
            other => panic!("case {case}: unexpected {other:?}"),
        }
        match client.topk(&items, k).unwrap() {
            Response::TopK(winners) => {
                let mut ranked: Vec<(u32, f32)> = items.iter().copied().zip(direct).collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                ranked.truncate(k as usize);
                assert_eq!(winners, ranked, "case {case}: k={k} items={items:?}");
            }
            other => panic!("case {case}: unexpected {other:?}"),
        }
    }
    handle.shutdown();
}
