//! Property-based parity pins for the delta-publish pipeline.
//!
//! The contract under test: for a new model B replacing a snapshot built
//! from model A over the same catalogue, a delta publish of changed set S
//! must be *exactly* what a frozen-structure full recompute would produce
//! whose inputs only differ on S —
//!
//! - every changed row equals, bit for bit, the row a genuine
//!   whole-catalogue rebuild from B computes (the forward pass is
//!   batch-invariant);
//! - every unchanged row is shared with the previous snapshot, bit for
//!   bit (copy-on-write, never recomputed);
//! - the IVF index reaches the same inverted lists byte-for-byte as
//!   re-deriving *all* assignments under the same frozen centroids
//!   (skipping unchanged rows changes nothing), which also fixes
//!   `TopKAll` winners and their tie order;
//! - on an int8 snapshot, in-place row re-quantization produces codes
//!   identical to re-quantizing under the same frozen anchor.
//!
//! Composition is the single-code-path oracle: patching S as a sequence of
//! sub-deltas must equal patching S in one shot, so the pipeline cannot be
//! leaking any dependence on rows outside S.

use std::sync::Arc;

use atnn_core::{Atnn, AtnnConfig, CtrTrainer, PopularityIndex, TrainOptions};
use atnn_data::tmall::{TmallConfig, TmallDataset};
use atnn_serve::{ModelSnapshot, Precision};
use proptest::collection;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

const ITEMS: usize = 150;

/// A v1 snapshot from an untrained model plus a trained replacement model
/// over the same catalogue — the delta-publish setting.
fn fixture(precision: Precision) -> (ModelSnapshot, Arc<Atnn>) {
    let cfg = TmallConfig {
        num_users: 60,
        num_items: ITEMS,
        num_interactions: 1_200,
        ..TmallConfig::tiny()
    };
    let data = TmallDataset::generate(cfg);
    let model_a = Atnn::new(AtnnConfig::scaled(), &data);
    let mut model_b = Atnn::new(AtnnConfig::scaled().with_seed(11), &data);
    let opts = TrainOptions::builder().epochs(1).build().expect("valid options");
    CtrTrainer::new(opts).train(&mut model_b, &data, None).expect("training runs");
    let index = PopularityIndex::build(&model_a, &data, &(0..40).collect::<Vec<_>>());
    (ModelSnapshot::new_with_precision(1, data, model_a, index, precision), Arc::new(model_b))
}

fn delta(prev: &ModelSnapshot, version: u64, model: &Arc<Atnn>, changed: &[u32]) -> ModelSnapshot {
    ModelSnapshot::delta_from(prev, version, Arc::clone(model), prev.index.clone(), changed)
        .expect("valid delta")
        .0
}

#[test]
fn proptest_f32_delta_rows_match_the_full_rebuild_bitwise() {
    let (prev, model_b) = fixture(Precision::F32);
    // The genuine full-rebuild oracle from B: changed rows must land on
    // its rows exactly; unchanged rows must stay on prev's.
    let full = ModelSnapshot::new_shared(
        2,
        Arc::clone(&prev.data),
        Arc::clone(&model_b),
        prev.index.clone(),
        Precision::F32,
    );
    let strategy = collection::vec(0u32..ITEMS as u32, 1..=40);
    let mut rng = TestRng::from_name("proptest_f32_delta_rows_match_the_full_rebuild_bitwise");
    for case in 0..16 {
        let mut changed = strategy.sample(&mut rng);
        changed.sort_unstable();
        changed.dedup();
        let snap = delta(&prev, 2, &model_b, &changed);
        for (which, d, f, p) in [
            ("cold", snap.cold_vecs(), full.cold_vecs(), prev.cold_vecs()),
            ("warm", snap.warm_vecs(), full.warm_vecs(), prev.warm_vecs()),
        ] {
            let (d, f, p) = (d.unwrap(), f.unwrap(), p.unwrap());
            for i in 0..ITEMS {
                let (oracle, from) = if changed.contains(&(i as u32)) {
                    (f.row(i), "full rebuild")
                } else {
                    (p.row(i), "previous snapshot")
                };
                assert_eq!(d.row(i), oracle, "case {case}: {which} row {i} != {from}");
            }
        }
    }
}

#[test]
fn proptest_f32_delta_composition_pins_ivf_lists_and_topk_tie_order() {
    let (prev, model_b) = fixture(Precision::F32);
    // Split-vs-one-shot: same changed set, different publish sequences.
    // Sets stay small enough that the drift budget never trips — a
    // k-means rebuild re-trains the centroids, which deliberately breaks
    // pure composition.
    let strategy = (collection::vec(0u32..ITEMS as u32, 2..=24), 0usize..25);
    let mut rng =
        TestRng::from_name("proptest_f32_delta_composition_pins_ivf_lists_and_topk_tie_order");
    for case in 0..12 {
        let (mut union, split) = strategy.sample(&mut rng);
        union.sort_unstable();
        union.dedup();
        let cut = split.min(union.len());
        let (s1, s2) = union.split_at(cut);

        let one_shot = delta(&prev, 3, &model_b, &union);
        let two_step = if s1.is_empty() {
            delta(&prev, 3, &model_b, s2)
        } else if s2.is_empty() {
            delta(&prev, 3, &model_b, s1)
        } else {
            delta(&delta(&prev, 2, &model_b, s1), 3, &model_b, s2)
        };

        assert_eq!(
            two_step.encoded_ann(),
            one_shot.encoded_ann(),
            "case {case}: IVF structure must be byte-identical"
        );
        let items: Vec<u32> = (0..ITEMS as u32).collect();
        assert_eq!(two_step.score_cold(&items), one_shot.score_cold(&items), "case {case}");
        assert_eq!(two_step.score_warm(&items), one_shot.score_warm(&items), "case {case}");
        // TopKAll semantics: winners *and* tie order, at full probe (the
        // exact scan) and at a pruned probe (where list membership shows).
        for nprobe in [1, one_shot.ann().nlist()] {
            assert_eq!(
                two_step.topk_dots(ITEMS, nprobe, &|_| true),
                one_shot.topk_dots(ITEMS, nprobe, &|_| true),
                "case {case}: nprobe={nprobe}"
            );
        }
    }
}

#[test]
fn proptest_int8_delta_codes_match_the_frozen_anchor_recompute() {
    let (prev, model_b) = fixture(Precision::Int8);
    let strategy = (collection::vec(0u32..ITEMS as u32, 2..=24), 0usize..25);
    let mut rng = TestRng::from_name("proptest_int8_delta_codes_match_the_frozen_anchor_recompute");
    for case in 0..12 {
        let (mut union, split) = strategy.sample(&mut rng);
        union.sort_unstable();
        union.dedup();
        let cut = split.min(union.len());
        let (s1, s2) = union.split_at(cut);

        let one_shot = delta(&prev, 3, &model_b, &union);
        let two_step = if s1.is_empty() {
            delta(&prev, 3, &model_b, s2)
        } else if s2.is_empty() {
            delta(&prev, 3, &model_b, s1)
        } else {
            delta(&delta(&prev, 2, &model_b, s1), 3, &model_b, s2)
        };

        let (tc, tw) = two_step.quant_tables().expect("int8 snapshot");
        let (oc, ow) = one_shot.quant_tables().expect("int8 snapshot");
        assert_eq!(tc.to_quantized(), oc.to_quantized(), "case {case}: cold codes");
        assert_eq!(tw.to_quantized(), ow.to_quantized(), "case {case}: warm codes");
        assert_eq!(two_step.encoded_ann(), one_shot.encoded_ann(), "case {case}: IVF bytes");
        let items: Vec<u32> = (0..ITEMS as u32).collect();
        assert_eq!(two_step.score_cold(&items), one_shot.score_cold(&items), "case {case}");
        assert_eq!(two_step.score_warm(&items), one_shot.score_warm(&items), "case {case}");
        // Unchanged rows' codes are shared with prev, untouched.
        let (pc, _) = prev.quant_tables().expect("int8 snapshot");
        let (pcq, ocq) = (pc.to_quantized(), oc.to_quantized());
        for i in (0..ITEMS).filter(|&i| !union.contains(&(i as u32))) {
            let mut a = vec![0.0f32; pcq.cols()];
            let mut b = vec![0.0f32; pcq.cols()];
            pcq.dequantize_row_into(i, &mut a);
            ocq.dequantize_row_into(i, &mut b);
            assert_eq!(a, b, "case {case}: unchanged row {i} must keep prev's codes");
        }
    }
}
