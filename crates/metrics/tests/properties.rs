//! Property-based tests for metric invariants.

use atnn_metrics::{auc, kendall_tau, log_loss, mae, ndcg_at, quantile_lift, rmse, spearman};
use proptest::prelude::*;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    proptest::collection::vec((0.0f32..1.0, any::<bool>()), 4..80)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #[test]
    fn auc_is_in_unit_interval((scores, labels) in scores_and_labels()) {
        if let Some(a) = auc(&scores, &labels) {
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform((scores, labels) in scores_and_labels()) {
        let a1 = auc(&scores, &labels);
        // Strictly increasing transform preserves order and ties.
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s).exp() + 1.0).collect();
        let a2 = auc(&transformed, &labels);
        match (a1, a2) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "definedness must agree"),
        }
    }

    #[test]
    fn auc_flips_under_negation((scores, labels) in scores_and_labels()) {
        if let Some(a) = auc(&scores, &labels) {
            let neg: Vec<f32> = scores.iter().map(|&s| -s).collect();
            let b = auc(&neg, &labels).unwrap();
            prop_assert!((a + b - 1.0).abs() < 1e-9, "auc(s) + auc(-s) == 1");
        }
    }

    #[test]
    fn auc_label_swap_complements((scores, labels) in scores_and_labels()) {
        if let Some(a) = auc(&scores, &labels) {
            let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
            let b = auc(&scores, &flipped).unwrap();
            prop_assert!((a + b - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mae_and_rmse_are_nonnegative_and_zero_iff_equal(xs in proptest::collection::vec(-50.0f32..50.0, 1..40)) {
        prop_assert_eq!(mae(&xs, &xs), Some(0.0));
        prop_assert_eq!(rmse(&xs, &xs), Some(0.0));
        let shifted: Vec<f32> = xs.iter().map(|&x| x + 1.0).collect();
        prop_assert!((mae(&xs, &shifted).unwrap() - 1.0).abs() < 1e-5);
        prop_assert!(rmse(&xs, &shifted).unwrap() >= mae(&xs, &shifted).unwrap() - 1e-9,
            "RMSE dominates MAE");
    }

    #[test]
    fn log_loss_is_minimized_by_true_probabilities((_, labels) in scores_and_labels()) {
        let truth: Vec<f32> = labels.iter().map(|&y| if y { 0.9 } else { 0.1 }).collect();
        let wrong: Vec<f32> = labels.iter().map(|&y| if y { 0.1 } else { 0.9 }).collect();
        prop_assert!(log_loss(&truth, &labels).unwrap() < log_loss(&wrong, &labels).unwrap());
    }

    #[test]
    fn spearman_is_symmetric_and_bounded(pairs in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 3..40)) {
        let (a, b): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        if let Some(s) = spearman(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
            prop_assert!((s - spearman(&b, &a).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn kendall_matches_spearman_sign_for_clean_orders(n in 3usize..20, flip in any::<bool>()) {
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = if flip {
            (0..n).map(|i| -(i as f32)).collect()
        } else {
            a.clone()
        };
        let tau = kendall_tau(&a, &b).unwrap();
        let rho = spearman(&a, &b).unwrap();
        prop_assert_eq!(tau, if flip { -1.0 } else { 1.0 });
        prop_assert!((rho - tau).abs() < 1e-9);
    }

    #[test]
    fn ndcg_is_bounded_and_one_for_ideal(gains in proptest::collection::vec(0.0f64..10.0, 2..30)) {
        prop_assume!(gains.iter().any(|&g| g > 0.0));
        let ideal_scores: Vec<f32> = gains.iter().map(|&g| g as f32).collect();
        let n = ideal_scores.len();
        let v = ndcg_at(&ideal_scores, &gains, n).unwrap();
        prop_assert!((v - 1.0).abs() < 1e-9, "scoring by gain is ideal: {v}");
        // Any other scoring is bounded by 1.
        let reversed: Vec<f32> = ideal_scores.iter().map(|&s| -s).collect();
        let w = ndcg_at(&reversed, &gains, n).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
    }

    #[test]
    fn lift_groups_partition_items(n in 5usize..60, k in 1usize..6) {
        prop_assume!(k <= n);
        let scores: Vec<f32> = (0..n).map(|i| (i * 7 % 13) as f32).collect();
        let outcomes: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let t = quantile_lift(&scores, &outcomes, k).unwrap();
        prop_assert_eq!(t.group_sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(t.groups.len(), k);
        // Weighted group means recombine to the overall mean.
        let recombined: f64 = t.groups.iter().zip(&t.group_sizes)
            .map(|(g, &s)| g[0] * s as f64)
            .sum::<f64>() / n as f64;
        prop_assert!((recombined - t.overall[0]).abs() < 1e-9);
    }
}
