//! Probability calibration diagnostics.

/// Equal-width calibration bins over predicted probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Per-bin `(mean predicted, observed positive rate, count)`.
    pub bins: Vec<(f64, f64, usize)>,
    /// Expected Calibration Error: count-weighted mean |pred - observed|.
    pub ece: f64,
}

impl CalibrationReport {
    /// Bins `(prob, label)` pairs into `n_bins` equal-width probability
    /// buckets. Returns `None` for empty/mismatched inputs or `n_bins == 0`.
    pub fn compute(prob: &[f32], labels: &[bool], n_bins: usize) -> Option<Self> {
        if prob.len() != labels.len() || prob.is_empty() || n_bins == 0 {
            return None;
        }
        let mut sum_pred = vec![0.0f64; n_bins];
        let mut sum_pos = vec![0.0f64; n_bins];
        let mut count = vec![0usize; n_bins];
        for (&p, &y) in prob.iter().zip(labels) {
            let b = ((p as f64 * n_bins as f64) as usize).min(n_bins - 1);
            sum_pred[b] += p as f64;
            sum_pos[b] += y as u8 as f64;
            count[b] += 1;
        }
        let mut bins = Vec::with_capacity(n_bins);
        let mut ece = 0.0;
        for b in 0..n_bins {
            if count[b] == 0 {
                bins.push((0.0, 0.0, 0));
                continue;
            }
            let mp = sum_pred[b] / count[b] as f64;
            let op = sum_pos[b] / count[b] as f64;
            ece += (mp - op).abs() * count[b] as f64 / prob.len() as f64;
            bins.push((mp, op, count[b]));
        }
        Some(CalibrationReport { bins, ece })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_predictions_have_zero_ece() {
        // 10 samples at p=0.3 with 3 positives; 10 at p=0.7 with 7.
        let mut prob = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            prob.push(0.3);
            labels.push(i < 3);
            prob.push(0.7);
            labels.push(i < 7);
        }
        let r = CalibrationReport::compute(&prob, &labels, 10).unwrap();
        assert!(r.ece < 1e-7, "ece={}", r.ece);
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        let prob = vec![0.99f32; 100];
        let labels: Vec<bool> = (0..100).map(|i| i < 50).collect();
        let r = CalibrationReport::compute(&prob, &labels, 10).unwrap();
        assert!((r.ece - 0.49).abs() < 0.01, "ece={}", r.ece);
    }

    #[test]
    fn bin_edges_clamp_p_equal_one() {
        let r = CalibrationReport::compute(&[1.0], &[true], 4).unwrap();
        assert_eq!(r.bins[3].2, 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(CalibrationReport::compute(&[], &[], 5).is_none());
        assert!(CalibrationReport::compute(&[0.5], &[true], 0).is_none());
        assert!(CalibrationReport::compute(&[0.5], &[], 5).is_none());
    }
}
