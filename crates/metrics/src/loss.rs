//! Pointwise loss metrics.

/// Mean absolute error. Returns `None` on empty or mismatched inputs.
///
/// The food-delivery evaluation (paper Table IV) reports MAE of VpPV and
/// GMV predictions.
pub fn mae(pred: &[f32], truth: &[f32]) -> Option<f64> {
    paired(pred, truth, |p, t| (p - t).abs() as f64)
}

/// Mean squared error. Returns `None` on empty or mismatched inputs.
pub fn mse(pred: &[f32], truth: &[f32]) -> Option<f64> {
    paired(pred, truth, |p, t| {
        let d = (p - t) as f64;
        d * d
    })
}

/// Root mean squared error. Returns `None` on empty or mismatched inputs.
pub fn rmse(pred: &[f32], truth: &[f32]) -> Option<f64> {
    mse(pred, truth).map(f64::sqrt)
}

/// Binary cross-entropy of probability predictions against labels, with
/// probabilities clamped to `[eps, 1-eps]` (`eps = 1e-7`) for robustness.
/// Returns `None` on empty or mismatched inputs.
pub fn log_loss(prob: &[f32], labels: &[bool]) -> Option<f64> {
    if prob.len() != labels.len() || prob.is_empty() {
        return None;
    }
    const EPS: f64 = 1e-7;
    let total: f64 = prob
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(EPS, 1.0 - EPS);
            if y {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    Some(total / prob.len() as f64)
}

fn paired(pred: &[f32], truth: &[f32], f: impl Fn(f32, f32) -> f64) -> Option<f64> {
    if pred.len() != truth.len() || pred.is_empty() {
        return None;
    }
    Some(pred.iter().zip(truth).map(|(&p, &t)| f(p, t)).sum::<f64>() / pred.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_hand_computed() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[2.0, 2.0, 1.0]), Some(1.0));
        assert_eq!(mae(&[], &[]), None);
        assert_eq!(mae(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn mse_and_rmse() {
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]), Some(12.5));
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn log_loss_perfect_and_uninformed() {
        let perfect = log_loss(&[1.0, 0.0], &[true, false]).unwrap();
        assert!(perfect < 1e-5);
        let coin = log_loss(&[0.5, 0.5], &[true, false]).unwrap();
        assert!((coin - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn log_loss_is_finite_at_extremes() {
        let v = log_loss(&[0.0, 1.0], &[true, false]).unwrap();
        assert!(v.is_finite() && v > 10.0);
    }
}
