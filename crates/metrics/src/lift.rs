//! Quantile lift tables: the shape of the paper's Table II.
//!
//! Items are ranked by a predicted score, split into `k` equal groups (top
//! group first), and the mean of one or more observed outcome columns is
//! reported per group. A well-ordered model produces monotonically
//! decreasing outcome means from the top group down.

/// Result of [`quantile_lift`].
#[derive(Debug, Clone, PartialEq)]
pub struct LiftTable {
    /// Per-group means, `groups[g][m]` = mean of metric `m` in group `g`
    /// (group 0 = highest scores).
    pub groups: Vec<Vec<f64>>,
    /// Overall means per metric (the paper's "Average" row).
    pub overall: Vec<f64>,
    /// Number of items in each group.
    pub group_sizes: Vec<usize>,
}

impl LiftTable {
    /// True when metric `m` decreases (weakly, within `slack` relative
    /// tolerance) from each group to the next.
    pub fn is_monotone(&self, metric: usize, slack: f64) -> bool {
        self.groups.windows(2).all(|w| w[1][metric] <= w[0][metric] * (1.0 + slack))
    }

    /// Ratio of the top group's mean to the bottom group's mean for
    /// metric `m` (`f64::INFINITY` if the bottom mean is zero).
    pub fn top_bottom_ratio(&self, metric: usize) -> f64 {
        let top = self.groups.first().map_or(0.0, |g| g[metric]);
        let bottom = self.groups.last().map_or(0.0, |g| g[metric]);
        if bottom == 0.0 {
            f64::INFINITY
        } else {
            top / bottom
        }
    }
}

/// Splits items into `k` groups by descending `scores` and reports the mean
/// of every outcome column per group.
///
/// `outcomes[i]` holds the observed metric values for item `i` (e.g.
/// `[ipv_7d, atf_7d, gmv_7d, …]`); all rows must have equal length.
/// Returns `None` when inputs are empty/mismatched or `k == 0` or
/// `k > items`.
pub fn quantile_lift(scores: &[f32], outcomes: &[Vec<f64>], k: usize) -> Option<LiftTable> {
    if scores.is_empty() || scores.len() != outcomes.len() || k == 0 || k > scores.len() {
        return None;
    }
    let width = outcomes[0].len();
    if outcomes.iter().any(|row| row.len() != width) {
        return None;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Descending by score; index tiebreak keeps the split deterministic.
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score").then(a.cmp(&b)));

    let n = scores.len();
    let mut groups = Vec::with_capacity(k);
    let mut group_sizes = Vec::with_capacity(k);
    for g in 0..k {
        // Even split with remainder spread over the first groups.
        let start = g * n / k;
        let end = (g + 1) * n / k;
        let members = &order[start..end];
        let mut means = vec![0.0f64; width];
        for &idx in members {
            for (m, &v) in means.iter_mut().zip(&outcomes[idx]) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= members.len().max(1) as f64;
        }
        groups.push(means);
        group_sizes.push(members.len());
    }

    let mut overall = vec![0.0f64; width];
    for row in outcomes {
        for (o, &v) in overall.iter_mut().zip(row) {
            *o += v;
        }
    }
    for o in &mut overall {
        *o /= n as f64;
    }

    Some(LiftTable { groups, overall, group_sizes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_ordered_scores_give_monotone_lift() {
        // Item i has score i and outcome i: top quintile must have the
        // highest mean.
        let n = 100;
        let scores: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let outcomes: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let t = quantile_lift(&scores, &outcomes, 5).unwrap();
        assert_eq!(t.group_sizes, vec![20; 5]);
        assert_eq!(t.groups[0][0], (80..100).sum::<usize>() as f64 / 20.0);
        assert_eq!(t.groups[4][0], (0..20).sum::<usize>() as f64 / 20.0);
        assert!(t.is_monotone(0, 0.0));
        assert!((t.overall[0] - 49.5).abs() < 1e-9);
        assert!(t.top_bottom_ratio(0) > 9.0);
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let scores = [5.0, 4.0, 3.0, 2.0, 1.0];
        let outcomes: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let t = quantile_lift(&scores, &outcomes, 2).unwrap();
        assert_eq!(t.group_sizes, vec![2, 3]);
    }

    #[test]
    fn multiple_metrics_are_independent() {
        let scores = [2.0, 1.0];
        let outcomes = vec![vec![10.0, 0.0], vec![0.0, 10.0]];
        let t = quantile_lift(&scores, &outcomes, 2).unwrap();
        assert_eq!(t.groups[0], vec![10.0, 0.0]);
        assert_eq!(t.groups[1], vec![0.0, 10.0]);
        assert!(t.is_monotone(0, 0.0));
        assert!(!t.is_monotone(1, 0.0));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(quantile_lift(&[], &[], 5).is_none());
        assert!(quantile_lift(&[1.0], &[vec![1.0]], 0).is_none());
        assert!(quantile_lift(&[1.0], &[vec![1.0]], 2).is_none());
        assert!(quantile_lift(&[1.0, 2.0], &[vec![1.0]], 1).is_none());
        assert!(quantile_lift(&[1.0, 2.0], &[vec![1.0], vec![1.0, 2.0]], 1).is_none());
    }

    #[test]
    fn monotone_slack_tolerates_small_inversions() {
        let t = LiftTable {
            groups: vec![vec![100.0], vec![101.0], vec![50.0]],
            overall: vec![0.0],
            group_sizes: vec![1, 1, 1],
        };
        assert!(!t.is_monotone(0, 0.0));
        assert!(t.is_monotone(0, 0.02));
    }
}
