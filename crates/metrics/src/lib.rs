//! Evaluation metrics for the ATNN reproduction.
//!
//! Covers everything the paper's evaluation sections report:
//! - [`auc`] — Area Under the ROC Curve (Table I),
//! - [`mae`] / [`rmse`] / [`log_loss`] — regression/classification losses
//!   (Table IV trains MSE and reports MAE),
//! - [`quantile_lift`] — mean business outcome per predicted-score group
//!   (Table II's quintile × IPV/AtF/GMV grid),
//! - [`spearman`] / [`kendall_tau`] / [`ndcg_at`] — ranking agreement, used
//!   by the mean-user-vector fidelity ablation (DESIGN.md A5),
//! - [`CalibrationReport`] and [`BinaryConfusion`] — diagnostic extras.
//!
//! All functions are pure and deterministic; this crate deliberately has
//! zero runtime dependencies.

mod auc;
mod calibration;
mod confusion;
mod gauc;
mod lift;
mod loss;
mod rank;
mod topk;

pub use auc::auc;
pub use calibration::CalibrationReport;
pub use confusion::BinaryConfusion;
pub use gauc::gauc;
pub use lift::{quantile_lift, LiftTable};
pub use loss::{log_loss, mae, mse, rmse};
pub use rank::{kendall_tau, ndcg_at, spearman};
pub use topk::{average_precision, precision_at_k, recall_at_k};
