//! Rank-agreement metrics.

/// Spearman rank correlation between two score vectors (average ranks for
/// ties, Pearson over ranks). Returns `None` for mismatched/too-short
/// inputs or when either vector is constant.
pub fn spearman(a: &[f32], b: &[f32]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Kendall's tau-a: concordant minus discordant pairs over all pairs.
/// O(n²); intended for evaluation-sized inputs. Returns `None` for
/// mismatched/too-short inputs.
pub fn kendall_tau(a: &[f32], b: &[f32]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = (da * db).signum();
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Normalized Discounted Cumulative Gain at `k`: how well `scores` order
/// items by their true `gains`. Returns `None` for degenerate inputs or
/// when all gains are zero.
pub fn ndcg_at(scores: &[f32], gains: &[f64], k: usize) -> Option<f64> {
    if scores.len() != gains.len() || scores.is_empty() || k == 0 {
        return None;
    }
    let k = k.min(scores.len());
    let dcg_of = |order: &[usize]| -> f64 {
        order
            .iter()
            .take(k)
            .enumerate()
            .map(|(pos, &idx)| gains[idx] / ((pos + 2) as f64).log2())
            .sum()
    };
    let mut by_score: Vec<usize> = (0..scores.len()).collect();
    by_score.sort_by(|&x, &y| scores[y].partial_cmp(&scores[x]).expect("NaN score"));
    let mut ideal: Vec<usize> = (0..gains.len()).collect();
    ideal.sort_by(|&x, &y| gains[y].partial_cmp(&gains[x]).expect("NaN gain"));
    let idcg = dcg_of(&ideal);
    if idcg == 0.0 {
        return None;
    }
    Some(dcg_of(&by_score) / idcg)
}

/// 1-based average ranks (ties share their mean rank).
fn average_ranks(xs: &[f32]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("NaN value"));
    let mut ranks = vec![0.0f64; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_of_identical_order_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [3.0, 3.0, 5.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_rejects_constant_input() {
        assert!(spearman(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn kendall_hand_computed() {
        // a: 1 2 3; b: 1 3 2 -> pairs: (1,2)C (1,3)C (2,3)D -> (2-1)/3
        let tau = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]).unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(kendall_tau(&[1.0, 2.0], &[1.0, 2.0]), Some(1.0));
        assert_eq!(kendall_tau(&[1.0, 2.0], &[2.0, 1.0]), Some(-1.0));
    }

    #[test]
    fn ndcg_perfect_ordering_is_one() {
        let gains = [3.0, 2.0, 1.0, 0.0];
        let scores = [0.9, 0.7, 0.4, 0.1];
        assert!((ndcg_at(&scores, &gains, 4).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_hand_computed_swap() {
        // True gains [2, 1], scores invert the order:
        // DCG = 1/log2(2) + 2/log2(3); IDCG = 2/log2(2) + 1/log2(3)
        let got = ndcg_at(&[0.1, 0.9], &[2.0, 1.0], 2).unwrap();
        let dcg = 1.0 / 1.0 + 2.0 / 3.0f64.log2();
        let idcg = 2.0 / 1.0 + 1.0 / 3.0f64.log2();
        assert!((got - dcg / idcg).abs() < 1e-12);
    }

    #[test]
    fn ndcg_degenerate_inputs() {
        assert!(ndcg_at(&[], &[], 5).is_none());
        assert!(ndcg_at(&[0.5], &[0.0], 1).is_none(), "all-zero gains");
        assert!(ndcg_at(&[0.5], &[1.0], 0).is_none());
    }
}
