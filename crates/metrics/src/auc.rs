//! Area Under the ROC Curve.

/// Tie-aware AUC via the rank-sum (Mann–Whitney U) formulation.
///
/// `scores[i]` is any monotone score (probability, logit, …); `labels[i]`
/// is the binary outcome. Returns `None` when either class is absent
/// (AUC is undefined) or the inputs are mismatched/empty.
///
/// Ties in score contribute 0.5, matching the trapezoidal ROC convention.
///
/// # Examples
/// ```
/// let auc = atnn_metrics::auc(&[0.1, 0.4, 0.8], &[false, false, true]).unwrap();
/// assert_eq!(auc, 1.0);
/// ```
pub fn auc(scores: &[f32], labels: &[bool]) -> Option<f64> {
    if scores.len() != labels.len() || scores.is_empty() {
        return None;
    }
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }

    // Sort indices by score; assign average ranks to tied groups.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));

    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // 1-based average rank of the tied block [i, j].
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }

    let p = positives as f64;
    let n = negatives as f64;
    let u = rank_sum_pos - p * (p + 1.0) / 2.0;
    Some(u / (p * n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), Some(1.0));
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), Some(0.0));
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(auc(&scores, &labels), Some(0.5));
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8,0.6)+1 (0.8,0.2)+1 (0.4,0.6)+0 (0.4,0.2)+1 => 3/4
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert_eq!(auc(&scores, &labels), Some(0.75));
    }

    #[test]
    fn tie_across_classes_counts_half() {
        // pos {0.5}, neg {0.5, 0.1}: pairs = tie(0.5) + win(0.1) = 0.5 + 1 => 0.75
        let scores = [0.5, 0.5, 0.1];
        let labels = [true, false, false];
        assert_eq!(auc(&scores, &labels), Some(0.75));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(auc(&[], &[]), None);
        assert_eq!(auc(&[0.5], &[true]), None); // one class only
        assert_eq!(auc(&[0.5, 0.6], &[true, true]), None);
        assert_eq!(auc(&[0.5], &[true, false]), None); // length mismatch
    }

    #[test]
    fn large_input_matches_naive_pair_count() {
        // Cross-check the rank-sum formulation against O(n^2) counting.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        let mut state = 12345u64;
        for i in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            scores.push(((state >> 33) % 100) as f32 / 100.0); // many ties
            labels.push(i % 3 == 0);
        }
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..scores.len() {
            if !labels[i] {
                continue;
            }
            for j in 0..scores.len() {
                if labels[j] {
                    continue;
                }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        let naive = wins / total;
        let fast = auc(&scores, &labels).unwrap();
        assert!((naive - fast).abs() < 1e-12, "{naive} vs {fast}");
    }
}
