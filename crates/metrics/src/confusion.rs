//! Thresholded binary-classification counts.

/// Confusion counts of probability predictions at a decision threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Counts outcomes of `prob >= threshold` against `labels`. Returns
    /// `None` for empty or mismatched inputs.
    pub fn at_threshold(prob: &[f32], labels: &[bool], threshold: f32) -> Option<Self> {
        if prob.len() != labels.len() || prob.is_empty() {
            return None;
        }
        let mut c = BinaryConfusion { tp: 0, fp: 0, tn: 0, fn_: 0 };
        for (&p, &y) in prob.iter().zip(labels) {
            match (p >= threshold, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Some(c)
    }

    /// Precision `tp / (tp + fp)`; `None` when nothing was predicted positive.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// Recall `tp / (tp + fn)`; `None` when there are no positives.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// F1 score; `None` when precision or recall is undefined or both zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Accuracy over all samples.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        (self.tp + self.tn) as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_correct() {
        let prob = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let c = BinaryConfusion::at_threshold(&prob, &labels, 0.5).unwrap();
        assert_eq!(c, BinaryConfusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.precision(), Some(0.5));
        assert_eq!(c.recall(), Some(0.5));
        assert_eq!(c.f1(), Some(0.5));
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn undefined_ratios_are_none() {
        let c = BinaryConfusion { tp: 0, fp: 0, tn: 5, fn_: 0 };
        assert_eq!(c.precision(), None);
        assert_eq!(c.recall(), None);
        assert_eq!(c.f1(), None);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let c = BinaryConfusion::at_threshold(&[0.5], &[true], 0.5).unwrap();
        assert_eq!(c.tp, 1);
    }

    #[test]
    fn empty_is_none() {
        assert!(BinaryConfusion::at_threshold(&[], &[], 0.5).is_none());
    }
}
