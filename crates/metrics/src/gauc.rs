//! Group AUC (GAUC): impression-weighted mean of per-group AUCs.
//!
//! Standard in industrial CTR evaluation (popularized by Alibaba's DIN,
//! reference \[22\] of the ATNN paper): overall AUC rewards getting *user
//! identity* right, while ranking quality *within* each user's session is
//! what the recommender actually controls. GAUC computes AUC per group
//! (user), weighted by the group's impression count, skipping groups where
//! AUC is undefined (single-class).

use crate::auc::auc;

/// Impression-weighted mean per-group AUC.
///
/// `groups[i]` tags sample `i` (e.g. with its user id). Groups with only
/// one class contribute nothing (standard GAUC convention). Returns `None`
/// for mismatched inputs or when *no* group has a defined AUC.
pub fn gauc(scores: &[f32], labels: &[bool], groups: &[u32]) -> Option<f64> {
    if scores.len() != labels.len() || scores.len() != groups.len() || scores.is_empty() {
        return None;
    }
    // Bucket sample indices by group.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&i| groups[i]);

    let mut weighted = 0.0f64;
    let mut weight = 0.0f64;
    let mut start = 0;
    while start < order.len() {
        let gid = groups[order[start]];
        let mut end = start;
        while end < order.len() && groups[order[end]] == gid {
            end += 1;
        }
        let member_scores: Vec<f32> = order[start..end].iter().map(|&i| scores[i]).collect();
        let member_labels: Vec<bool> = order[start..end].iter().map(|&i| labels[i]).collect();
        if let Some(a) = auc(&member_scores, &member_labels) {
            let w = (end - start) as f64;
            weighted += a * w;
            weight += w;
        }
        start = end;
    }
    (weight > 0.0).then(|| weighted / weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_equals_plain_auc() {
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        let groups = [7u32; 4];
        assert_eq!(gauc(&scores, &labels, &groups), auc(&scores, &labels));
    }

    #[test]
    fn weighting_is_by_group_size() {
        // Group 0 (4 samples): AUC 1.0. Group 1 (2 samples): AUC 0.0.
        let scores = [0.9, 0.8, 0.2, 0.1, 0.3, 0.7];
        let labels = [true, true, false, false, true, false];
        let groups = [0, 0, 0, 0, 1, 1];
        let g = gauc(&scores, &labels, &groups).unwrap();
        assert!((g - (1.0 * 4.0 + 0.0 * 2.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_class_groups_are_skipped() {
        // Group 0 is all-positive (undefined AUC); only group 1 counts.
        let scores = [0.9, 0.8, 0.7, 0.2];
        let labels = [true, true, true, false];
        let groups = [0, 0, 1, 1];
        assert_eq!(gauc(&scores, &labels, &groups), Some(1.0));
    }

    #[test]
    fn all_undefined_returns_none() {
        let scores = [0.9, 0.1];
        let labels = [true, false];
        let groups = [0, 1]; // both groups single-sample -> undefined
        assert_eq!(gauc(&scores, &labels, &groups), None);
        assert_eq!(gauc(&[], &[], &[]), None);
        assert_eq!(gauc(&[0.5], &[true], &[0, 1]), None, "length mismatch");
    }

    #[test]
    fn gauc_separates_personalization_from_popularity() {
        // Two users with opposite tastes over the same two items. A model
        // that scores by global item popularity gets AUC 0.5 per user;
        // a personalized model gets 1.0 per user. Plain pooled AUC cannot
        // tell these apart as sharply.
        let labels = [true, false, false, true];
        let groups = [0, 0, 1, 1];
        let popularity_scores = [0.7, 0.3, 0.7, 0.3];
        let personalized_scores = [0.9, 0.1, 0.1, 0.9];
        let g_pop = gauc(&popularity_scores, &labels, &groups).unwrap();
        let g_per = gauc(&personalized_scores, &labels, &groups).unwrap();
        assert_eq!(g_per, 1.0);
        assert!(g_pop < 1.0);
    }
}
