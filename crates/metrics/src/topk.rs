//! Top-k retrieval metrics: precision@k, recall@k and average precision.
//!
//! Used to evaluate the new-arrival *selection* task directly (Tables III
//! and V pick a top slice of a pool): how many of the items a policy
//! selects are genuinely in the relevant set?

fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score").then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// Fraction of the top-`k` scored items that are relevant. Returns `None`
/// on empty/mismatched input or `k == 0`.
pub fn precision_at_k(scores: &[f32], relevant: &[bool], k: usize) -> Option<f64> {
    if scores.len() != relevant.len() || scores.is_empty() || k == 0 {
        return None;
    }
    let k = k.min(scores.len());
    let hits = top_k_indices(scores, k).into_iter().filter(|&i| relevant[i]).count();
    Some(hits as f64 / k as f64)
}

/// Fraction of all relevant items captured in the top-`k`. Returns `None`
/// on degenerate input or when nothing is relevant.
pub fn recall_at_k(scores: &[f32], relevant: &[bool], k: usize) -> Option<f64> {
    if scores.len() != relevant.len() || scores.is_empty() || k == 0 {
        return None;
    }
    let total = relevant.iter().filter(|&&r| r).count();
    if total == 0 {
        return None;
    }
    let k = k.min(scores.len());
    let hits = top_k_indices(scores, k).into_iter().filter(|&i| relevant[i]).count();
    Some(hits as f64 / total as f64)
}

/// Average precision: the mean of precision@rank over the ranks of the
/// relevant items (AP = 1 iff all relevant items are ranked first).
/// Returns `None` on degenerate input or when nothing is relevant.
pub fn average_precision(scores: &[f32], relevant: &[bool]) -> Option<f64> {
    if scores.len() != relevant.len() || scores.is_empty() {
        return None;
    }
    let total = relevant.iter().filter(|&&r| r).count();
    if total == 0 {
        return None;
    }
    let order = top_k_indices(scores, scores.len());
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        if relevant[idx] {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    Some(ap / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one_everywhere() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let relevant = [true, true, false, false];
        assert_eq!(precision_at_k(&scores, &relevant, 2), Some(1.0));
        assert_eq!(recall_at_k(&scores, &relevant, 2), Some(1.0));
        assert_eq!(average_precision(&scores, &relevant), Some(1.0));
    }

    #[test]
    fn hand_computed_mixed_ranking() {
        // Ranked order: idx1 (rel), idx0 (not), idx3 (rel), idx2 (not).
        let scores = [0.7, 0.9, 0.1, 0.5];
        let relevant = [false, true, false, true];
        assert_eq!(precision_at_k(&scores, &relevant, 1), Some(1.0));
        assert_eq!(precision_at_k(&scores, &relevant, 2), Some(0.5));
        assert_eq!(precision_at_k(&scores, &relevant, 3), Some(2.0 / 3.0));
        assert_eq!(recall_at_k(&scores, &relevant, 1), Some(0.5));
        assert_eq!(recall_at_k(&scores, &relevant, 3), Some(1.0));
        // AP = (1/1 + 2/3) / 2
        let ap = average_precision(&scores, &relevant).unwrap();
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_has_low_ap() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let relevant = [false, false, true, true];
        // AP = (1/3 + 2/4) / 2
        let ap = average_precision(&scores, &relevant).unwrap();
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scores, &relevant, 2), Some(0.0));
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let scores = [0.9, 0.1];
        let relevant = [true, false];
        assert_eq!(precision_at_k(&scores, &relevant, 10), Some(0.5));
        assert_eq!(recall_at_k(&scores, &relevant, 10), Some(1.0));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(precision_at_k(&[], &[], 1), None);
        assert_eq!(precision_at_k(&[0.5], &[true], 0), None);
        assert_eq!(recall_at_k(&[0.5], &[false], 1), None, "no relevant items");
        assert_eq!(average_precision(&[0.5], &[false]), None);
        assert_eq!(precision_at_k(&[0.5], &[true, false], 1), None, "length mismatch");
    }

    #[test]
    fn ties_break_deterministically_by_index() {
        let scores = [0.5, 0.5, 0.5];
        let relevant = [true, false, false];
        // Index tiebreak: idx 0 first.
        assert_eq!(precision_at_k(&scores, &relevant, 1), Some(1.0));
    }
}
