//! Property tests: IVF with a full probe must be bit-identical to the
//! brute-force oracle — scores, order, and tie-breaks included.

use std::sync::Arc;

use atnn_ann::{BruteForce, IvfFlatIndex, IvfParams, Retriever};
use atnn_tensor::Matrix;
use proptest::collection;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

#[test]
fn proptest_full_probe_matches_brute_force_bit_for_bit() {
    // Pool entries are drawn from a tiny grid (multiples of 0.5) so
    // duplicate dot products — the case where only the id tie-break keeps
    // the order deterministic — occur constantly.
    let strategy = (
        2usize..200,                       // items
        1usize..12,                        // dim
        collection::vec(-4i32..5, 1..=12), // query pattern, half-unit grid
        0usize..40,                        // k
    );
    let mut rng = TestRng::from_name("proptest_full_probe_matches_brute_force_bit_for_bit");
    for case in 0..32 {
        let (n, d, qpat, k) = strategy.sample(&mut rng);
        let pool =
            Arc::new(Matrix::from_fn(n, d, |i, j| (((i * 31 + j * 7) % 9) as f32 - 4.0) * 0.5));
        let query: Vec<f32> = (0..d).map(|j| qpat[j % qpat.len()] as f32 * 0.5).collect();

        let params = IvfParams::for_items(n);
        let ivf = IvfFlatIndex::build(Arc::clone(&pool), params);
        let oracle = BruteForce::new(Arc::clone(&pool));

        let got = ivf.topk(&query, k, ivf.nlist());
        let want = oracle.topk(&query, k, 0);
        assert_eq!(got, want, "case {case}: n={n} d={d} k={k}");

        // Same property through the shard-style filtered path.
        let keep = |id: u32| id.is_multiple_of(2);
        assert_eq!(
            ivf.topk_filtered(&query, k, ivf.nlist(), &keep),
            oracle.topk_filtered(&query, k, 0, &keep),
            "case {case} (filtered): n={n} d={d} k={k}"
        );
    }
}

#[test]
fn proptest_partial_probe_hits_are_exactly_scored_prefix_free() {
    // Any nprobe: every returned hit must carry the oracle's exact score
    // for that id, and the result must be sorted under the retrieval
    // order (best first, ties by ascending id).
    let strategy = (2usize..300, 1usize..10, 1usize..6, 1usize..20);
    let mut rng = TestRng::from_name("proptest_partial_probe_hits_are_exactly_scored");
    for case in 0..24 {
        let (n, d, nprobe, k) = strategy.sample(&mut rng);
        let pool = Arc::new(Matrix::from_fn(n, d, |i, j| ((i + j * 13) % 17) as f32 * 0.25 - 2.0));
        let query: Vec<f32> = (0..d).map(|j| (j as f32 * 0.5) - 1.0).collect();

        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(n));
        let oracle = BruteForce::new(Arc::clone(&pool));
        let exact_all = oracle.topk(&query, n, 0);

        let got = ivf.topk(&query, k, nprobe);
        assert!(got.len() <= k, "case {case}");
        for window in got.windows(2) {
            assert!(
                atnn_ann::best_first(&window[0], &window[1]) == std::cmp::Ordering::Less,
                "case {case}: output must be strictly ordered"
            );
        }
        for (id, score) in &got {
            let exact = exact_all.iter().find(|(e, _)| e == id).expect("id exists");
            assert_eq!(score.to_bits(), exact.1.to_bits(), "case {case}: id {id} score exact");
        }
    }
}

#[test]
fn proptest_quantized_topk_order_is_stable_under_the_strict_tie_break() {
    // Quantized scores are toleranced, but the *ranking contract* must be
    // exactly the f32 one: strictly ordered under (dot desc, id asc), the
    // full-probe IVF ranking bit-identical to a brute-force scan over the
    // same int8 pool, and insertion-order-independent (reversed candidate
    // feed produces the identical winner list). Coarse value grids make
    // equal quantized dots — the case where only the id tie-break keeps
    // the order deterministic — common.
    use atnn_tensor::QuantizedMatrix;

    let strategy = (
        2usize..250,                       // items
        2usize..14,                        // dim
        collection::vec(-4i32..5, 1..=14), // query pattern, half-unit grid
        1usize..30,                        // k
    );
    let mut rng = TestRng::from_name("proptest_quantized_topk_order_is_stable");
    for case in 0..32 {
        let (n, d, qpat, k) = strategy.sample(&mut rng);
        let pool =
            Arc::new(Matrix::from_fn(n, d, |i, j| (((i * 17 + j * 5) % 7) as f32 - 3.0) * 0.5));
        let codes = Arc::new(QuantizedMatrix::from_matrix(&pool));
        let query: Vec<f32> = (0..d).map(|j| qpat[j % qpat.len()] as f32 * 0.5).collect();

        let ivf = IvfFlatIndex::build(Arc::clone(&pool), IvfParams::for_items(n))
            .with_pool(Arc::clone(&codes))
            .unwrap();
        let oracle = BruteForce::new(Arc::clone(&codes));

        let got = ivf.topk(&query, k, ivf.nlist());
        assert_eq!(got, oracle.topk(&query, k, 0), "case {case}: n={n} d={d} k={k}");
        for window in got.windows(2) {
            assert!(
                atnn_ann::best_first(&window[0], &window[1]) == std::cmp::Ordering::Less,
                "case {case}: quantized output must be strictly ordered"
            );
        }

        // Insertion-order independence: feeding the same quantized
        // candidates reversed through the k-bounded selection must
        // reproduce the ranking exactly.
        let all = oracle.topk(&query, n, 0);
        let reversed = atnn_ann::topk_select(all.iter().rev().copied(), k);
        assert_eq!(reversed, got, "case {case}: order stability under reversed insertion");
    }
}
